"""Per-figure experiment reproductions.

One function per figure/table of the paper's evaluation (Section 5), plus the
ablations called out in DESIGN.md.  Every function accepts size knobs
(samples, epochs) whose defaults keep the full benchmark suite tractable on a
laptop; pass larger values to approach the paper's full runs.  All functions
return an :class:`~repro.experiments.harness.ExperimentResult`.

The multi-cell sweeps (fig6b, fig9–12 and the ablations) additionally accept
an ``executor`` — a :class:`~repro.parallel.ShardExecutor` or strategy string
— that fans their independent (backend, class, setting) cells out across a
worker pool via :func:`~repro.experiments.harness.run_cells`.  Each cell is a
module-level function (picklable for process pools) that constructs its own
models and backends from seeds, so sharded sweeps are bit-identical to the
serial ones.

The index of experiment id → paper anchor → bench target lives in DESIGN.md;
EXPERIMENTS.md records paper-vs-measured values for each.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import QFpNetLikeClassifier, TFQLikeClassifier, dnn_for_parameter_budget
from repro.core import QuClassi, SwapTestFidelityEstimator
from repro.datasets import (
    PreparedData,
    generate_synthetic_mnist,
    load_iris,
    prepare_task,
)
from repro.encoding import DualAngleEncoder, SingleAngleEncoder
from repro.experiments.harness import (
    ExperimentResult,
    accuracy_summary,
    run_cells,
    train_dnn_with_budget,
    train_quclassi,
)
from repro.hardware import IBMQBackend, IonQBackend
from repro.quantum import IdealBackend, bloch_vectors
from repro.utils.rng import RandomState, ensure_rng

# --------------------------------------------------------------------------- #
# Shared data preparation
# --------------------------------------------------------------------------- #


def prepare_iris_task(seed: RandomState = 0, n_components: Optional[int] = None) -> PreparedData:
    """Iris, all three classes, normalised to [0, 1] (4 features)."""
    return prepare_task(load_iris(), n_components=n_components, test_fraction=0.3, rng=seed)


def prepare_mnist_task(
    digits: Sequence[int],
    n_components: int = 16,
    samples_per_digit: int = 50,
    seed: RandomState = 0,
) -> PreparedData:
    """Synthetic-MNIST task restricted to ``digits`` and PCA-reduced."""
    rng = ensure_rng(seed)
    dataset = generate_synthetic_mnist(
        digits=digits, samples_per_digit=samples_per_digit, rng=rng
    )
    return prepare_task(
        dataset,
        classes=digits,
        n_components=n_components,
        test_fraction=0.3,
        rng=rng,
    )


# --------------------------------------------------------------------------- #
# Figure 6 — Iris
# --------------------------------------------------------------------------- #


def fig6a_multiclass_loss(epochs: int = 25, learning_rate: float = 0.1, seed: RandomState = 0) -> ExperimentResult:
    """Fig. 6a: per-class training loss vs epoch on Iris (QC-S)."""
    data = prepare_iris_task(seed=seed)
    model = train_quclassi(data, architecture="s", epochs=epochs, learning_rate=learning_rate, seed=seed)
    per_class = model.history_.per_class_losses()
    result = ExperimentResult(
        experiment_id="fig6a",
        title="Iris multi-class training loss per class (QC-S)",
        metadata={"epochs": epochs, "learning_rate": learning_rate, "architecture": "s"},
    )
    epochs_axis = model.history_.epochs
    for class_index, class_name in enumerate(data.class_names):
        result.add_series(f"class_{class_index + 1}_{class_name}", epochs_axis, per_class[:, class_index])
    result.add_series("mean_loss", epochs_axis, model.history_.losses)
    return result


def _fig6b_cell(payload) -> Dict[str, object]:
    """One fig6b bar: train a QuClassi architecture or a DNN budget cell."""
    kind, setting, data, epochs, seed = payload
    if kind == "quclassi":
        model = train_quclassi(data, architecture=setting, epochs=epochs, seed=seed)
        return {
            "model": f"QC-{setting.upper()}",
            "parameters": model.num_parameters,
            **accuracy_summary(model, data),
        }
    dnn = train_dnn_with_budget(
        data, parameter_budget=setting, epochs=max(epochs, 25), seed=seed
    )
    return {
        "model": f"DNN-{dnn.num_parameters}P",
        "parameters": dnn.num_parameters,
        **accuracy_summary(dnn, data),
    }


def fig6b_iris_accuracy(
    architectures: Sequence[str] = ("s", "sd", "sde"),
    dnn_budgets: Sequence[int] = (12, 56, 112),
    epochs: int = 20,
    seed: RandomState = 0,
    executor=None,
) -> ExperimentResult:
    """Fig. 6b: Iris test accuracy of QC-S/QC-SD/QC-SDE vs DNN-kP baselines.

    Every bar is one independent sweep cell, so ``executor`` fans the whole
    figure out across workers.
    """
    data = prepare_iris_task(seed=seed)
    result = ExperimentResult(
        experiment_id="fig6b",
        title="Iris accuracy by architecture",
        metadata={"epochs": epochs},
    )
    cells = [("quclassi", architecture, data, epochs, seed) for architecture in architectures]
    cells += [("dnn", budget, data, epochs, seed) for budget in dnn_budgets]
    rows = run_cells(
        _fig6b_cell,
        cells,
        keys=[(kind, setting) for kind, setting, *_ in cells],
        executor=executor,
    )
    for row in rows:
        result.add_row(**row)
    return result


def fig6c_learning_curves(
    epochs: int = 20,
    dnn_budgets: Sequence[int] = (12, 28, 56, 112),
    seed: RandomState = 0,
) -> ExperimentResult:
    """Fig. 6c: test accuracy vs epoch — QuClassi vs classical DNNs of 12-112 parameters."""
    data = prepare_iris_task(seed=seed)
    result = ExperimentResult(
        experiment_id="fig6c",
        title="Iris accuracy vs epoch for multiple parameter settings",
        metadata={"epochs": epochs},
    )
    model = train_quclassi(data, architecture="s", epochs=epochs, seed=seed)
    quclassi_curve = [
        acc if acc is not None else float("nan") for acc in model.history_.validation_accuracies
    ]
    result.add_series(
        f"QuClassi-{model.num_parameters}P", model.history_.epochs, quclassi_curve
    )
    for budget in dnn_budgets:
        dnn = dnn_for_parameter_budget(data.num_features, data.num_classes, budget, seed=seed)
        history = dnn.fit(
            data.x_train,
            data.y_train,
            epochs=epochs,
            learning_rate=0.1,
            validation_data=(data.x_test, data.y_test),
        )
        curve = [acc if acc is not None else float("nan") for acc in history.validation_accuracies]
        result.add_series(f"DNN-{dnn.num_parameters}P", list(range(1, len(curve) + 1)), curve)
    return result


# --------------------------------------------------------------------------- #
# Figure 8 — state evolution on the Bloch sphere
# --------------------------------------------------------------------------- #


def fig8_state_evolution(
    digits: Tuple[int, int] = (0, 6),
    epochs: int = 10,
    samples_per_digit: int = 40,
    n_components: int = 4,
    seed: RandomState = 0,
) -> ExperimentResult:
    """Fig. 8: how the learned state rotates towards its class data during training.

    Reports, per trained qubit, the Bloch-vector angle between the initial
    (random) state and the trained state, and the fidelity between the trained
    state and the mean data state of the class before vs after training.
    """
    data = prepare_mnist_task(digits, n_components=n_components, samples_per_digit=samples_per_digit, seed=seed)
    model = QuClassi(
        num_features=data.num_features, num_classes=2, architecture="s", seed=seed
    )
    estimator = model.estimator
    class_index = 0
    class_samples = data.x_train[data.y_train == class_index]

    def mean_fidelity(parameters: np.ndarray) -> float:
        return float(np.mean(estimator.fidelities(parameters, class_samples)))

    initial_parameters = model.parameters_[class_index].copy()
    initial_state = model.trained_statevector(class_index)
    initial_bloch = bloch_vectors(initial_state)
    initial_fidelity = mean_fidelity(initial_parameters)

    model.fit(data.x_train, data.y_train, epochs=epochs, learning_rate=0.1)

    trained_state = model.trained_statevector(class_index)
    trained_bloch = bloch_vectors(trained_state)
    trained_fidelity = mean_fidelity(model.parameters_[class_index])

    result = ExperimentResult(
        experiment_id="fig8",
        title=f"Learned-state evolution for digit {digits[0]} vs {digits[1]}",
        metadata={"epochs": epochs, "digits": str(digits)},
    )
    for qubit, (before, after) in enumerate(zip(initial_bloch, trained_bloch)):
        result.add_row(
            qubit=qubit,
            initial_polar_angle=before.polar_angle,
            trained_polar_angle=after.polar_angle,
            rotation_angle=before.angle_to(after),
        )
    result.metadata["initial_mean_fidelity"] = initial_fidelity
    result.metadata["trained_mean_fidelity"] = trained_fidelity
    return result


# --------------------------------------------------------------------------- #
# Figures 9 and 10 — synthetic-MNIST comparisons
# --------------------------------------------------------------------------- #


def _train_tfq_baseline(
    digits: Sequence[int],
    samples_per_digit: int,
    epochs: int,
    seed: RandomState,
) -> Tuple[TFQLikeClassifier, PreparedData]:
    """Train the TFQ-like baseline on a 4-dimensional PCA of the same task.

    TFQ's tutorial uses one qubit per (downsampled) pixel; running it on the
    full 16-dimensional projection would need a 17-qubit statevector per loss
    term inside a parameter-shift loop, so — like the paper does for its own
    hardware runs — the baseline uses the 4-component PCA of the same data.
    """
    data = prepare_mnist_task(digits, n_components=4, samples_per_digit=samples_per_digit, seed=seed)
    model = TFQLikeClassifier(num_features=4, num_layers=1, seed=seed)
    model.fit(data.x_train, data.y_train, epochs=epochs, learning_rate=0.2, rng=ensure_rng(seed))
    return model, data


def _fig9_cell(payload) -> Dict[str, object]:
    """One fig9 task column: all models trained on one digit pair."""
    pair, samples_per_digit, epochs, dnn_budgets, seed = payload
    data = prepare_mnist_task(pair, n_components=16, samples_per_digit=samples_per_digit, seed=seed)
    row: Dict[str, object] = {"task": f"{pair[0]}/{pair[1]}"}

    quclassi = train_quclassi(data, architecture="s", epochs=epochs, seed=seed)
    row["QC-S"] = accuracy_summary(quclassi, data)["test_accuracy"]
    row["QC-S_params"] = quclassi.num_parameters

    qf = QFpNetLikeClassifier(num_features=16, num_classes=2, hidden_units=8, seed=seed)
    qf.fit(data.x_train, data.y_train, epochs=epochs, learning_rate=0.05)
    row["QF-pNet-like"] = qf.score(data.x_test, data.y_test)

    tfq, tfq_data = _train_tfq_baseline(pair, samples_per_digit, epochs=max(4, epochs // 2), seed=seed)
    row["TFQ-like"] = tfq.score(tfq_data.x_test, tfq_data.y_test)

    for budget in dnn_budgets:
        dnn = train_dnn_with_budget(data, parameter_budget=budget, epochs=25, seed=seed)
        row[f"DNN-{budget}"] = accuracy_summary(dnn, data)["test_accuracy"]
    return row


def fig9_binary_classification(
    pairs: Sequence[Tuple[int, int]] = ((1, 5), (3, 6), (3, 9), (3, 8)),
    samples_per_digit: int = 50,
    epochs: int = 25,
    dnn_budgets: Sequence[int] = (306, 1218),
    seed: RandomState = 0,
    executor=None,
) -> ExperimentResult:
    """Fig. 9: binary synthetic-MNIST accuracy — QC-S vs QF-pNet-like vs TFQ-like vs DNNs.

    One sweep cell per digit pair; ``executor`` fans the pairs out.
    """
    result = ExperimentResult(
        experiment_id="fig9",
        title="Binary classification comparison (synthetic MNIST, 16-D PCA)",
        metadata={"samples_per_digit": samples_per_digit, "epochs": epochs},
    )
    rows = run_cells(
        _fig9_cell,
        [(pair, samples_per_digit, epochs, tuple(dnn_budgets), seed) for pair in pairs],
        keys=[("pair", f"{pair[0]}/{pair[1]}") for pair in pairs],
        executor=executor,
    )
    for row in rows:
        result.add_row(**row)
    return result


def _fig10_cell(payload) -> Dict[str, object]:
    """One fig10 task column: all models trained on one digit set."""
    task, samples_per_digit, epochs, dnn_budgets, seed = payload
    data = prepare_mnist_task(task, n_components=16, samples_per_digit=samples_per_digit, seed=seed)
    task_name = "10 Class" if len(task) == 10 else "/".join(str(d) for d in task)
    row: Dict[str, object] = {"task": task_name, "num_classes": len(task)}

    quclassi = train_quclassi(data, architecture="s", epochs=epochs, seed=seed)
    row["QC-S"] = accuracy_summary(quclassi, data)["test_accuracy"]
    row["QC-S_params"] = quclassi.num_parameters

    qf = QFpNetLikeClassifier(num_features=16, num_classes=len(task), hidden_units=8, seed=seed)
    qf.fit(data.x_train, data.y_train, epochs=epochs, learning_rate=0.05)
    row["QF-pNet-like"] = qf.score(data.x_test, data.y_test)

    for budget in dnn_budgets:
        dnn = train_dnn_with_budget(data, parameter_budget=budget, epochs=25, seed=seed)
        row[f"DNN-{budget}"] = accuracy_summary(dnn, data)["test_accuracy"]
    return row


def fig10_multiclass_classification(
    tasks: Sequence[Tuple[int, ...]] = (
        (0, 3, 6),
        (1, 3, 6),
        (0, 3, 6, 9),
        (0, 1, 3, 6, 9),
        tuple(range(10)),
    ),
    samples_per_digit: int = 40,
    epochs: int = 15,
    dnn_budgets: Sequence[int] = (306, 1308),
    seed: RandomState = 0,
    executor=None,
) -> ExperimentResult:
    """Fig. 10: multi-class synthetic-MNIST accuracy — QC-S vs QF-pNet-like vs DNNs.

    TensorFlow-Quantum is absent, exactly as in the paper, because its
    published classifier is binary-only.  One sweep cell per task;
    ``executor`` fans the tasks out.
    """
    result = ExperimentResult(
        experiment_id="fig10",
        title="Multi-class classification comparison (synthetic MNIST, 16-D PCA)",
        metadata={"samples_per_digit": samples_per_digit, "epochs": epochs},
    )
    rows = run_cells(
        _fig10_cell,
        [(task, samples_per_digit, epochs, tuple(dnn_budgets), seed) for task in tasks],
        keys=[("task", "/".join(str(d) for d in task)) for task in tasks],
        executor=executor,
    )
    for row in rows:
        result.add_row(**row)
    return result


# --------------------------------------------------------------------------- #
# Figures 11 and 12 — simulated hardware
# --------------------------------------------------------------------------- #


def _fig11_cell(payload):
    """One fig11 curve: Iris training on one (simulated) backend.

    The backend is constructed *inside* the cell from its site name — the
    backend-factory idiom that keeps each shard's job ledger and sampling
    stream isolated under concurrent execution.
    """
    site, data, epochs, shots, seed = payload
    backend = None if site == "simulator" else IBMQBackend(site, seed=seed)
    model = QuClassi(
        num_features=4,
        num_classes=3,
        architecture="s",
        estimator="swap_test" if backend is not None else "analytic",
        backend=backend,
        shots=shots if backend is not None else None,
        seed=seed,
    )
    model.fit(
        data.x_train,
        data.y_train,
        epochs=epochs,
        learning_rate=0.1,
        batch_size=None,
    )
    row = {
        "backend": site,
        "final_loss": model.history_.final_loss,
        "train_accuracy": model.history_.train_accuracies[-1],
    }
    return site, model.history_.epochs, model.history_.losses, row


def fig11_hardware_iris_loss(
    sites: Sequence[str] = ("ibmq_london", "ibmq_new_york", "ibmq_melbourne"),
    epochs: int = 4,
    samples_per_class: int = 4,
    shots: int = 8000,
    seed: RandomState = 0,
    executor=None,
) -> ExperimentResult:
    """Fig. 11: Iris training-loss curves on simulated IBM-Q sites vs the simulator.

    Training runs end-to-end on the noisy backend through the SWAP-test
    estimator (8000 shots per circuit, as in the paper); the dataset is
    subsampled because every gradient entry costs two circuit executions.
    The simulator backends batch: each gradient step executes all ``2P``
    shifted discriminator sweeps through the backend batch API, with the
    noisy sites re-binding their cached transpilation per circuit.  One
    sweep cell per backend; ``executor`` fans the sites out.
    """
    result = ExperimentResult(
        experiment_id="fig11",
        title="Iris training loss on (simulated) IBM-Q sites",
        metadata={"epochs": epochs, "samples_per_class": samples_per_class, "shots": shots},
    )
    data = prepare_task(
        load_iris(), samples_per_class=samples_per_class, test_fraction=0.25, rng=seed
    )
    cells = ["simulator"] + list(sites)
    outcomes = run_cells(
        _fig11_cell,
        [(site, data, epochs, shots, seed) for site in cells],
        keys=[("backend", site) for site in cells],
        executor=executor,
    )
    for site, epochs_axis, losses, row in outcomes:
        result.add_series(site, epochs_axis, losses)
        result.add_row(**row)
    return result


def _fig12_cell(payload) -> Dict[str, object]:
    """One fig12 task column: simulator architectures + noisy-device evaluation."""
    pair, architectures, samples_per_digit, epochs, shots, device, seed = payload
    data = prepare_mnist_task(pair, n_components=4, samples_per_digit=samples_per_digit, seed=seed)
    row: Dict[str, object] = {"task": f"{pair[0]}/{pair[1]}"}
    trained_models: Dict[str, QuClassi] = {}
    for architecture in architectures:
        model = train_quclassi(data, architecture=architecture, epochs=epochs, seed=seed)
        trained_models[architecture] = model
        row[f"QC-{architecture.upper()}"] = accuracy_summary(model, data)["test_accuracy"]

    # Evaluate the QC-S model through the noisy device.
    hardware_model = trained_models[architectures[0]]
    backend = IBMQBackend(device, seed=seed)
    hardware_estimator = SwapTestFidelityEstimator(
        hardware_model.builder, backend=backend, shots=shots
    )
    original_estimator = hardware_model.estimator
    hardware_model.estimator = hardware_estimator
    row["IBM-Q"] = hardware_model.score(data.x_test, data.y_test)
    hardware_model.estimator = original_estimator

    tfq = TFQLikeClassifier(num_features=4, num_layers=1, seed=seed)
    tfq.fit(data.x_train, data.y_train, epochs=max(4, epochs // 2), learning_rate=0.2)
    row["TFQ-like"] = tfq.score(data.x_test, data.y_test)
    return row


def fig12_hardware_mnist_accuracy(
    pairs: Sequence[Tuple[int, int]] = ((3, 4), (6, 9), (2, 9)),
    architectures: Sequence[str] = ("s", "sd", "sde"),
    samples_per_digit: int = 40,
    epochs: int = 12,
    shots: int = 8192,
    device: str = "ibmq_rome",
    seed: RandomState = 0,
    executor=None,
) -> ExperimentResult:
    """Fig. 12: 4-dimensional MNIST binary accuracy — simulator architectures vs IBM-Q Rome vs TFQ.

    As in the paper's setup, the model is trained with the simulator and the
    hardware column reports the trained QC-S model *evaluated* through the
    noisy IBM-Q Rome backend (noise corrupts the SWAP-test fidelities at
    inference time).  One sweep cell per digit pair (each cell builds its
    own device backend); ``executor`` fans the pairs out.
    """
    result = ExperimentResult(
        experiment_id="fig12",
        title="Binary classification on (simulated) quantum hardware, 4-D PCA",
        metadata={"device": device, "shots": shots, "epochs": epochs},
    )
    rows = run_cells(
        _fig12_cell,
        [
            (pair, tuple(architectures), samples_per_digit, epochs, shots, device, seed)
            for pair in pairs
        ],
        keys=[("pair", f"{pair[0]}/{pair[1]}") for pair in pairs],
        executor=executor,
    )
    for row in rows:
        result.add_row(**row)
    return result


def ionq_vs_cairo(
    pair: Tuple[int, int] = (3, 6),
    samples_per_digit: int = 40,
    epochs: int = 12,
    shots: int = 4096,
    seed: RandomState = 0,
) -> ExperimentResult:
    """Section 5.4 text: IonQ vs IBM-Q Cairo on the (3, 6) task.

    Trains QC-S on the simulator, then evaluates the same trained model on the
    fully connected IonQ backend and on IBM-Q Cairo, reporting accuracy plus
    the routed two-qubit gate counts that explain the gap.
    """
    data = prepare_mnist_task(pair, n_components=4, samples_per_digit=samples_per_digit, seed=seed)
    model = train_quclassi(data, architecture="s", epochs=epochs, seed=seed)
    ideal_accuracy = accuracy_summary(model, data)["test_accuracy"]

    result = ExperimentResult(
        experiment_id="section5.4_ionq_vs_cairo",
        title="IonQ (all-to-all) vs IBM-Q Cairo (heavy-hexagon) on the (3, 6) task",
        metadata={"pair": str(pair), "shots": shots},
    )
    result.add_row(backend="ideal_simulator", test_accuracy=ideal_accuracy, cx_per_circuit=0, added_cx=0)

    original_estimator = model.estimator
    for backend in (IonQBackend(seed=seed), IBMQBackend("ibmq_cairo", seed=seed)):
        estimator = SwapTestFidelityEstimator(model.builder, backend=backend, shots=shots)
        model.estimator = estimator
        accuracy = model.score(data.x_test, data.y_test)
        stats = backend.last_transpile_stats
        result.add_row(
            backend=backend.name,
            test_accuracy=accuracy,
            cx_per_circuit=stats.get("cx_count", 0),
            added_cx=stats.get("added_cx", 0),
        )
    model.estimator = original_estimator
    return result


# --------------------------------------------------------------------------- #
# Parameter-count comparison and ablations
# --------------------------------------------------------------------------- #


def parameter_reduction(
    binary_pair: Tuple[int, int] = (3, 6),
    multiclass_task: Tuple[int, ...] = (0, 1, 3, 6, 9),
    samples_per_digit: int = 40,
    epochs: int = 20,
    seed: RandomState = 0,
) -> ExperimentResult:
    """Text §5.3: parameter counts of QuClassi vs similarly accurate DNNs."""
    result = ExperimentResult(
        experiment_id="parameter_reduction",
        title="Parameter-count comparison at comparable accuracy",
        metadata={"epochs": epochs},
    )
    for task, label in ((binary_pair, "binary"), (multiclass_task, "multiclass")):
        data = prepare_mnist_task(task, n_components=16, samples_per_digit=samples_per_digit, seed=seed)
        quclassi = train_quclassi(data, architecture="s", epochs=epochs, seed=seed)
        quclassi_accuracy = accuracy_summary(quclassi, data)["test_accuracy"]
        dnn = train_dnn_with_budget(data, parameter_budget=1218 if label == "binary" else 1308, epochs=25, seed=seed)
        dnn_accuracy = accuracy_summary(dnn, data)["test_accuracy"]
        reduction = 100.0 * (1.0 - quclassi.num_parameters / dnn.num_parameters)
        result.add_row(
            setting=label,
            task="/".join(str(t) for t in task),
            quclassi_params=quclassi.num_parameters,
            quclassi_accuracy=quclassi_accuracy,
            dnn_params=dnn.num_parameters,
            dnn_accuracy=dnn_accuracy,
            parameter_reduction_percent=reduction,
        )
    return result


def _ablation_encoding_cell(payload) -> Dict[str, object]:
    """One encoding-ablation row: train with one data encoder."""
    encoder, label, data, epochs, seed = payload
    model = QuClassi(
        num_features=4, num_classes=3, architecture="s", encoder=encoder, seed=seed
    )
    model.fit(data.x_train, data.y_train, epochs=epochs, learning_rate=0.1)
    return {
        "encoding": label,
        "qubits_per_state": model.builder.layout.state_width,
        "total_qubits": model.num_qubits,
        "parameters": model.num_parameters,
        "test_accuracy": model.score(data.x_test, data.y_test),
    }


def ablation_encoding(
    epochs: int = 15,
    seed: RandomState = 0,
    executor=None,
) -> ExperimentResult:
    """Ablation (§4.2): dual-dimension-per-qubit vs one-dimension-per-qubit encoding on Iris."""
    data = prepare_iris_task(seed=seed)
    result = ExperimentResult(
        experiment_id="ablation_encoding",
        title="Data-encoding ablation: 2 dims/qubit (RY+RZ) vs 1 dim/qubit (RY)",
        metadata={"epochs": epochs},
    )
    settings = [(DualAngleEncoder(), "dual_angle"), (SingleAngleEncoder(), "single_angle")]
    rows = run_cells(
        _ablation_encoding_cell,
        [(encoder, label, data, epochs, seed) for encoder, label in settings],
        keys=[("encoding", label) for _, label in settings],
        executor=executor,
    )
    for row in rows:
        result.add_row(**row)
    return result


def _ablation_gradient_cell(payload):
    """One gradient-rule-ablation curve: train with one shift rule."""
    rule, data, epochs, seed = payload
    model = QuClassi(num_features=4, num_classes=3, architecture="s", seed=seed)
    model.fit(data.x_train, data.y_train, epochs=epochs, learning_rate=0.1, gradient_rule=rule)
    row = {
        "gradient_rule": rule,
        "final_loss": model.history_.final_loss,
        "test_accuracy": model.score(data.x_test, data.y_test),
    }
    return rule, model.history_.epochs, model.history_.losses, row


def ablation_gradient_rule(
    epochs: int = 15,
    seed: RandomState = 0,
    executor=None,
) -> ExperimentResult:
    """Ablation (§4.4): the paper's epoch-scaled shift vs the fixed parameter-shift rule."""
    data = prepare_iris_task(seed=seed)
    result = ExperimentResult(
        experiment_id="ablation_gradient",
        title="Gradient-rule ablation on Iris (QC-S)",
        metadata={"epochs": epochs},
    )
    rules = ("epoch_scaled", "parameter_shift")
    outcomes = run_cells(
        _ablation_gradient_cell,
        [(rule, data, epochs, seed) for rule in rules],
        keys=[("gradient_rule", rule) for rule in rules],
        executor=executor,
    )
    for rule, epochs_axis, losses, row in outcomes:
        result.add_series(rule, epochs_axis, losses)
        result.add_row(**row)
    return result


def _ablation_shots_cell(payload) -> Dict[str, object]:
    """One shots-ablation grid point: sampled sweep at one shot count."""
    shots, builder, parameters, samples, reference, seed = payload
    estimator = SwapTestFidelityEstimator(builder, backend=IdealBackend(seed=seed), shots=shots)
    estimated = estimator.fidelity_matrix(parameters, samples).T
    return {
        "shots": "exact" if shots is None else shots,
        "mean_absolute_error": float(np.mean(np.abs(estimated - reference))),
        "max_absolute_error": float(np.max(np.abs(estimated - reference))),
    }


def ablation_swap_test_shots(
    shots_grid: Sequence[Optional[int]] = (128, 512, 2048, 8192, None),
    seed: RandomState = 0,
    executor=None,
) -> ExperimentResult:
    """Ablation: SWAP-test fidelity estimation error vs shot count.

    Compares the sampled SWAP-test estimate against the analytic fidelity for
    a trained Iris model; ``None`` means exact (infinite-shot) probabilities.
    Each grid point runs all (class, sample) discriminator circuits as one
    batched :meth:`~repro.core.swap_test.SwapTestFidelityEstimator.fidelity_matrix`
    sweep — the workload that ``benchmarks/bench_swap_test_sweep.py`` times
    against the per-circuit loop.  The model is trained once; each grid point
    is one sweep cell (own freshly seeded backend), so ``executor`` fans the
    grid out.
    """
    data = prepare_iris_task(seed=seed)
    model = train_quclassi(data, architecture="s", epochs=10, seed=seed)
    analytic = model.estimator
    samples = data.x_test[:10]
    reference = analytic.fidelity_matrix(model.parameters_, samples).T
    result = ExperimentResult(
        experiment_id="ablation_shots",
        title="SWAP-test fidelity estimation error vs shots",
        metadata={"num_samples": len(samples)},
    )
    rows = run_cells(
        _ablation_shots_cell,
        [
            (shots, model.builder, model.parameters_, samples, reference, seed)
            for shots in shots_grid
        ],
        keys=[("shots", "exact" if shots is None else shots) for shots in shots_grid],
        executor=executor,
    )
    for row in rows:
        result.add_row(**row)
    return result
