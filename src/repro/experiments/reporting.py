"""Reporting of experiment results: paper-style text and perf-point JSON.

The benchmarks print their results through these helpers so the output reads
like the paper's tables and figure captions (one row per configuration, one
series per curve) without any plotting dependency.

Machine-readable perf points share one writer too: every benchmark —
hot-path perf benches and figure reproductions alike — emits a
``BENCH_<name>.json`` file through :func:`write_perf_point`, so the perf
trajectory of each workload is tracked as a JSON series across PRs.
:func:`experiment_perf_payload` converts a figure's
:class:`~repro.experiments.harness.ExperimentResult` into such a payload, and
:func:`validate_perf_payload` is the schema check the benchmark smoke tests
run against every emitted file to keep the reporting path from rotting.
"""

from __future__ import annotations

import json
import math
import os
import time
from typing import List, Optional, Sequence

from repro.experiments.harness import ExperimentResult, Series


def format_table(rows: List[dict], columns: Optional[Sequence[str]] = None, float_format: str = "{:.4f}") -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = []
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [
        max(len(str(column)), *(len(r[i]) for r in rendered_rows)) for i, column in enumerate(columns)
    ]
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(cell.ljust(width) for cell, width in zip(row, widths)) for row in rendered_rows
    )
    return "\n".join([header, separator, body])


def format_series(series: Series, float_format: str = "{:.4f}") -> str:
    """Render one curve as ``name: y1, y2, ...`` with its x range."""
    values = ", ".join(float_format.format(value) for value in series.y)
    return f"{series.name} (x={series.x[0]:g}..{series.x[-1]:g}): {values}"


def format_experiment(result: ExperimentResult, float_format: str = "{:.4f}") -> str:
    """Render a full experiment result: title, rows, then series."""
    lines = [f"== {result.experiment_id}: {result.title} =="]
    if result.rows:
        lines.append(format_table(result.rows, float_format=float_format))
    for series in result.series:
        lines.append(format_series(series, float_format=float_format))
    if result.metadata:
        meta = ", ".join(f"{key}={value}" for key, value in sorted(result.metadata.items()))
        lines.append(f"[{meta}]")
    return "\n".join(lines)


def print_experiment(result: ExperimentResult) -> None:
    """Print an experiment result (used by the benchmark harness)."""
    print(format_experiment(result))


# --------------------------------------------------------------------------- #
# Machine-readable perf points (BENCH_<name>.json)
# --------------------------------------------------------------------------- #


def experiment_perf_payload(result: ExperimentResult, seconds: Optional[float] = None) -> dict:
    """Convert a figure reproduction into a perf-point payload.

    Captures the reproduced rows/series (the figure itself), the experiment's
    metadata, and the wall-clock cost of regenerating it — so every figure
    run leaves a JSON perf point next to its text report.
    """
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "rows": [dict(row) for row in result.rows],
        "series": [
            {"name": series.name, "x": list(series.x), "y": list(series.y)}
            for series in result.series
        ],
        "metadata": dict(result.metadata),
    }
    if seconds is not None:
        payload["seconds"] = float(seconds)
    return payload


def write_perf_point(results_dir: str, name: str, payload: dict) -> str:
    """Write ``BENCH_<name>.json`` into ``results_dir``; returns the path.

    The single JSON writer behind every benchmark: the payload is enriched
    with the benchmark name and a timestamp, then dumped with sorted keys so
    diffs across PRs stay readable.
    """
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"BENCH_{name}.json")
    enriched = dict(payload)
    enriched.setdefault("benchmark", name)
    enriched.setdefault("recorded_at", time.strftime("%Y-%m-%dT%H:%M:%S%z"))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(enriched, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def validate_perf_payload(payload: dict) -> List[str]:
    """Schema-check one perf payload; returns a list of problems (empty = ok).

    Every ``BENCH_*.json`` must carry its benchmark name and timestamp, and
    every numeric value anywhere in the payload must be finite — a NaN or
    infinity in a perf point means the benchmark silently broke.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    for key in ("benchmark", "recorded_at"):
        if not isinstance(payload.get(key), str) or not payload.get(key):
            problems.append(f"missing or empty required key {key!r}")

    def walk(value, trail: str) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            if not math.isfinite(value):
                problems.append(f"non-finite number at {trail}")
            return
        if isinstance(value, dict):
            for key, child in value.items():
                walk(child, f"{trail}.{key}")
            return
        if isinstance(value, (list, tuple)):
            for index, child in enumerate(value):
                walk(child, f"{trail}[{index}]")

    walk(payload, "$")
    return problems
