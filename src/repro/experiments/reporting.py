"""Plain-text reporting of experiment results.

The benchmarks print their results through these helpers so the output reads
like the paper's tables and figure captions (one row per configuration, one
series per curve) without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.harness import ExperimentResult, Series


def format_table(rows: List[dict], columns: Optional[Sequence[str]] = None, float_format: str = "{:.4f}") -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = []
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [
        max(len(str(column)), *(len(r[i]) for r in rendered_rows)) for i, column in enumerate(columns)
    ]
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(cell.ljust(width) for cell, width in zip(row, widths)) for row in rendered_rows
    )
    return "\n".join([header, separator, body])


def format_series(series: Series, float_format: str = "{:.4f}") -> str:
    """Render one curve as ``name: y1, y2, ...`` with its x range."""
    values = ", ".join(float_format.format(value) for value in series.y)
    return f"{series.name} (x={series.x[0]:g}..{series.x[-1]:g}): {values}"


def format_experiment(result: ExperimentResult, float_format: str = "{:.4f}") -> str:
    """Render a full experiment result: title, rows, then series."""
    lines = [f"== {result.experiment_id}: {result.title} =="]
    if result.rows:
        lines.append(format_table(result.rows, float_format=float_format))
    for series in result.series:
        lines.append(format_series(series, float_format=float_format))
    if result.metadata:
        meta = ", ".join(f"{key}={value}" for key, value in sorted(result.metadata.items()))
        lines.append(f"[{meta}]")
    return "\n".join(lines)


def print_experiment(result: ExperimentResult) -> None:
    """Print an experiment result (used by the benchmark harness)."""
    print(format_experiment(result))
