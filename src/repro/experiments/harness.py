"""Experiment harness: result containers and shared run helpers.

Every figure-reproduction function in :mod:`repro.experiments.figures`
returns an :class:`ExperimentResult` — a named collection of series (curves)
and rows (table entries) plus free-form metadata — which the benchmarks print
through :mod:`repro.experiments.reporting` and EXPERIMENTS.md summarises.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import DNNClassifier, dnn_for_parameter_budget
from repro.core import QuClassi
from repro.datasets import PreparedData
from repro.utils.rng import RandomState


@dataclasses.dataclass
class Series:
    """A named 1-D curve (e.g. loss vs epoch for one configuration)."""

    name: str
    x: List[float]
    y: List[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series '{self.name}' has mismatched x/y lengths")

    @property
    def final(self) -> float:
        """Last y value (e.g. final-epoch accuracy)."""
        return self.y[-1]


@dataclasses.dataclass
class ExperimentResult:
    """Outcome of reproducing one figure or table.

    Attributes
    ----------
    experiment_id:
        Paper anchor, e.g. ``"fig9"`` or ``"section5.4_ionq"``.
    title:
        Human-readable description.
    series:
        Curves (for line plots such as loss vs epoch).
    rows:
        Table rows (for bar plots such as per-task accuracies); each row maps
        column name to value.
    metadata:
        Anything else worth recording (sample counts, seeds, runtimes).
    """

    experiment_id: str
    title: str
    series: List[Series] = dataclasses.field(default_factory=list)
    rows: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    metadata: Dict[str, object] = dataclasses.field(default_factory=dict)

    def add_series(self, name: str, x: Sequence[float], y: Sequence[float]) -> None:
        self.series.append(Series(name=name, x=list(map(float, x)), y=list(map(float, y))))

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def series_by_name(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"no series named {name!r} in experiment {self.experiment_id}")

    def column(self, name: str) -> List[object]:
        """Values of one column across every row."""
        return [row.get(name) for row in self.rows]


@dataclasses.dataclass
class TimedRun:
    """Wraps a value with the wall-clock time it took to produce."""

    value: object
    seconds: float


def timed(func, *args, **kwargs) -> TimedRun:
    """Call ``func`` and measure its wall-clock duration.

    Failures propagate with their full context intact: the original
    exception (and its ``__cause__`` chain — e.g. a
    :class:`~repro.parallel.ShardError` naming the failing (class index,
    cell key) of an executor submission) is re-raised as-is, annotated with
    how long the call ran before dying.  An earlier version re-raised
    through a bare wrapper that dropped the worker exception's context,
    which made sharded sweep failures unattributable.
    """
    start = time.perf_counter()
    try:
        value = func(*args, **kwargs)
    except Exception as error:
        seconds = time.perf_counter() - start
        name = getattr(func, "__name__", repr(func))
        error.add_note(f"timed: {name} failed after {seconds:.3f}s")
        raise
    return TimedRun(value=value, seconds=time.perf_counter() - start)


# --------------------------------------------------------------------------- #
# Sweep-cell execution
# --------------------------------------------------------------------------- #


def _run_sweep_cell(shard):
    """Module-level shard trampoline (picklable for process executors)."""
    cell_fn, payload = shard.payload
    return cell_fn(payload)


def run_cells(
    cell_fn,
    payloads: Sequence[object],
    keys: Optional[Sequence[tuple]] = None,
    executor=None,
) -> List[object]:
    """Run one sweep-cell function over every payload, optionally sharded.

    The unit the figure sweeps fan out over: ``cell_fn(payload)`` computes
    one (backend, class, setting) cell — one site's training run, one
    (digit-pair, architecture) column, one shots grid point.  ``executor``
    is a :class:`~repro.parallel.ShardExecutor` (or a strategy string);
    ``None`` runs the cells serially in plan order.  Results always come
    back in payload order, and every cell must construct its own backends
    from specs/seeds inside the cell so results cannot depend on the
    strategy (this is what keeps sharded figure sweeps bit-identical to
    serial ones).  For the ``process`` strategy ``cell_fn`` must be a
    module-level function and the payloads picklable.

    A failing cell aborts the sweep fast, raising a
    :class:`~repro.parallel.ShardError` that names the cell's key.
    """
    from repro.parallel import ShardExecutor, ShardPlan

    plan = ShardPlan.from_items(
        [(cell_fn, payload) for payload in payloads], keys=keys
    )
    if executor is None:
        executor = ShardExecutor("serial")
    elif not isinstance(executor, ShardExecutor):
        executor = ShardExecutor(executor)
    return executor.map(_run_sweep_cell, plan)


# --------------------------------------------------------------------------- #
# Shared model-training helpers
# --------------------------------------------------------------------------- #


def train_quclassi(
    data: PreparedData,
    architecture: str = "s",
    epochs: int = 15,
    learning_rate: float = 0.1,
    seed: RandomState = 0,
    **fit_kwargs,
) -> QuClassi:
    """Train a QuClassi model on a prepared task with the library defaults.

    The default minibatch size of 8 with learning rate 0.1 is the
    computationally cheaper equivalent of the paper's per-sample updates at
    learning rate 0.01 (see :mod:`repro.core.trainer`).
    """
    model = QuClassi(
        num_features=data.num_features,
        num_classes=data.num_classes,
        architecture=architecture,
        seed=seed,
    )
    model.fit(
        data.x_train,
        data.y_train,
        epochs=epochs,
        learning_rate=learning_rate,
        validation_data=(data.x_test, data.y_test),
        **fit_kwargs,
    )
    return model


def train_dnn_with_budget(
    data: PreparedData,
    parameter_budget: int,
    epochs: int = 25,
    learning_rate: float = 0.1,
    seed: RandomState = 0,
) -> DNNClassifier:
    """Train a ``DNN-kP``-style baseline sized to ``parameter_budget``."""
    model = dnn_for_parameter_budget(
        num_features=data.num_features,
        num_classes=data.num_classes,
        parameter_budget=parameter_budget,
        seed=seed,
    )
    model.fit(
        data.x_train,
        data.y_train,
        epochs=epochs,
        learning_rate=learning_rate,
        validation_data=(data.x_test, data.y_test),
    )
    return model


def accuracy_summary(model, data: PreparedData) -> Dict[str, float]:
    """Train/test accuracy pair for any model exposing ``score``."""
    return {
        "train_accuracy": float(model.score(data.x_train, data.y_train)),
        "test_accuracy": float(model.score(data.x_test, data.y_test)),
    }
