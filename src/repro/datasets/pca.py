"""Principal component analysis, from scratch.

The paper projects 784-dimensional MNIST images to 16 dimensions (simulator)
or 4 dimensions (IBM-Q hardware) with PCA before quantum encoding.  This is a
standard covariance-eigendecomposition PCA implemented on NumPy/SciPy, with
the fit/transform interface the experiment harness expects.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import DatasetError


class PCA:
    """Principal component analysis via singular value decomposition.

    Parameters
    ----------
    n_components:
        Number of principal components to keep.
    """

    def __init__(self, n_components: int) -> None:
        if n_components <= 0:
            raise DatasetError(f"n_components must be positive, got {n_components}")
        self.n_components = int(n_components)
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray) -> "PCA":
        """Fit the principal axes on ``data`` (rows are samples)."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise DatasetError(f"expected 2-D data, got shape {data.shape}")
        n_samples, n_features = data.shape
        if self.n_components > min(n_samples, n_features):
            raise DatasetError(
                f"n_components={self.n_components} exceeds min(n_samples, n_features)="
                f"{min(n_samples, n_features)}"
            )
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        # Thin SVD: centered = U S Vt; principal axes are rows of Vt.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        explained = (singular_values**2) / max(n_samples - 1, 1)
        self.components_ = vt[: self.n_components]
        self.explained_variance_ = explained[: self.n_components]
        total_variance = explained.sum()
        self.explained_variance_ratio_ = (
            self.explained_variance_ / total_variance if total_variance > 0 else np.zeros(self.n_components)
        )
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project ``data`` onto the fitted principal axes."""
        if self.components_ is None or self.mean_ is None:
            raise DatasetError("PCA must be fitted before transform")
        data = np.asarray(data, dtype=float)
        return (data - self.mean_) @ self.components_.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its projection."""
        return self.fit(data).transform(data)

    def inverse_transform(self, projected: np.ndarray) -> np.ndarray:
        """Reconstruct (approximately) the original features from a projection."""
        if self.components_ is None or self.mean_ is None:
            raise DatasetError("PCA must be fitted before inverse_transform")
        projected = np.asarray(projected, dtype=float)
        return projected @ self.components_ + self.mean_

    def reconstruction_error(self, data: np.ndarray) -> float:
        """Mean squared reconstruction error of ``data`` under the fitted model."""
        data = np.asarray(data, dtype=float)
        reconstructed = self.inverse_transform(self.transform(data))
        return float(np.mean((data - reconstructed) ** 2))
