"""Datasets and preprocessing used by the paper's experiments."""

from repro.datasets.iris import (
    IRIS_CLASS_NAMES,
    IRIS_FEATURE_NAMES,
    Dataset,
    load_iris,
)
from repro.datasets.pca import PCA
from repro.datasets.preprocessing import (
    PreparedData,
    prepare_task,
    select_classes,
    subsample,
    train_test_split,
)
from repro.datasets.synthetic_mnist import (
    IMAGE_SIZE,
    generate_synthetic_mnist,
    render_digit,
)

__all__ = [
    "IRIS_CLASS_NAMES",
    "IRIS_FEATURE_NAMES",
    "Dataset",
    "load_iris",
    "PCA",
    "PreparedData",
    "prepare_task",
    "select_classes",
    "subsample",
    "train_test_split",
    "IMAGE_SIZE",
    "generate_synthetic_mnist",
    "render_digit",
]
