"""Fisher's Iris dataset, embedded.

The paper's multi-class proof of concept (Section 5.2) uses the classic Iris
dataset: 150 samples, 4 numeric features (sepal length/width, petal
length/width in centimetres), 3 classes (Setosa, Versicolour, Virginica).
The table is public domain and tiny, so it is embedded verbatim rather than
downloaded.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

#: Class names in label order (label ``i`` corresponds to ``IRIS_CLASS_NAMES[i]``).
IRIS_CLASS_NAMES: Tuple[str, str, str] = ("setosa", "versicolour", "virginica")

#: Feature names in column order.
IRIS_FEATURE_NAMES: Tuple[str, str, str, str] = (
    "sepal_length_cm",
    "sepal_width_cm",
    "petal_length_cm",
    "petal_width_cm",
)

# fmt: off
_IRIS_SETOSA = [
    [5.1, 3.5, 1.4, 0.2], [4.9, 3.0, 1.4, 0.2], [4.7, 3.2, 1.3, 0.2], [4.6, 3.1, 1.5, 0.2],
    [5.0, 3.6, 1.4, 0.2], [5.4, 3.9, 1.7, 0.4], [4.6, 3.4, 1.4, 0.3], [5.0, 3.4, 1.5, 0.2],
    [4.4, 2.9, 1.4, 0.2], [4.9, 3.1, 1.5, 0.1], [5.4, 3.7, 1.5, 0.2], [4.8, 3.4, 1.6, 0.2],
    [4.8, 3.0, 1.4, 0.1], [4.3, 3.0, 1.1, 0.1], [5.8, 4.0, 1.2, 0.2], [5.7, 4.4, 1.5, 0.4],
    [5.4, 3.9, 1.3, 0.4], [5.1, 3.5, 1.4, 0.3], [5.7, 3.8, 1.7, 0.3], [5.1, 3.8, 1.5, 0.3],
    [5.4, 3.4, 1.7, 0.2], [5.1, 3.7, 1.5, 0.4], [4.6, 3.6, 1.0, 0.2], [5.1, 3.3, 1.7, 0.5],
    [4.8, 3.4, 1.9, 0.2], [5.0, 3.0, 1.6, 0.2], [5.0, 3.4, 1.6, 0.4], [5.2, 3.5, 1.5, 0.2],
    [5.2, 3.4, 1.4, 0.2], [4.7, 3.2, 1.6, 0.2], [4.8, 3.1, 1.6, 0.2], [5.4, 3.4, 1.5, 0.4],
    [5.2, 4.1, 1.5, 0.1], [5.5, 4.2, 1.4, 0.2], [4.9, 3.1, 1.5, 0.2], [5.0, 3.2, 1.2, 0.2],
    [5.5, 3.5, 1.3, 0.2], [4.9, 3.6, 1.4, 0.1], [4.4, 3.0, 1.3, 0.2], [5.1, 3.4, 1.5, 0.2],
    [5.0, 3.5, 1.3, 0.3], [4.5, 2.3, 1.3, 0.3], [4.4, 3.2, 1.3, 0.2], [5.0, 3.5, 1.6, 0.6],
    [5.1, 3.8, 1.9, 0.4], [4.8, 3.0, 1.4, 0.3], [5.1, 3.8, 1.6, 0.2], [4.6, 3.2, 1.4, 0.2],
    [5.3, 3.7, 1.5, 0.2], [5.0, 3.3, 1.4, 0.2],
]

_IRIS_VERSICOLOUR = [
    [7.0, 3.2, 4.7, 1.4], [6.4, 3.2, 4.5, 1.5], [6.9, 3.1, 4.9, 1.5], [5.5, 2.3, 4.0, 1.3],
    [6.5, 2.8, 4.6, 1.5], [5.7, 2.8, 4.5, 1.3], [6.3, 3.3, 4.7, 1.6], [4.9, 2.4, 3.3, 1.0],
    [6.6, 2.9, 4.6, 1.3], [5.2, 2.7, 3.9, 1.4], [5.0, 2.0, 3.5, 1.0], [5.9, 3.0, 4.2, 1.5],
    [6.0, 2.2, 4.0, 1.0], [6.1, 2.9, 4.7, 1.4], [5.6, 2.9, 3.6, 1.3], [6.7, 3.1, 4.4, 1.4],
    [5.6, 3.0, 4.5, 1.5], [5.8, 2.7, 4.1, 1.0], [6.2, 2.2, 4.5, 1.5], [5.6, 2.5, 3.9, 1.1],
    [5.9, 3.2, 4.8, 1.8], [6.1, 2.8, 4.0, 1.3], [6.3, 2.5, 4.9, 1.5], [6.1, 2.8, 4.7, 1.2],
    [6.4, 2.9, 4.3, 1.3], [6.6, 3.0, 4.4, 1.4], [6.8, 2.8, 4.8, 1.4], [6.7, 3.0, 5.0, 1.7],
    [6.0, 2.9, 4.5, 1.5], [5.7, 2.6, 3.5, 1.0], [5.5, 2.4, 3.8, 1.1], [5.5, 2.4, 3.7, 1.0],
    [5.8, 2.7, 3.9, 1.2], [6.0, 2.7, 5.1, 1.6], [5.4, 3.0, 4.5, 1.5], [6.0, 3.4, 4.5, 1.6],
    [6.7, 3.1, 4.7, 1.5], [6.3, 2.3, 4.4, 1.3], [5.6, 3.0, 4.1, 1.3], [5.5, 2.5, 4.0, 1.3],
    [5.5, 2.6, 4.4, 1.2], [6.1, 3.0, 4.6, 1.4], [5.8, 2.6, 4.0, 1.2], [5.0, 2.3, 3.3, 1.0],
    [5.6, 2.7, 4.2, 1.3], [5.7, 3.0, 4.2, 1.2], [5.7, 2.9, 4.2, 1.3], [6.2, 2.9, 4.3, 1.3],
    [5.1, 2.5, 3.0, 1.1], [5.7, 2.8, 4.1, 1.3],
]

_IRIS_VIRGINICA = [
    [6.3, 3.3, 6.0, 2.5], [5.8, 2.7, 5.1, 1.9], [7.1, 3.0, 5.9, 2.1], [6.3, 2.9, 5.6, 1.8],
    [6.5, 3.0, 5.8, 2.2], [7.6, 3.0, 6.6, 2.1], [4.9, 2.5, 4.5, 1.7], [7.3, 2.9, 6.3, 1.8],
    [6.7, 2.5, 5.8, 1.8], [7.2, 3.6, 6.1, 2.5], [6.5, 3.2, 5.1, 2.0], [6.4, 2.7, 5.3, 1.9],
    [6.8, 3.0, 5.5, 2.1], [5.7, 2.5, 5.0, 2.0], [5.8, 2.8, 5.1, 2.4], [6.4, 3.2, 5.3, 2.3],
    [6.5, 3.0, 5.5, 1.8], [7.7, 3.8, 6.7, 2.2], [7.7, 2.6, 6.9, 2.3], [6.0, 2.2, 5.0, 1.5],
    [6.9, 3.2, 5.7, 2.3], [5.6, 2.8, 4.9, 2.0], [7.7, 2.8, 6.7, 2.0], [6.3, 2.7, 4.9, 1.8],
    [6.7, 3.3, 5.7, 2.1], [7.2, 3.2, 6.0, 1.8], [6.2, 2.8, 4.8, 1.8], [6.1, 3.0, 4.9, 1.8],
    [6.4, 2.8, 5.6, 2.1], [7.2, 3.0, 5.8, 1.6], [7.4, 2.8, 6.1, 1.9], [7.9, 3.8, 6.4, 2.0],
    [6.4, 2.8, 5.6, 2.2], [6.3, 2.8, 5.1, 1.5], [6.1, 2.6, 5.6, 1.4], [7.7, 3.0, 6.1, 2.3],
    [6.3, 3.4, 5.6, 2.4], [6.4, 3.1, 5.5, 1.8], [6.0, 3.0, 4.8, 1.8], [6.9, 3.1, 5.4, 2.1],
    [6.7, 3.1, 5.6, 2.4], [6.9, 3.1, 5.1, 2.3], [5.8, 2.7, 5.1, 1.9], [6.8, 3.2, 5.9, 2.3],
    [6.7, 3.3, 5.7, 2.5], [6.7, 3.0, 5.2, 2.3], [6.3, 2.5, 5.0, 1.9], [6.5, 3.0, 5.2, 2.0],
    [6.2, 3.4, 5.4, 2.3], [5.9, 3.0, 5.1, 1.8],
]
# fmt: on


@dataclasses.dataclass(frozen=True)
class Dataset:
    """A labelled numeric dataset.

    Attributes
    ----------
    features:
        Array of shape ``(n_samples, n_features)``.
    labels:
        Integer labels of shape ``(n_samples,)``.
    class_names:
        Human-readable class names indexed by label.
    feature_names:
        Names of the feature columns.
    name:
        Dataset identifier used in experiment reports.
    """

    features: np.ndarray
    labels: np.ndarray
    class_names: Tuple[str, ...]
    feature_names: Tuple[str, ...]
    name: str = "dataset"

    def __post_init__(self) -> None:
        object.__setattr__(self, "features", np.asarray(self.features, dtype=float))
        object.__setattr__(self, "labels", np.asarray(self.labels, dtype=int))
        if self.features.ndim < 2:
            raise ValueError(
                f"features must have at least 2 dimensions (samples x features), "
                f"got shape {self.features.shape}"
            )
        if self.labels.shape != (self.features.shape[0],):
            raise ValueError("labels must have one entry per sample")

    @property
    def num_samples(self) -> int:
        """Number of samples."""
        return int(self.features.shape[0])

    @property
    def num_features(self) -> int:
        """Number of feature values per sample (image datasets count pixels)."""
        return int(np.prod(self.features.shape[1:]))

    @property
    def num_classes(self) -> int:
        """Number of distinct classes present."""
        return int(np.unique(self.labels).size)

    def class_counts(self) -> dict:
        """Histogram of samples per label."""
        unique, counts = np.unique(self.labels, return_counts=True)
        return {int(label): int(count) for label, count in zip(unique, counts)}


def load_iris() -> Dataset:
    """Load the embedded Iris dataset (150 samples, 4 features, 3 classes)."""
    features = np.array(_IRIS_SETOSA + _IRIS_VERSICOLOUR + _IRIS_VIRGINICA, dtype=float)
    labels = np.array([0] * 50 + [1] * 50 + [2] * 50, dtype=int)
    return Dataset(
        features=features,
        labels=labels,
        class_names=IRIS_CLASS_NAMES,
        feature_names=IRIS_FEATURE_NAMES,
        name="iris",
    )
