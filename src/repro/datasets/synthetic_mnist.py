"""Synthetic MNIST substitute.

The paper evaluates on MNIST, which cannot be downloaded in this offline
environment.  This module procedurally renders 28x28 grey-scale digit images
from stroke skeletons (one polyline set per digit class) with per-sample
random affine jitter, stroke-thickness variation, Gaussian blur and pixel
noise.  The generator is deterministic given a seed.

Why this preserves the experiments' shape
-----------------------------------------
The classifiers in the paper never see raw pixels: every model receives a
16-dimensional (simulator) or 4-dimensional (hardware) PCA projection.  What
matters for the comparisons is that (a) classes are separable but not
trivially so in that projection, and (b) visually similar digit pairs (3/8,
3/9) remain harder than dissimilar ones (1/5), which the shared stroke
skeletons reproduce.  EXPERIMENTS.md reports the shape checks rather than the
paper's absolute accuracies.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import ndimage

from repro.datasets.iris import Dataset
from repro.exceptions import DatasetError
from repro.utils.rng import RandomState, ensure_rng

#: Image side length (matches MNIST).
IMAGE_SIZE = 28

# Stroke skeletons per digit, in a [0, 1] x [0, 1] coordinate frame with the
# origin at the top-left (x = column, y = row).  Each stroke is a polyline.
_Point = Tuple[float, float]
_Stroke = List[_Point]

_DIGIT_STROKES: Dict[int, List[_Stroke]] = {
    0: [[(0.50, 0.15), (0.75, 0.30), (0.78, 0.70), (0.50, 0.85), (0.25, 0.70), (0.22, 0.30), (0.50, 0.15)]],
    1: [[(0.40, 0.25), (0.55, 0.15), (0.55, 0.85)], [(0.38, 0.85), (0.72, 0.85)]],
    2: [[(0.28, 0.30), (0.45, 0.15), (0.68, 0.22), (0.70, 0.42), (0.30, 0.82)], [(0.30, 0.84), (0.75, 0.84)]],
    3: [[(0.28, 0.20), (0.60, 0.15), (0.70, 0.30), (0.52, 0.48)], [(0.52, 0.48), (0.72, 0.62), (0.62, 0.83), (0.28, 0.80)]],
    4: [[(0.62, 0.85), (0.62, 0.15), (0.28, 0.60), (0.78, 0.60)]],
    5: [[(0.70, 0.16), (0.32, 0.16), (0.30, 0.48), (0.62, 0.45), (0.72, 0.65), (0.58, 0.84), (0.28, 0.80)]],
    6: [[(0.65, 0.15), (0.38, 0.35), (0.28, 0.65), (0.45, 0.85), (0.68, 0.72), (0.62, 0.52), (0.32, 0.56)]],
    7: [[(0.25, 0.17), (0.75, 0.17), (0.45, 0.85)], [(0.38, 0.52), (0.65, 0.52)]],
    8: [[(0.50, 0.15), (0.70, 0.27), (0.52, 0.48), (0.30, 0.27), (0.50, 0.15)],
        [(0.52, 0.48), (0.74, 0.66), (0.50, 0.85), (0.27, 0.66), (0.52, 0.48)]],
    9: [[(0.68, 0.40), (0.45, 0.48), (0.30, 0.32), (0.45, 0.15), (0.68, 0.25), (0.68, 0.40), (0.60, 0.85)]],
}


def _draw_stroke(image: np.ndarray, stroke: _Stroke, thickness: float) -> None:
    """Rasterise one polyline onto ``image`` with the given stroke thickness."""
    size = image.shape[0]
    for (x0, y0), (x1, y1) in zip(stroke[:-1], stroke[1:]):
        length = math.hypot(x1 - x0, y1 - y0)
        steps = max(int(length * size * 2), 2)
        for step in range(steps + 1):
            t = step / steps
            cx = (x0 + t * (x1 - x0)) * (size - 1)
            cy = (y0 + t * (y1 - y0)) * (size - 1)
            radius = thickness * size / 2.0
            low_r, high_r = int(max(cy - radius, 0)), int(min(cy + radius + 1, size))
            low_c, high_c = int(max(cx - radius, 0)), int(min(cx + radius + 1, size))
            for row in range(low_r, high_r):
                for col in range(low_c, high_c):
                    if (row - cy) ** 2 + (col - cx) ** 2 <= radius**2:
                        image[row, col] = 1.0


def _affine_jitter(points: Sequence[_Point], rng: np.random.Generator) -> List[_Point]:
    """Random rotation, scaling, shear and translation of skeleton points."""
    angle = rng.normal(0.0, 0.10)
    scale_x = 1.0 + rng.normal(0.0, 0.08)
    scale_y = 1.0 + rng.normal(0.0, 0.08)
    shear = rng.normal(0.0, 0.08)
    shift_x = rng.normal(0.0, 0.03)
    shift_y = rng.normal(0.0, 0.03)
    cos_a, sin_a = math.cos(angle), math.sin(angle)
    out = []
    for x, y in points:
        # Centre, transform, un-centre.
        cx, cy = x - 0.5, y - 0.5
        tx = scale_x * (cos_a * cx - sin_a * cy) + shear * cy
        ty = scale_y * (sin_a * cx + cos_a * cy)
        out.append((tx + 0.5 + shift_x, ty + 0.5 + shift_y))
    return out


def render_digit(
    digit: int,
    rng: RandomState = None,
    image_size: int = IMAGE_SIZE,
    noise_level: float = 0.08,
) -> np.ndarray:
    """Render one synthetic digit image.

    Parameters
    ----------
    digit:
        Digit class, 0-9.
    rng:
        Seed or generator controlling the per-sample jitter.
    image_size:
        Output image side length.
    noise_level:
        Standard deviation of additive pixel noise.

    Returns
    -------
    numpy.ndarray
        ``(image_size, image_size)`` array with values in ``[0, 1]``.
    """
    if digit not in _DIGIT_STROKES:
        raise DatasetError(f"digit must be 0-9, got {digit}")
    generator = ensure_rng(rng)
    image = np.zeros((image_size, image_size), dtype=float)
    thickness = 0.085 + generator.normal(0.0, 0.012)
    thickness = float(np.clip(thickness, 0.05, 0.14))
    for stroke in _DIGIT_STROKES[digit]:
        jittered = _affine_jitter(stroke, generator)
        _draw_stroke(image, jittered, thickness)
    image = ndimage.gaussian_filter(image, sigma=0.7)
    if noise_level > 0:
        image = image + generator.normal(0.0, noise_level, size=image.shape)
    image = np.clip(image, 0.0, 1.0)
    maximum = image.max()
    if maximum > 0:
        image = image / maximum
    return image


def generate_synthetic_mnist(
    digits: Sequence[int] = tuple(range(10)),
    samples_per_digit: int = 50,
    rng: RandomState = None,
    image_size: int = IMAGE_SIZE,
    noise_level: float = 0.08,
    flatten: bool = True,
) -> Dataset:
    """Generate a labelled synthetic-MNIST dataset.

    Parameters
    ----------
    digits:
        Digit classes to include.  Labels in the returned dataset are the
        digits themselves (not re-indexed), matching how the paper names its
        tasks, e.g. the "(3, 6)" binary task.
    samples_per_digit:
        Number of images per class.
    rng:
        Seed or generator; the full dataset is deterministic given the seed.
    image_size, noise_level:
        Rendering parameters (see :func:`render_digit`).
    flatten:
        When true, images are flattened to ``image_size**2`` feature vectors
        (the representation PCA consumes).
    """
    digits = tuple(int(d) for d in digits)
    if not digits:
        raise DatasetError("digits must not be empty")
    if len(set(digits)) != len(digits):
        raise DatasetError(f"digits must be distinct, got {digits}")
    if samples_per_digit <= 0:
        raise DatasetError(f"samples_per_digit must be positive, got {samples_per_digit}")
    generator = ensure_rng(rng)
    images: List[np.ndarray] = []
    labels: List[int] = []
    for digit in digits:
        for _ in range(samples_per_digit):
            images.append(render_digit(digit, rng=generator, image_size=image_size, noise_level=noise_level))
            labels.append(digit)
    stacked = np.stack(images)
    features = stacked.reshape(len(images), -1) if flatten else stacked
    return Dataset(
        features=features,
        labels=np.asarray(labels, dtype=int),
        class_names=tuple(str(d) for d in range(10)),
        feature_names=tuple(f"pixel_{i}" for i in range(features.shape[1])) if flatten else ("image",),
        name="synthetic_mnist",
    )
