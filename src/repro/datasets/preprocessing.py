"""Dataset preprocessing: splits, class selection, subsampling, pipelines.

These helpers reproduce the data path of the paper's experiments:
select the task's classes → (optionally) PCA → min-max normalise into
``[0, 1]`` → train/test split → feed to QuClassi and to the baselines
(the paper stresses that classical baselines receive exactly the same
normalised, PCA-reduced data).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.iris import Dataset
from repro.datasets.pca import PCA
from repro.encoding.normalization import MinMaxNormalizer
from repro.exceptions import DatasetError
from repro.utils.rng import RandomState, ensure_rng


def select_classes(dataset: Dataset, classes: Sequence[int], relabel: bool = True) -> Dataset:
    """Restrict a dataset to ``classes``.

    Parameters
    ----------
    dataset:
        Source dataset.
    classes:
        Original labels to keep, in the order they should be re-indexed.
    relabel:
        When true (default), labels are re-indexed to ``0..len(classes)-1``
        following the order of ``classes``; class names are carried over.
    """
    classes = tuple(int(c) for c in classes)
    if len(set(classes)) != len(classes) or not classes:
        raise DatasetError(f"classes must be a non-empty set of distinct labels, got {classes}")
    mask = np.isin(dataset.labels, classes)
    if not mask.any():
        raise DatasetError(f"no samples found for classes {classes}")
    features = dataset.features[mask]
    labels = dataset.labels[mask]
    if relabel:
        mapping = {original: new for new, original in enumerate(classes)}
        labels = np.array([mapping[int(label)] for label in labels], dtype=int)
        class_names = tuple(
            dataset.class_names[original] if original < len(dataset.class_names) else str(original)
            for original in classes
        )
    else:
        class_names = dataset.class_names
    return Dataset(
        features=features,
        labels=labels,
        class_names=class_names,
        feature_names=dataset.feature_names,
        name=f"{dataset.name}_{'_'.join(str(c) for c in classes)}",
    )


def subsample(dataset: Dataset, samples_per_class: int, rng: RandomState = None) -> Dataset:
    """Take a balanced random subsample (the artifact's ``SUBSAMPLE`` knob)."""
    if samples_per_class <= 0:
        raise DatasetError(f"samples_per_class must be positive, got {samples_per_class}")
    generator = ensure_rng(rng)
    indices = []
    for label in np.unique(dataset.labels):
        label_indices = np.flatnonzero(dataset.labels == label)
        if samples_per_class > label_indices.size:
            raise DatasetError(
                f"class {label} has only {label_indices.size} samples, "
                f"cannot subsample {samples_per_class}"
            )
        chosen = generator.choice(label_indices, size=samples_per_class, replace=False)
        indices.append(chosen)
    order = np.concatenate(indices)
    return Dataset(
        features=dataset.features[order],
        labels=dataset.labels[order],
        class_names=dataset.class_names,
        feature_names=dataset.feature_names,
        name=f"{dataset.name}_sub{samples_per_class}",
    )


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.3,
    rng: RandomState = None,
    stratify: bool = True,
) -> Tuple[Dataset, Dataset]:
    """Split into train and test subsets, stratified by class by default."""
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError(f"test_fraction must lie in (0, 1), got {test_fraction}")
    generator = ensure_rng(rng)
    train_indices = []
    test_indices = []
    if stratify:
        for label in np.unique(dataset.labels):
            label_indices = np.flatnonzero(dataset.labels == label)
            permuted = generator.permutation(label_indices)
            n_test = max(1, int(round(test_fraction * permuted.size)))
            if n_test >= permuted.size:
                n_test = permuted.size - 1
            test_indices.append(permuted[:n_test])
            train_indices.append(permuted[n_test:])
        train_order = np.concatenate(train_indices)
        test_order = np.concatenate(test_indices)
    else:
        permuted = generator.permutation(dataset.num_samples)
        n_test = max(1, int(round(test_fraction * dataset.num_samples)))
        test_order = permuted[:n_test]
        train_order = permuted[n_test:]
    train_order = generator.permutation(train_order)
    test_order = generator.permutation(test_order)

    def build(split_name: str, order: np.ndarray) -> Dataset:
        return Dataset(
            features=dataset.features[order],
            labels=dataset.labels[order],
            class_names=dataset.class_names,
            feature_names=dataset.feature_names,
            name=f"{dataset.name}_{split_name}",
        )

    return build("train", train_order), build("test", test_order)


@dataclasses.dataclass
class PreparedData:
    """A ready-to-train task: normalised train/test splits plus the fitted pipeline.

    Attributes
    ----------
    x_train, y_train, x_test, y_test:
        Normalised features in ``[0, 1]`` and integer labels re-indexed to
        ``0..n_classes-1``.
    class_names:
        Names of the task's classes in label order.
    pca:
        Fitted PCA (``None`` when no reduction was applied).
    normalizer:
        Fitted min-max normalizer.
    """

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    class_names: Tuple[str, ...]
    pca: Optional[PCA]
    normalizer: MinMaxNormalizer

    @property
    def num_features(self) -> int:
        """Number of (reduced) feature dimensions."""
        return int(self.x_train.shape[1])

    @property
    def num_classes(self) -> int:
        """Number of classes in the task."""
        return len(self.class_names)


def prepare_task(
    dataset: Dataset,
    classes: Optional[Sequence[int]] = None,
    n_components: Optional[int] = None,
    test_fraction: float = 0.3,
    samples_per_class: Optional[int] = None,
    margin: float = 0.0,
    rng: RandomState = None,
) -> PreparedData:
    """Run the full preprocessing pipeline for one classification task.

    Steps: class selection → balanced subsampling → train/test split →
    PCA fitted on the training split → min-max normalisation into ``[0, 1]``
    fitted on the training split.
    """
    generator = ensure_rng(rng)
    task = select_classes(dataset, classes) if classes is not None else dataset
    if samples_per_class is not None:
        task = subsample(task, samples_per_class, rng=generator)
    train, test = train_test_split(task, test_fraction=test_fraction, rng=generator)

    pca: Optional[PCA] = None
    x_train, x_test = train.features, test.features
    if n_components is not None and n_components < x_train.shape[1]:
        # PCA cannot produce more components than training samples; clamp so
        # heavily subsampled runs (e.g. hardware experiments) still work.
        effective_components = min(n_components, x_train.shape[0])
        pca = PCA(effective_components)
        x_train = pca.fit_transform(x_train)
        x_test = pca.transform(x_test)

    normalizer = MinMaxNormalizer(margin=margin)
    x_train = normalizer.fit_transform(x_train)
    x_test = normalizer.transform(x_test)

    return PreparedData(
        x_train=x_train,
        y_train=train.labels,
        x_test=x_test,
        y_test=test.labels,
        class_names=task.class_names,
        pca=pca,
        normalizer=normalizer,
    )
