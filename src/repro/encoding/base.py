"""Encoder interface.

A data encoder translates a classical feature vector into (a) a state-
preparation :class:`~repro.quantum.circuit.QuantumCircuit` acting on
``num_qubits`` qubits initialised to ``|0...0>``, and (b) the corresponding
:class:`~repro.quantum.statevector.Statevector` for the fast analytic path.
QuClassi's trainer uses whichever representation the execution backend needs.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.exceptions import EncodingError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import Statevector


class DataEncoder(abc.ABC):
    """Translate classical feature vectors into quantum states."""

    @abc.abstractmethod
    def num_qubits(self, num_features: int) -> int:
        """Number of qubits needed to encode ``num_features`` features."""

    @abc.abstractmethod
    def encoding_circuit(self, features: Sequence[float], offset: int = 0, total_qubits: int | None = None) -> QuantumCircuit:
        """State-preparation circuit for one feature vector.

        Parameters
        ----------
        features:
            Classical feature vector (already normalised to the encoder's
            expected range).
        offset:
            Index of the first qubit the encoding should act on — the
            QuClassi builder places data qubits after the learned-state
            qubits.
        total_qubits:
            Total width of the returned circuit; defaults to
            ``offset + num_qubits(len(features))``.
        """

    def encode(self, features: Sequence[float]) -> Statevector:
        """Return the encoded state as a statevector (fast analytic path)."""
        features = np.asarray(features, dtype=float)
        circuit = self.encoding_circuit(features)
        state = Statevector(circuit.num_qubits)
        return state.evolve(circuit)

    def validate_features(self, features: Sequence[float], low: float = 0.0, high: float = 1.0) -> np.ndarray:
        """Validate that features are finite and inside ``[low, high]``."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 1:
            raise EncodingError(f"expected a 1-D feature vector, got shape {features.shape}")
        if features.size == 0:
            raise EncodingError("feature vector must not be empty")
        if not np.all(np.isfinite(features)):
            raise EncodingError("feature vector contains non-finite values")
        if np.any(features < low - 1e-9) or np.any(features > high + 1e-9):
            raise EncodingError(
                f"features must lie in [{low}, {high}] — normalise the dataset first "
                f"(got range [{features.min():.4f}, {features.max():.4f}])"
            )
        return np.clip(features, low, high)
