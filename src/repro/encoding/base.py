"""Encoder interface.

A data encoder translates a classical feature vector into (a) a state-
preparation :class:`~repro.quantum.circuit.QuantumCircuit` acting on
``num_qubits`` qubits initialised to ``|0...0>``, and (b) the corresponding
:class:`~repro.quantum.statevector.Statevector` for the fast analytic path.
QuClassi's trainer uses whichever representation the execution backend needs.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.exceptions import EncodingError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import Statevector


class DataEncoder(abc.ABC):
    """Translate classical feature vectors into quantum states."""

    #: Whether this encoder can compile its rotation angles as symbolic
    #: bind-site columns (:meth:`symbolic_encoding_circuit` +
    #: :meth:`angle_matrix`).  Encoders whose circuit *structure* depends on
    #: the feature values (amplitude/basis encodings) leave this ``False``
    #: and the whole-grid SweepProgram path falls back to per-sample binding.
    supports_angle_columns = False

    @abc.abstractmethod
    def num_qubits(self, num_features: int) -> int:
        """Number of qubits needed to encode ``num_features`` features."""

    @abc.abstractmethod
    def encoding_circuit(self, features: Sequence[float], offset: int = 0, total_qubits: int | None = None) -> QuantumCircuit:
        """State-preparation circuit for one feature vector.

        Parameters
        ----------
        features:
            Classical feature vector (already normalised to the encoder's
            expected range).
        offset:
            Index of the first qubit the encoding should act on — the
            QuClassi builder places data qubits after the learned-state
            qubits.
        total_qubits:
            Total width of the returned circuit; defaults to
            ``offset + num_qubits(len(features))``.
        """

    def symbolic_encoding_circuit(
        self,
        num_features: int,
        parameters: Sequence,
        offset: int = 0,
        total_qubits: int | None = None,
    ) -> QuantumCircuit:
        """Structure-only twin of :meth:`encoding_circuit` over ``parameters``.

        One :class:`~repro.quantum.operations.Parameter` per rotation site,
        in the same order :meth:`angle_matrix` emits columns, so compiling
        the result with ``bind_floats=False`` yields a program whose encoder
        columns bind straight from the angle matrix.  Only available when
        :attr:`supports_angle_columns` is ``True``.
        """
        raise EncodingError(
            f"{type(self).__name__} does not support symbolic angle columns"
        )

    def angle_matrix(self, feature_matrix) -> np.ndarray:
        """Per-sample rotation angles, shape ``(samples, num_angle_sites)``.

        Row ``i`` holds the angles :meth:`encoding_circuit` would bind for
        ``feature_matrix[i]``, in :meth:`symbolic_encoding_circuit` parameter
        order.  Only available when :attr:`supports_angle_columns` is
        ``True``.
        """
        raise EncodingError(
            f"{type(self).__name__} does not support symbolic angle columns"
        )

    def validate_feature_matrix(
        self, feature_matrix, low: float = 0.0, high: float = 1.0
    ) -> np.ndarray:
        """Validate a ``(samples, features)`` matrix like :meth:`validate_features`."""
        feature_matrix = np.asarray(feature_matrix, dtype=float)
        if feature_matrix.ndim != 2:
            raise EncodingError(
                f"expected a 2-D feature matrix, got shape {feature_matrix.shape}"
            )
        if feature_matrix.shape[1] == 0:
            raise EncodingError("feature vectors must not be empty")
        if not np.all(np.isfinite(feature_matrix)):
            raise EncodingError("feature matrix contains non-finite values")
        if np.any(feature_matrix < low - 1e-9) or np.any(feature_matrix > high + 1e-9):
            raise EncodingError(
                f"features must lie in [{low}, {high}] — normalise the dataset "
                f"first (got range [{feature_matrix.min():.4f}, "
                f"{feature_matrix.max():.4f}])"
            )
        return np.clip(feature_matrix, low, high)

    def encode(self, features: Sequence[float]) -> Statevector:
        """Return the encoded state as a statevector (fast analytic path)."""
        features = np.asarray(features, dtype=float)
        circuit = self.encoding_circuit(features)
        state = Statevector(circuit.num_qubits)
        return state.evolve(circuit)

    def validate_features(self, features: Sequence[float], low: float = 0.0, high: float = 1.0) -> np.ndarray:
        """Validate that features are finite and inside ``[low, high]``."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 1:
            raise EncodingError(f"expected a 1-D feature vector, got shape {features.shape}")
        if features.size == 0:
            raise EncodingError("feature vector must not be empty")
        if not np.all(np.isfinite(features)):
            raise EncodingError("feature vector contains non-finite values")
        if np.any(features < low - 1e-9) or np.any(features > high + 1e-9):
            raise EncodingError(
                f"features must lie in [{low}, {high}] — normalise the dataset first "
                f"(got range [{features.min():.4f}, {features.max():.4f}])"
            )
        return np.clip(features, low, high)
