"""Feature normalisation for quantum encoding.

The angle encodings require every feature in ``[0, 1]`` (a qubit expectation
value).  :class:`MinMaxNormalizer` implements the fit/transform pattern used
throughout the experiments: fit the ranges on the training split and apply the
same affine map to the test split, clipping overshoot.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import EncodingError


class MinMaxNormalizer:
    """Per-feature min-max scaling into ``[feature_min, feature_max]``.

    Parameters
    ----------
    feature_min, feature_max:
        Target range; defaults to ``[0, 1]`` as required by the angle map
        ``theta = 2 asin(sqrt(x))``.
    margin:
        Optional shrinkage applied to the target range.  The paper notes the
        dual-dimension encoding can misbehave at extreme values of ``x``; a
        small margin (e.g. 0.05) keeps encoded values away from exactly 0/1.
    """

    def __init__(self, feature_min: float = 0.0, feature_max: float = 1.0, margin: float = 0.0) -> None:
        if feature_max <= feature_min:
            raise EncodingError("feature_max must exceed feature_min")
        if not 0.0 <= margin < 0.5:
            raise EncodingError(f"margin must lie in [0, 0.5), got {margin}")
        self.feature_min = float(feature_min)
        self.feature_max = float(feature_max)
        self.margin = float(margin)
        self.data_min_: Optional[np.ndarray] = None
        self.data_max_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def fit(self, data: np.ndarray) -> "MinMaxNormalizer":
        """Learn per-feature minima and maxima from ``data`` (rows = samples)."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] == 0:
            raise EncodingError(f"expected a non-empty 2-D array, got shape {data.shape}")
        self.data_min_ = data.min(axis=0)
        self.data_max_ = data.max(axis=0)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Scale ``data`` with the fitted ranges, clipping to the target range."""
        if self.data_min_ is None or self.data_max_ is None:
            raise EncodingError("normalizer must be fitted before transform")
        data = np.asarray(data, dtype=float)
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0.0, 1.0, span)
        unit = (data - self.data_min_) / span
        low = self.margin
        high = 1.0 - self.margin
        scaled_unit = low + unit * (high - low)
        scaled = self.feature_min + scaled_unit * (self.feature_max - self.feature_min)
        return np.clip(scaled, self.feature_min, self.feature_max)

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return the transformed copy."""
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Map scaled values back to the original feature ranges."""
        if self.data_min_ is None or self.data_max_ is None:
            raise EncodingError("normalizer must be fitted before inverse_transform")
        data = np.asarray(data, dtype=float)
        low = self.margin
        high = 1.0 - self.margin
        unit_scaled = (data - self.feature_min) / (self.feature_max - self.feature_min)
        unit = (unit_scaled - low) / (high - low)
        span = self.data_max_ - self.data_min_
        return self.data_min_ + unit * span
