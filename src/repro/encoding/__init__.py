"""Classical-to-quantum data encodings (paper Section 4.2)."""

from repro.encoding.amplitude import AmplitudeEncoder
from repro.encoding.angle import DualAngleEncoder, SingleAngleEncoder, rotation_angle
from repro.encoding.base import DataEncoder
from repro.encoding.basis import BasisEncoder
from repro.encoding.normalization import MinMaxNormalizer

__all__ = [
    "AmplitudeEncoder",
    "DualAngleEncoder",
    "SingleAngleEncoder",
    "rotation_angle",
    "DataEncoder",
    "BasisEncoder",
    "MinMaxNormalizer",
]
