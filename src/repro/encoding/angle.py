"""Angle (expectation) encodings — Section 4.2 of the paper.

Two variants are provided:

* :class:`DualAngleEncoder` — the paper's default: **two** data dimensions
  per qubit.  Dimension ``2i`` sets the qubit's Z-expectation through
  ``RY(2 * asin(sqrt(x)))`` and dimension ``2i + 1`` rotates around Z by
  ``RZ(2 * asin(sqrt(x)))`` (paper Eq. 12).  This halves the qubit count,
  which is what lets QuClassi encode 16 PCA dimensions in 8 qubits.
* :class:`SingleAngleEncoder` — one dimension per qubit through the RY
  rotation only; the ablation baseline the paper mentions when discussing
  extreme feature values.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.encoding.base import DataEncoder
from repro.exceptions import EncodingError
from repro.quantum.circuit import QuantumCircuit


def rotation_angle(value: float) -> float:
    """The paper's angle map ``theta = 2 * asin(sqrt(x))`` for ``x`` in [0, 1].

    With this choice, measuring the qubit prepared by ``RY(theta)|0>`` yields
    ``P(|1>) = sin^2(theta / 2) = x``: the classical value becomes the qubit's
    excited-state probability.
    """
    if value < -1e-9 or value > 1.0 + 1e-9:
        raise EncodingError(f"encoded values must lie in [0, 1], got {value}")
    clipped = min(max(value, 0.0), 1.0)
    return 2.0 * math.asin(math.sqrt(clipped))


def _angle_matrix(encoder: DataEncoder, feature_matrix) -> np.ndarray:
    """Angles for every (sample, feature) cell via the scalar angle map.

    Deliberately applies :func:`rotation_angle` element by element rather
    than a vectorised ``np.arcsin``: the two differ in the last ULP on some
    inputs, and the whole-grid SweepProgram path must bind *bitwise* the
    same angles as the per-sample ``encoding_circuit`` walk so grid sweeps
    stay seed-identical to the loop they replace.
    """
    feature_matrix = encoder.validate_feature_matrix(feature_matrix)
    angles = np.empty(feature_matrix.shape, dtype=float)
    for row in range(feature_matrix.shape[0]):
        for column in range(feature_matrix.shape[1]):
            angles[row, column] = rotation_angle(feature_matrix[row, column])
    return angles


def _check_symbolic_args(num_features: int, parameters: Sequence) -> None:
    if num_features <= 0:
        raise EncodingError(f"num_features must be positive, got {num_features}")
    if len(parameters) != num_features:
        raise EncodingError(
            f"expected one parameter per feature ({num_features}), got "
            f"{len(parameters)}"
        )


class DualAngleEncoder(DataEncoder):
    """Two data dimensions per qubit via successive RY and RZ rotations."""

    #: Number of classical dimensions stored per qubit.
    dims_per_qubit = 2

    supports_angle_columns = True

    def num_qubits(self, num_features: int) -> int:
        """Qubits needed: ``ceil(num_features / 2)``."""
        if num_features <= 0:
            raise EncodingError(f"num_features must be positive, got {num_features}")
        return (num_features + 1) // 2

    def encoding_circuit(
        self,
        features: Sequence[float],
        offset: int = 0,
        total_qubits: Optional[int] = None,
    ) -> QuantumCircuit:
        """RY/RZ state-preparation circuit for one normalised feature vector."""
        features = self.validate_features(features)
        width = self.num_qubits(features.size)
        total = total_qubits if total_qubits is not None else offset + width
        if total < offset + width:
            raise EncodingError(
                f"total_qubits={total} too small for {width} data qubits at offset {offset}"
            )
        circuit = QuantumCircuit(total, 0, name="dual_angle_encoding")
        for qubit_index in range(width):
            first = features[2 * qubit_index]
            circuit.ry(rotation_angle(first), offset + qubit_index, label="data")
            second_index = 2 * qubit_index + 1
            if second_index < features.size:
                second = features[second_index]
                circuit.rz(rotation_angle(second), offset + qubit_index, label="data")
        return circuit

    def angles(self, features: Sequence[float]) -> np.ndarray:
        """Rotation angles (RY, RZ interleaved) used for a feature vector."""
        features = self.validate_features(features)
        return np.array([rotation_angle(x) for x in features])

    def symbolic_encoding_circuit(
        self,
        num_features: int,
        parameters: Sequence,
        offset: int = 0,
        total_qubits: Optional[int] = None,
    ) -> QuantumCircuit:
        """Structure twin of :meth:`encoding_circuit`: one parameter per feature."""
        _check_symbolic_args(num_features, parameters)
        width = self.num_qubits(num_features)
        total = total_qubits if total_qubits is not None else offset + width
        if total < offset + width:
            raise EncodingError(
                f"total_qubits={total} too small for {width} data qubits at offset {offset}"
            )
        circuit = QuantumCircuit(total, 0, name="dual_angle_encoding")
        for qubit_index in range(width):
            circuit.ry(parameters[2 * qubit_index], offset + qubit_index, label="data")
            second_index = 2 * qubit_index + 1
            if second_index < num_features:
                circuit.rz(parameters[second_index], offset + qubit_index, label="data")
        return circuit

    def angle_matrix(self, feature_matrix) -> np.ndarray:
        """Per-sample angles in feature order (RY, RZ interleaved per qubit)."""
        return _angle_matrix(self, feature_matrix)


class SingleAngleEncoder(DataEncoder):
    """One data dimension per qubit via an RY rotation only (ablation)."""

    dims_per_qubit = 1

    supports_angle_columns = True

    def num_qubits(self, num_features: int) -> int:
        """Qubits needed: one per feature."""
        if num_features <= 0:
            raise EncodingError(f"num_features must be positive, got {num_features}")
        return num_features

    def encoding_circuit(
        self,
        features: Sequence[float],
        offset: int = 0,
        total_qubits: Optional[int] = None,
    ) -> QuantumCircuit:
        """RY-only state-preparation circuit."""
        features = self.validate_features(features)
        width = features.size
        total = total_qubits if total_qubits is not None else offset + width
        if total < offset + width:
            raise EncodingError(
                f"total_qubits={total} too small for {width} data qubits at offset {offset}"
            )
        circuit = QuantumCircuit(total, 0, name="single_angle_encoding")
        for qubit_index, value in enumerate(features):
            circuit.ry(rotation_angle(value), offset + qubit_index, label="data")
        return circuit

    def symbolic_encoding_circuit(
        self,
        num_features: int,
        parameters: Sequence,
        offset: int = 0,
        total_qubits: Optional[int] = None,
    ) -> QuantumCircuit:
        """Structure twin of :meth:`encoding_circuit`: one parameter per feature."""
        _check_symbolic_args(num_features, parameters)
        width = num_features
        total = total_qubits if total_qubits is not None else offset + width
        if total < offset + width:
            raise EncodingError(
                f"total_qubits={total} too small for {width} data qubits at offset {offset}"
            )
        circuit = QuantumCircuit(total, 0, name="single_angle_encoding")
        for qubit_index in range(num_features):
            circuit.ry(parameters[qubit_index], offset + qubit_index, label="data")
        return circuit

    def angle_matrix(self, feature_matrix) -> np.ndarray:
        """Per-sample RY angles in feature order."""
        return _angle_matrix(self, feature_matrix)
