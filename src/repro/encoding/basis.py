"""Basis (binary) encoding.

Maps a vector of bits onto computational-basis states: feature ``i`` sets
qubit ``i`` to ``|1>`` via an X gate when the (thresholded) value is one.
This is the "one data point per qubit, loses a lot of information, but robust
to noise" end of the encoding spectrum the paper discusses in Section 4.2,
and it is also what the QuantumFlow-like baseline uses for its circuit
mapping.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.encoding.base import DataEncoder
from repro.exceptions import EncodingError
from repro.quantum.circuit import QuantumCircuit


class BasisEncoder(DataEncoder):
    """Threshold features into bits and load them with X gates.

    Parameters
    ----------
    threshold:
        Values strictly greater than ``threshold`` encode as ``|1>``.
    """

    def __init__(self, threshold: float = 0.5) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise EncodingError(f"threshold must lie in [0, 1], got {threshold}")
        self.threshold = float(threshold)

    def num_qubits(self, num_features: int) -> int:
        """Qubits needed: one per feature."""
        if num_features <= 0:
            raise EncodingError(f"num_features must be positive, got {num_features}")
        return num_features

    def bits(self, features: Sequence[float]) -> np.ndarray:
        """Thresholded bit vector for a feature vector."""
        features = self.validate_features(features)
        return (features > self.threshold).astype(int)

    def encoding_circuit(
        self,
        features: Sequence[float],
        offset: int = 0,
        total_qubits: Optional[int] = None,
    ) -> QuantumCircuit:
        """X-gate loading circuit for the thresholded bits."""
        bits = self.bits(features)
        width = bits.size
        total = total_qubits if total_qubits is not None else offset + width
        if total < offset + width:
            raise EncodingError(
                f"total_qubits={total} too small for {width} data qubits at offset {offset}"
            )
        circuit = QuantumCircuit(total, 0, name="basis_encoding")
        for qubit_index, bit in enumerate(bits):
            if bit:
                circuit.x(offset + qubit_index)
        return circuit
