"""Amplitude (state-vector) encoding.

Encodes ``2**n`` classical values into the amplitudes of an ``n``-qubit state.
The paper mentions this as the qubit-cheapest but most noise-sensitive end of
the encoding spectrum; it is provided for the encoding ablation benchmark and
for users who want maximal data density.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import arrays
from repro.encoding.base import DataEncoder
from repro.exceptions import EncodingError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import Statevector


class AmplitudeEncoder(DataEncoder):
    """Encode a feature vector as the amplitudes of a quantum state.

    Vectors are padded with zeros up to the next power of two and normalised
    to unit Euclidean norm.  The state-preparation circuit uses the standard
    branch-probability construction: at tree depth ``d`` a multiplexed RY
    rotation conditioned on the first ``d`` qubits splits the remaining norm
    between the two sub-branches.  Multiplexed rotations are decomposed
    recursively into RY and CX gates only, so the circuit stays in the native
    basis of the simulated hardware.

    The encoder only supports non-negative features (as produced by the
    min-max normalisation used throughout the library); signs would require
    an extra multiplexed RZ stage that QuClassi never needs.
    """

    def num_qubits(self, num_features: int) -> int:
        """Qubits needed: ``ceil(log2(num_features))`` (minimum one)."""
        if num_features <= 0:
            raise EncodingError(f"num_features must be positive, got {num_features}")
        return max(1, math.ceil(math.log2(num_features)))

    def amplitudes(self, features: Sequence[float]) -> np.ndarray:
        """Zero-padded, unit-norm amplitude vector for ``features``."""
        features = np.asarray(features, dtype=float)
        if features.ndim != 1 or features.size == 0:
            raise EncodingError("features must be a non-empty 1-D vector")
        if not np.all(np.isfinite(features)):
            raise EncodingError("features contain non-finite values")
        if np.any(features < 0):
            raise EncodingError("amplitude encoding expects non-negative features; shift them first")
        width = self.num_qubits(features.size)
        padded = np.zeros(2**width, dtype=float)
        padded[: features.size] = features
        norm = np.linalg.norm(padded)
        if norm == 0:
            raise EncodingError("cannot amplitude-encode an all-zero feature vector")
        return padded / norm

    def encode(self, features: Sequence[float]) -> Statevector:
        """Return the encoded state directly (no circuit synthesis needed)."""
        return Statevector(arrays.as_complex(self.amplitudes(features)))

    def encoding_circuit(
        self,
        features: Sequence[float],
        offset: int = 0,
        total_qubits: Optional[int] = None,
    ) -> QuantumCircuit:
        """Synthesise an RY/CX state-preparation circuit for the amplitude vector."""
        amplitudes = self.amplitudes(features)
        width = self.num_qubits(len(np.asarray(features)))
        total = total_qubits if total_qubits is not None else offset + width
        if total < offset + width:
            raise EncodingError(
                f"total_qubits={total} too small for {width} data qubits at offset {offset}"
            )
        circuit = QuantumCircuit(total, 0, name="amplitude_encoding")
        qubits = [offset + q for q in range(width)]
        for depth in range(width):
            angles = self._branch_angles(amplitudes, depth, width)
            self._multiplexed_ry(circuit, angles, qubits[:depth], qubits[depth])
        return circuit

    # ------------------------------------------------------------------ #
    # Internal synthesis helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _branch_angles(amplitudes: np.ndarray, depth: int, width: int) -> List[float]:
        """Rotation angles of the multiplexed RY at tree depth ``depth``.

        For each prefix bit-pattern ``p`` of length ``depth``, the angle is
        ``2 * atan2(||lower branch||, ||upper branch||)`` where the branches
        split the amplitudes whose index starts with ``p``.
        """
        block = 2 ** (width - depth)
        half = block // 2
        angles: List[float] = []
        for prefix in range(2**depth):
            segment = amplitudes[prefix * block : (prefix + 1) * block]
            norm_upper = float(np.linalg.norm(segment[:half]))
            norm_lower = float(np.linalg.norm(segment[half:]))
            if norm_upper == 0.0 and norm_lower == 0.0:
                angles.append(0.0)
            else:
                angles.append(2.0 * math.atan2(norm_lower, norm_upper))
        return angles

    @classmethod
    def _multiplexed_ry(
        cls,
        circuit: QuantumCircuit,
        angles: Sequence[float],
        controls: Sequence[int],
        target: int,
    ) -> None:
        """Apply RY(angles[p]) on ``target`` for each control pattern ``p``.

        Pattern indices treat ``controls[0]`` as the most significant bit.
        Decomposed recursively with the identity ``RY(a) ⊕ RY(b) =
        RY((a+b)/2) · CX · RY((a-b)/2) · CX`` (applied circuit-order
        left-to-right), which uses only RY and CX gates.
        """
        angles = list(angles)
        if len(angles) != 2 ** len(controls):
            raise EncodingError(
                f"multiplexed rotation over {len(controls)} controls needs "
                f"{2 ** len(controls)} angles, got {len(angles)}"
            )
        if not controls:
            if abs(angles[0]) > 1e-12:
                circuit.ry(angles[0], target, label="data")
            return
        if all(abs(a) < 1e-12 for a in angles):
            return
        half = len(angles) // 2
        upper = np.asarray(angles[:half])   # controls[0] == 0 branch
        lower = np.asarray(angles[half:])   # controls[0] == 1 branch
        sums = (upper + lower) / 2.0
        diffs = (upper - lower) / 2.0
        head, rest = controls[0], list(controls[1:])
        cls._multiplexed_ry(circuit, sums, rest, target)
        circuit.cx(head, target)
        cls._multiplexed_ry(circuit, diffs, rest, target)
        circuit.cx(head, target)
