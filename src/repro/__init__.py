"""QuClassi reproduction library.

Reimplements the MLSys 2022 paper *"QuClassi: A Hybrid Deep Neural Network
Architecture based on Quantum State Fidelity"* from scratch on a pure-Python
(NumPy/SciPy) quantum-simulation substrate.

Top-level convenience imports expose the main user-facing objects; see the
subpackages for the full API:

* :mod:`repro.quantum`   — circuits, simulators, noise, transpiler, backends.
* :mod:`repro.encoding`  — classical-to-quantum data encodings.
* :mod:`repro.datasets`  — Iris, synthetic MNIST, PCA, preprocessing.
* :mod:`repro.core`      — the QuClassi model, layers, cost, gradient, trainer.
* :mod:`repro.baselines` — classical DNN, TFQ-like and QuantumFlow-like models.
* :mod:`repro.hardware`  — simulated IBM-Q and IonQ devices.
* :mod:`repro.experiments` — the per-figure experiment harness.
"""

from repro.version import __version__

__all__ = ["__version__"]


def __getattr__(name):
    """Lazily expose the heavyweight user-facing classes.

    Keeps ``import repro`` cheap while still allowing ``repro.QuClassi`` and
    ``repro.QuantumCircuit`` shortcuts in examples and notebooks.
    """
    lazy = {
        "QuClassi": ("repro.core.model", "QuClassi"),
        "QuantumCircuit": ("repro.quantum.circuit", "QuantumCircuit"),
        "Statevector": ("repro.quantum.statevector", "Statevector"),
        "IdealBackend": ("repro.quantum.backend", "IdealBackend"),
    }
    if name in lazy:
        import importlib

        module_name, attr = lazy[name]
        module = importlib.import_module(module_name)
        return getattr(module, attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
