"""QuClassi reproduction library.

Reimplements the MLSys 2022 paper *"QuClassi: A Hybrid Deep Neural Network
Architecture based on Quantum State Fidelity"* from scratch on a pure-Python
(NumPy/SciPy) quantum-simulation substrate.

Top-level convenience imports expose the main user-facing objects; see the
subpackages for the full API:

* :mod:`repro.quantum`   — circuits, simulators, noise, transpiler, backends.
* :mod:`repro.encoding`  — classical-to-quantum data encodings.
* :mod:`repro.datasets`  — Iris, synthetic MNIST, PCA, preprocessing.
* :mod:`repro.core`      — the QuClassi model, layers, cost, gradient, trainer.
* :mod:`repro.baselines` — classical DNN, TFQ-like and QuantumFlow-like models.
* :mod:`repro.hardware`  — simulated IBM-Q and IonQ devices.
* :mod:`repro.experiments` — the per-figure experiment harness.
* :mod:`repro.parallel`  — sharded multi-backend execution of sweeps.

Parallel execution
------------------
QuClassi trains one independent state per class, and every figure sweep
repeats training across backends, encodings, and shot counts.
:mod:`repro.parallel` shards that outer loop across worker pools without
changing a single number::

    from repro.parallel import ShardExecutor
    from repro.experiments import fig11_hardware_iris_loss

    executor = ShardExecutor("process", max_workers=4)
    model.fit(x, y, executor=executor)            # per-class training shards
    fig11_hardware_iris_loss(executor=executor)   # per-backend sweep cells

Serial, thread, and process executor runs are bit-identical to each other
(and, when training draws no shot-sampling randomness, to the plain
non-executor fit): every class/cell draws from its own ``SeedSequence.spawn``
stream keyed by shard index, workers rebuild backends from picklable specs
instead of sharing live ones, and hardware-style job ledgers merge back in
shard order.
"""

from repro.version import __version__

__all__ = ["__version__"]


def __getattr__(name):
    """Lazily expose the heavyweight user-facing classes.

    Keeps ``import repro`` cheap while still allowing ``repro.QuClassi`` and
    ``repro.QuantumCircuit`` shortcuts in examples and notebooks.
    """
    lazy = {
        "QuClassi": ("repro.core.model", "QuClassi"),
        "QuantumCircuit": ("repro.quantum.circuit", "QuantumCircuit"),
        "Statevector": ("repro.quantum.statevector", "Statevector"),
        "IdealBackend": ("repro.quantum.backend", "IdealBackend"),
    }
    if name in lazy:
        import importlib

        module_name, attr = lazy[name]
        module = importlib.import_module(module_name)
        return getattr(module, attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
