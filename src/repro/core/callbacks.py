"""Training callbacks and history recording."""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

import numpy as np


@dataclasses.dataclass
class EpochRecord:
    """Metrics recorded at the end of one training epoch.

    Attributes
    ----------
    epoch:
        1-based epoch index.
    loss:
        Mean training loss across classes.
    per_class_loss:
        Training loss of each class's discriminator state.
    train_accuracy, validation_accuracy:
        Classification accuracy on the training / validation split (validation
        is ``None`` when no validation data was supplied).
    gradient_norm:
        Euclidean norm of the concatenated gradient over all classes.
    elapsed_seconds:
        Wall-clock time spent in the epoch.
    """

    epoch: int
    loss: float
    per_class_loss: List[float]
    train_accuracy: float
    validation_accuracy: Optional[float]
    gradient_norm: float
    elapsed_seconds: float


@dataclasses.dataclass
class TrainingHistory:
    """Complete record of a training run."""

    records: List[EpochRecord] = dataclasses.field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    @property
    def epochs(self) -> List[int]:
        return [r.epoch for r in self.records]

    @property
    def losses(self) -> List[float]:
        return [r.loss for r in self.records]

    @property
    def train_accuracies(self) -> List[float]:
        return [r.train_accuracy for r in self.records]

    @property
    def validation_accuracies(self) -> List[Optional[float]]:
        return [r.validation_accuracy for r in self.records]

    def per_class_losses(self) -> np.ndarray:
        """Array of shape ``(n_epochs, n_classes)`` of per-class losses."""
        return np.array([r.per_class_loss for r in self.records], dtype=float)

    @property
    def final_loss(self) -> float:
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1].loss

    @property
    def best_validation_accuracy(self) -> Optional[float]:
        accuracies = [r.validation_accuracy for r in self.records if r.validation_accuracy is not None]
        return max(accuracies) if accuracies else None

    def as_dict(self) -> Dict[str, list]:
        """Plain-dict view for serialisation and reporting."""
        return {
            "epoch": self.epochs,
            "loss": self.losses,
            "train_accuracy": self.train_accuracies,
            "validation_accuracy": self.validation_accuracies,
        }


class Callback:
    """Base class for training callbacks (all hooks are optional no-ops)."""

    def on_train_begin(self, trainer) -> None:  # pragma: no cover - trivial
        """Called once before the first epoch."""

    def on_epoch_end(self, trainer, record: EpochRecord) -> None:  # pragma: no cover - trivial
        """Called after each epoch with its metrics."""

    def on_train_end(self, trainer, history: TrainingHistory) -> None:  # pragma: no cover - trivial
        """Called once after the last epoch."""

    def should_stop(self) -> bool:
        """Whether training should halt early after the current epoch."""
        return False


class EarlyStopping(Callback):
    """Stop when the monitored loss has not improved for ``patience`` epochs."""

    def __init__(self, patience: int = 5, min_delta: float = 1e-4) -> None:
        if patience <= 0:
            raise ValueError(f"patience must be positive, got {patience}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self._best = float("inf")
        self._stale_epochs = 0
        self._stop = False

    def on_epoch_end(self, trainer, record: EpochRecord) -> None:
        if record.loss < self._best - self.min_delta:
            self._best = record.loss
            self._stale_epochs = 0
        else:
            self._stale_epochs += 1  # repro: noqa REP101 -- callbacks fire in the parent's history-reconstruction loop, never on workers
            if self._stale_epochs >= self.patience:
                self._stop = True

    def should_stop(self) -> bool:
        return self._stop


class ProgressLogger(Callback):
    """Print one line of metrics per epoch (handy in the examples)."""

    def __init__(self, every: int = 1, prefix: str = "") -> None:
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        self.every = int(every)
        self.prefix = prefix

    def on_epoch_end(self, trainer, record: EpochRecord) -> None:
        if record.epoch % self.every:
            return
        validation = (
            f" val_acc={record.validation_accuracy:.4f}"
            if record.validation_accuracy is not None
            else ""
        )
        print(
            f"{self.prefix}epoch {record.epoch:3d}: loss={record.loss:.4f} "
            f"train_acc={record.train_accuracy:.4f}{validation} "
            f"({record.elapsed_seconds:.2f}s)"
        )


class Timer:
    """Tiny context-free stopwatch used by the trainer."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction or the last reset."""
        return time.perf_counter() - self._start

    def reset(self) -> None:
        self._start = time.perf_counter()
