"""QuClassi core: layers, circuits, cost, gradients, training, the model."""

from repro.core.callbacks import (
    Callback,
    EarlyStopping,
    EpochRecord,
    ProgressLogger,
    TrainingHistory,
)
from repro.core.circuit_builder import DiscriminatorCircuitBuilder, DiscriminatorLayout
from repro.core.cost import FidelityCrossEntropy, NegativeFidelityCost, resolve_cost
from repro.core.gradient import (
    EpochScaledShiftRule,
    FiniteDifferenceRule,
    GradientRule,
    ParameterShiftRule,
    resolve_gradient_rule,
)
from repro.core.inference import (
    accuracy,
    confusion_matrix,
    fidelities_to_probabilities,
    predict_from_fidelities,
)
from repro.core.layers import (
    DualQubitUnitaryLayer,
    EntanglementLayer,
    LayerStack,
    QuantumLayer,
    SingleQubitUnitaryLayer,
    layers_from_architecture,
)
from repro.core.model import QuClassi
from repro.core.serialization import load_model, model_from_dict, model_to_dict, save_model
from repro.core.swap_test import (
    AnalyticFidelityEstimator,
    FidelityEstimator,
    SwapTestFidelityEstimator,
)
from repro.core.trainer import Trainer, TrainerConfig

__all__ = [
    "Callback",
    "EarlyStopping",
    "EpochRecord",
    "ProgressLogger",
    "TrainingHistory",
    "DiscriminatorCircuitBuilder",
    "DiscriminatorLayout",
    "FidelityCrossEntropy",
    "NegativeFidelityCost",
    "resolve_cost",
    "EpochScaledShiftRule",
    "FiniteDifferenceRule",
    "GradientRule",
    "ParameterShiftRule",
    "resolve_gradient_rule",
    "accuracy",
    "confusion_matrix",
    "fidelities_to_probabilities",
    "predict_from_fidelities",
    "DualQubitUnitaryLayer",
    "EntanglementLayer",
    "LayerStack",
    "QuantumLayer",
    "SingleQubitUnitaryLayer",
    "layers_from_architecture",
    "QuClassi",
    "load_model",
    "model_from_dict",
    "model_to_dict",
    "save_model",
    "AnalyticFidelityEstimator",
    "FidelityEstimator",
    "SwapTestFidelityEstimator",
    "Trainer",
    "TrainerConfig",
]
