"""State-fidelity based cost function (paper Section 4.4).

For a class ``c`` with trained state ``|omega_c>``, the per-sample target is
``y = 1`` when the sample belongs to class ``c`` and ``y = 0`` otherwise.
The SWAP-test fidelity ``F`` plays the role of the predicted probability in
the binary cross-entropy of Eq. 14:

``cost = -y * log(F) - (1 - y) * log(1 - F)``

so training pushes the trained state towards its own class's data states and
away from the others.  A mean-fidelity objective (Eq. 13) is also provided
for completeness and ablation.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.math import clip_probability


def _check_batched_shapes(fidelity_matrix: np.ndarray, targets: np.ndarray) -> tuple:
    """Coerce and validate a ``(batch, samples)`` matrix against its targets."""
    fidelity_matrix = np.asarray(fidelity_matrix, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if fidelity_matrix.ndim != 2 or fidelity_matrix.shape[1] != targets.shape[0]:
        raise ValidationError(
            f"fidelity matrix shape {fidelity_matrix.shape} does not match "
            f"{targets.shape[0]} targets"
        )
    return fidelity_matrix, targets


@dataclasses.dataclass(frozen=True)
class FidelityCrossEntropy:
    """Binary cross-entropy on SWAP-test fidelities (paper Eq. 14).

    Attributes
    ----------
    epsilon:
        Probability clipping margin that keeps the logarithms finite when a
        fidelity saturates at exactly 0 or 1.
    """

    epsilon: float = 1e-9

    def __call__(self, fidelities: Sequence[float], targets: Sequence[float]) -> float:
        """Mean loss over a batch of fidelities and 0/1 targets."""
        fidelities = np.asarray(fidelities, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if fidelities.shape != targets.shape:
            raise ValidationError(
                f"fidelities shape {fidelities.shape} does not match targets shape {targets.shape}"
            )
        clipped = clip_probability(fidelities, self.epsilon)
        losses = -(targets * np.log(clipped) + (1.0 - targets) * np.log(1.0 - clipped))
        return float(np.mean(losses))

    def per_sample(self, fidelities: Sequence[float], targets: Sequence[float]) -> np.ndarray:
        """Per-sample losses (useful for stochastic updates and diagnostics)."""
        fidelities = np.asarray(fidelities, dtype=float)
        targets = np.asarray(targets, dtype=float)
        clipped = clip_probability(fidelities, self.epsilon)
        return -(targets * np.log(clipped) + (1.0 - targets) * np.log(1.0 - clipped))

    def batched(self, fidelity_matrix: np.ndarray, targets: Sequence[float]) -> np.ndarray:
        """Mean loss of each row of a ``(batch, samples)`` fidelity matrix.

        Vectorised counterpart of calling the cost once per row; used by the
        batched gradient sweep so the whole ``2P``-row evaluation stays in
        NumPy.  ``per_sample`` broadcasts over the batch axis unchanged, so
        the loss formula lives in one place.
        """
        fidelity_matrix, targets = _check_batched_shapes(fidelity_matrix, targets)
        return np.mean(self.per_sample(fidelity_matrix, targets), axis=1)


@dataclasses.dataclass(frozen=True)
class NegativeFidelityCost:
    """Mean-fidelity objective of Eq. 13, sign-flipped into a minimisation.

    Ignores negative samples entirely: the cost is ``1 - mean(F)`` over the
    class's own samples.  Provided as an ablation of the cross-entropy
    formulation; it converges but cannot push the state away from other
    classes, which is why the paper adopts the cross-entropy form.
    """

    def __call__(self, fidelities: Sequence[float], targets: Sequence[float]) -> float:
        fidelities = np.asarray(fidelities, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if fidelities.shape != targets.shape:
            raise ValidationError(
                f"fidelities shape {fidelities.shape} does not match targets shape {targets.shape}"
            )
        positives = fidelities[targets > 0.5]
        if positives.size == 0:
            return 0.0
        return float(1.0 - np.mean(positives))

    def per_sample(self, fidelities: Sequence[float], targets: Sequence[float]) -> np.ndarray:
        fidelities = np.asarray(fidelities, dtype=float)
        targets = np.asarray(targets, dtype=float)
        return np.where(targets > 0.5, 1.0 - fidelities, 0.0)

    def batched(self, fidelity_matrix: np.ndarray, targets: Sequence[float]) -> np.ndarray:
        """Mean loss of each row of a ``(batch, samples)`` fidelity matrix.

        Averaged over the class's own samples only, matching ``__call__``
        (``per_sample`` cannot be reused here: it zero-fills negatives, which
        would change the denominator).
        """
        fidelity_matrix, targets = _check_batched_shapes(fidelity_matrix, targets)
        mask = targets > 0.5
        if not mask.any():
            return np.zeros(fidelity_matrix.shape[0])
        return 1.0 - np.mean(fidelity_matrix[:, mask], axis=1)


#: Type alias for cost callables: (fidelities, targets) -> float.
CostFunction = Callable[[Sequence[float], Sequence[float]], float]


def resolve_cost(cost: "str | CostFunction") -> CostFunction:
    """Resolve a cost specification into a callable.

    Accepts the strings ``"cross_entropy"`` (default in the paper) and
    ``"negative_fidelity"`` or any already-callable cost object.
    """
    if callable(cost):
        return cost
    name = str(cost).strip().lower()
    if name in ("cross_entropy", "bce", "fidelity_cross_entropy"):
        return FidelityCrossEntropy()
    if name in ("negative_fidelity", "fidelity"):
        return NegativeFidelityCost()
    raise ValidationError(f"unknown cost function '{cost}'")
