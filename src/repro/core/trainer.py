"""QuClassi training loop (paper Algorithm 1).

The trainer owns the optimisation of a :class:`~repro.core.model.QuClassi`
model's per-class parameter vectors.  For every epoch and every class it
estimates the gradient of the fidelity cross-entropy with the configured
gradient rule — two loss evaluations per parameter, exactly the
``delta_fwd`` / ``delta_bck`` circuit pair of Algorithm 1 — and applies a
plain SGD step with learning rate ``alpha``.

Two update granularities are supported:

* ``"batch"`` (default) — the loss inside the gradient rule averages over the
  whole epoch batch (or a minibatch); one update per class per (mini)batch.
  Mathematically equivalent in expectation to the paper's loop but far fewer
  circuit evaluations, which is what makes the simulator benchmarks tractable.
* ``"stochastic"`` — one update per sample, the literal reading of
  Algorithm 1; used by the hardware-style experiments with small subsamples.

When the model's estimator advertises ``supports_batch``, each gradient
evaluation runs through :meth:`GradientRule.gradient_batched`: all ``2P``
shifted parameter vectors are stacked into one matrix and evaluated in a
single vectorised statevector/cost pass, which is numerically equivalent to
the loop (same shifts, same reduction order) but removes the per-shift Python
rebuild of the trained state.  The analytic estimator always batches; the
circuit-executing SWAP-test estimator batches whenever its backend does
(every simulator backend — the sweep's discriminator circuits are stacked
into :meth:`~repro.quantum.backend.Backend.run_batch` calls).  Estimators on
backends without batch support keep the per-evaluation loop.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.callbacks import Callback, EpochRecord, Timer, TrainingHistory
from repro.core.cost import CostFunction, resolve_cost
from repro.core.gradient import GradientRule, resolve_gradient_rule
from repro.exceptions import TrainingError
from repro.utils.rng import RandomState, ensure_rng


@dataclasses.dataclass
class TrainerConfig:
    """Hyper-parameters of a training run.

    Defaults follow the paper: learning rate 0.01, 25 epochs, the
    epoch-scaled shift rule, fidelity cross-entropy.  Updates default to
    minibatches of 8 samples (``batch_size=None`` gives full-batch updates,
    ``update="stochastic"`` the paper's literal per-sample loop).
    """

    learning_rate: float = 0.01
    epochs: int = 25
    gradient_rule: str | GradientRule = "epoch_scaled"
    cost: str | CostFunction = "cross_entropy"
    update: str = "batch"
    batch_size: Optional[int] = 8
    one_vs_rest: bool = True
    shuffle: bool = True

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise TrainingError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.epochs <= 0:
            raise TrainingError(f"epochs must be positive, got {self.epochs}")
        if self.update not in ("batch", "stochastic"):
            raise TrainingError(f"update must be 'batch' or 'stochastic', got {self.update!r}")
        if self.batch_size is not None and self.batch_size <= 0:
            raise TrainingError(f"batch_size must be positive, got {self.batch_size}")


class Trainer:
    """Optimises a QuClassi model's per-class trained states."""

    def __init__(
        self,
        model,
        config: Optional[TrainerConfig] = None,
        callbacks: Optional[Sequence[Callback]] = None,
        rng: RandomState = None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else TrainerConfig()
        self.callbacks: List[Callback] = list(callbacks) if callbacks else []
        self.rng = ensure_rng(rng)
        self.gradient_rule = resolve_gradient_rule(self.config.gradient_rule)
        self.cost_function = resolve_cost(self.config.cost)

    # ------------------------------------------------------------------ #
    # Loss helpers
    # ------------------------------------------------------------------ #
    def _class_targets(self, labels: np.ndarray, class_index: int) -> np.ndarray:
        """One-vs-rest targets for a class's discriminator state."""
        return (labels == class_index).astype(float)

    def _class_loss(
        self,
        class_index: int,
        parameters: np.ndarray,
        features: np.ndarray,
        targets: np.ndarray,
    ) -> float:
        fidelities = self.model.estimator.fidelities(parameters, features)
        return self.cost_function(fidelities, targets)

    def _uses_batched_path(self) -> bool:
        """Whether gradients run through the vectorised multi-loss sweep.

        The estimator must advertise batch support: the analytic statevector
        engine always does, and the circuit-executing SWAP-test estimator
        does whenever its backend can execute a sweep as a batch (all
        simulator backends).  Otherwise the per-evaluation loop of
        Algorithm 1 is kept.
        """
        return bool(getattr(self.model.estimator, "supports_batch", False))

    def _multi_loss(self, features: np.ndarray, targets: np.ndarray):
        """Vectorised loss over a ``(batch, params)`` parameter matrix."""
        estimator = self.model.estimator
        cost = self.cost_function
        batched_cost = getattr(cost, "batched", None)

        def multi_loss(parameter_matrix: np.ndarray) -> np.ndarray:
            fidelity_matrix = estimator.fidelity_matrix(parameter_matrix, features)
            if batched_cost is not None:
                return batched_cost(fidelity_matrix, targets)
            return np.array([cost(row, targets) for row in fidelity_matrix], dtype=float)

        return multi_loss

    # ------------------------------------------------------------------ #
    # Fit loop
    # ------------------------------------------------------------------ #
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> TrainingHistory:
        """Train the model in place and return the per-epoch history."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if features.ndim != 2:
            raise TrainingError(f"features must be 2-D, got shape {features.shape}")
        if labels.shape != (features.shape[0],):
            raise TrainingError("labels must have one entry per sample")
        if features.shape[1] != self.model.num_features:
            raise TrainingError(
                f"model expects {self.model.num_features} features, got {features.shape[1]}"
            )
        if labels.max() >= self.model.num_classes or labels.min() < 0:
            raise TrainingError(
                f"labels must lie in [0, {self.model.num_classes - 1}] "
                f"(got range [{labels.min()}, {labels.max()}])"
            )

        history = TrainingHistory()
        for callback in self.callbacks:
            callback.on_train_begin(self)

        for epoch in range(1, self.config.epochs + 1):
            timer = Timer()
            order = self.rng.permutation(features.shape[0]) if self.config.shuffle else np.arange(features.shape[0])
            epoch_features = features[order]
            epoch_labels = labels[order]

            gradient_norm_sq = 0.0
            for class_index in range(self.model.num_classes):
                gradient_norm_sq += self._train_class_one_epoch(
                    class_index, epoch, epoch_features, epoch_labels
                )

            per_class_loss = [
                self._class_loss(
                    class_index,
                    self.model.parameters_[class_index],
                    features,
                    self._class_targets(labels, class_index),
                )
                for class_index in range(self.model.num_classes)
            ]
            train_accuracy = self.model.score(features, labels)
            validation_accuracy = (
                self.model.score(validation_data[0], validation_data[1])
                if validation_data is not None
                else None
            )
            record = EpochRecord(
                epoch=epoch,
                loss=float(np.mean(per_class_loss)),
                per_class_loss=[float(value) for value in per_class_loss],
                train_accuracy=float(train_accuracy),
                validation_accuracy=(
                    float(validation_accuracy) if validation_accuracy is not None else None
                ),
                gradient_norm=float(np.sqrt(gradient_norm_sq)),
                elapsed_seconds=timer.elapsed(),
            )
            history.append(record)
            for callback in self.callbacks:
                callback.on_epoch_end(self, record)
            if any(callback.should_stop() for callback in self.callbacks):
                break

        for callback in self.callbacks:
            callback.on_train_end(self, history)
        return history

    # ------------------------------------------------------------------ #
    def _train_class_one_epoch(
        self,
        class_index: int,
        epoch: int,
        features: np.ndarray,
        labels: np.ndarray,
    ) -> float:
        """One epoch of updates for a single class; returns the squared gradient norm."""
        config = self.config
        targets = self._class_targets(labels, class_index)
        if not config.one_vs_rest:
            mask = targets > 0.5
            if not mask.any():
                return 0.0
            features = features[mask]
            targets = targets[mask]

        if config.update == "stochastic":
            batches = [(features[i : i + 1], targets[i : i + 1]) for i in range(features.shape[0])]
        else:
            size = config.batch_size or features.shape[0]
            batches = [
                (features[start : start + size], targets[start : start + size])
                for start in range(0, features.shape[0], size)
            ]

        use_batched = self._uses_batched_path()
        accumulated_norm_sq = 0.0
        for batch_features, batch_targets in batches:
            parameters = self.model.parameters_[class_index]
            if use_batched:
                gradient = self.gradient_rule.gradient_batched(
                    self._multi_loss(batch_features, batch_targets), parameters, epoch=epoch
                )
            else:

                def loss(parameter_vector: np.ndarray) -> float:
                    fidelities = self.model.estimator.fidelities(parameter_vector, batch_features)
                    return self.cost_function(fidelities, batch_targets)

                gradient = self.gradient_rule.gradient(loss, parameters, epoch=epoch)
            self.model.parameters_[class_index] = parameters - config.learning_rate * gradient
            accumulated_norm_sq += float(np.dot(gradient, gradient))
        return accumulated_norm_sq
