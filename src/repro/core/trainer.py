"""QuClassi training loop (paper Algorithm 1).

The trainer owns the optimisation of a :class:`~repro.core.model.QuClassi`
model's per-class parameter vectors.  For every epoch and every class it
estimates the gradient of the fidelity cross-entropy with the configured
gradient rule — two loss evaluations per parameter, exactly the
``delta_fwd`` / ``delta_bck`` circuit pair of Algorithm 1 — and applies a
plain SGD step with learning rate ``alpha``.

Two update granularities are supported:

* ``"batch"`` (default) — the loss inside the gradient rule averages over the
  whole epoch batch (or a minibatch); one update per class per (mini)batch.
  Mathematically equivalent in expectation to the paper's loop but far fewer
  circuit evaluations, which is what makes the simulator benchmarks tractable.
* ``"stochastic"`` — one update per sample, the literal reading of
  Algorithm 1; used by the hardware-style experiments with small subsamples.

When the model's estimator advertises ``supports_batch``, each gradient
evaluation runs through :meth:`GradientRule.gradient_batched`: all ``2P``
shifted parameter vectors are stacked into one matrix and evaluated in a
single vectorised statevector/cost pass, which is numerically equivalent to
the loop (same shifts, same reduction order) but removes the per-shift Python
rebuild of the trained state.  The analytic estimator always batches; the
circuit-executing SWAP-test estimator batches whenever its backend does
(every simulator backend).  Under the hood the full (shift-row x sample)
workload of one gradient evaluation executes as a *single tiled
compile-once sweep*: the estimator's ``fidelity_matrix`` compiles the
discriminator structure once into a
:class:`~repro.quantum.program.SweepProgram` (cached across epochs) and
streams the grid through memory-bounded
:class:`~repro.quantum.program.TilePlan` tiles — see
``docs/compile_once_programs.md``.  Estimators on backends without batch
support keep the per-evaluation loop.

Per-class random streams (order independence)
---------------------------------------------
Each class's training consumes its *own* random stream, spawned once per
:meth:`Trainer.fit` call via ``SeedSequence.spawn`` — one child per class —
rather than threading one shared generator through the sequential per-class
loop.  With a shared generator, class ``c``'s minibatch shuffles depended on
how many draws the classes trained before it had consumed, so per-class
trajectories changed with training order and could not be sharded.  With
spawned child streams, every class's trajectory is a pure function of (its
initial parameters, the data, its own stream): serial, reordered, and sharded
runs produce identical per-class results.

.. note:: **Compatibility.** This changed the mapping from a fit-level seed
   to the realised shuffles once: histories produced by earlier versions
   (one shared generator drawing one permutation per epoch) are not
   seed-for-seed reproducible by this trainer, although both are valid draws
   of the same training distribution.

Sharded execution
-----------------
``fit(..., executor=ShardExecutor("process", max_workers=4))`` distributes
the per-class training loops across a worker pool: each class is one shard
whose unit of work is the existing batched-gradient fast path.  Workers
rebuild their fidelity estimator from a picklable
:class:`~repro.parallel.plan.EstimatorSpec` (live backends are never
pickled) with a per-class spawned shot-sampling stream, return their
per-epoch parameter snapshots, and the parent reconstructs the usual
:class:`~repro.core.callbacks.TrainingHistory` from the snapshots — so the
sharded result is bit-identical across the ``serial``, ``thread``, and
``process`` strategies.  Hardware-style job ledgers are merged back in shard
(class) order.  Because shards train to completion before metrics are
reconstructed, callbacks fire *after* training: early stopping truncates the
reported history and restores the stop-epoch parameters but cannot save the
already-spent compute, and per-epoch ``elapsed_seconds`` records the
reconstruction cost, not the training cost.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.callbacks import Callback, EpochRecord, Timer, TrainingHistory
from repro.core.cost import CostFunction, resolve_cost
from repro.core.gradient import GradientRule, resolve_gradient_rule
from repro.exceptions import TrainingError
from repro.parallel import EstimatorSpec, ShardExecutor, ShardPlan
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs


@dataclasses.dataclass
class TrainerConfig:
    """Hyper-parameters of a training run.

    Defaults follow the paper: learning rate 0.01, 25 epochs, the
    epoch-scaled shift rule, fidelity cross-entropy.  Updates default to
    minibatches of 8 samples (``batch_size=None`` gives full-batch updates,
    ``update="stochastic"`` the paper's literal per-sample loop).
    """

    learning_rate: float = 0.01
    epochs: int = 25
    gradient_rule: str | GradientRule = "epoch_scaled"
    cost: str | CostFunction = "cross_entropy"
    update: str = "batch"
    batch_size: Optional[int] = 8
    one_vs_rest: bool = True
    shuffle: bool = True

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise TrainingError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.epochs <= 0:
            raise TrainingError(f"epochs must be positive, got {self.epochs}")
        if self.update not in ("batch", "stochastic"):
            raise TrainingError(f"update must be 'batch' or 'stochastic', got {self.update!r}")
        if self.batch_size is not None and self.batch_size <= 0:
            raise TrainingError(f"batch_size must be positive, got {self.batch_size}")


# --------------------------------------------------------------------------- #
# Per-class training kernel (shared by the serial loop and shard workers)
# --------------------------------------------------------------------------- #


def _supports_batch(estimator) -> bool:
    """Whether gradients run through the vectorised multi-loss sweep."""
    return bool(getattr(estimator, "supports_batch", False))


def _multi_loss_closure(estimator, cost_function, features: np.ndarray, targets: np.ndarray):
    """Vectorised loss over a ``(batch, params)`` parameter matrix."""
    batched_cost = getattr(cost_function, "batched", None)

    def multi_loss(parameter_matrix: np.ndarray) -> np.ndarray:
        fidelity_matrix = estimator.fidelity_matrix(parameter_matrix, features)
        if batched_cost is not None:
            return batched_cost(fidelity_matrix, targets)
        return np.array([cost_function(row, targets) for row in fidelity_matrix], dtype=float)

    return multi_loss


def _class_epoch_update(
    estimator,
    gradient_rule: GradientRule,
    cost_function,
    config: TrainerConfig,
    parameters: np.ndarray,
    features: np.ndarray,
    targets: np.ndarray,
    epoch: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, float]:
    """One epoch of SGD updates for one class.

    Pure with respect to everything outside its arguments: all randomness
    (the minibatch shuffle) comes from the class's own ``rng`` stream, so a
    class's trajectory is identical whether this runs in the serial loop, a
    thread, or another process.  Returns ``(updated_parameters,
    squared_gradient_norm)``.
    """
    if config.shuffle:
        order = rng.permutation(features.shape[0])
        features = features[order]
        targets = targets[order]
    if not config.one_vs_rest:
        mask = targets > 0.5
        if not mask.any():
            return parameters, 0.0
        features = features[mask]
        targets = targets[mask]

    if config.update == "stochastic":
        batches = [(features[i : i + 1], targets[i : i + 1]) for i in range(features.shape[0])]
    else:
        size = config.batch_size or features.shape[0]
        batches = [
            (features[start : start + size], targets[start : start + size])
            for start in range(0, features.shape[0], size)
        ]

    use_batched = _supports_batch(estimator)
    accumulated_norm_sq = 0.0
    for batch_features, batch_targets in batches:
        if use_batched:
            gradient = gradient_rule.gradient_batched(
                _multi_loss_closure(estimator, cost_function, batch_features, batch_targets),
                parameters,
                epoch=epoch,
            )
        else:

            def loss(parameter_vector: np.ndarray) -> float:
                fidelities = estimator.fidelities(parameter_vector, batch_features)
                return cost_function(fidelities, batch_targets)

            gradient = gradient_rule.gradient(loss, parameters, epoch=epoch)
        parameters = parameters - config.learning_rate * gradient
        accumulated_norm_sq += float(np.dot(gradient, gradient))
    return parameters, accumulated_norm_sq


@dataclasses.dataclass
class _ClassShardTask:
    """Picklable description of one class's full training run."""

    class_index: int
    config: TrainerConfig
    gradient_rule: GradientRule
    cost_function: object
    builder: object
    estimator_spec: EstimatorSpec
    initial_parameters: np.ndarray
    features: np.ndarray
    targets: np.ndarray
    rng: np.random.Generator


@dataclasses.dataclass
class _ClassShardResult:
    """What a class shard sends back to the parent."""

    class_index: int
    #: Per-epoch parameter snapshots, shape ``(epochs, params_per_class)``.
    parameter_snapshots: np.ndarray
    #: Per-epoch squared gradient norms, shape ``(epochs,)``.
    gradient_norms_sq: np.ndarray
    #: Job-ledger entries of the worker's backend, in submission order.
    ledger_records: list
    #: Circuits executed by the worker's estimator (cost accounting).
    circuits_executed: int


def _run_class_shard(shard) -> _ClassShardResult:
    """Worker entry point: train one class for every epoch.

    Reconstructs the fidelity estimator from its spec (fresh backend, the
    shard's own shot-sampling stream) and runs the same
    :func:`_class_epoch_update` kernel the serial loop uses, so the returned
    trajectory is bit-identical to serial execution of this class.
    """
    task: _ClassShardTask = shard.payload
    estimator = task.estimator_spec.build(task.builder)
    parameters = np.asarray(task.initial_parameters, dtype=float).copy()
    snapshots = []
    norms = []
    for epoch in range(1, task.config.epochs + 1):
        parameters, norm_sq = _class_epoch_update(
            estimator,
            task.gradient_rule,
            task.cost_function,
            task.config,
            parameters,
            task.features,
            task.targets,
            epoch,
            task.rng,
        )
        snapshots.append(parameters.copy())
        norms.append(norm_sq)
    ledger = getattr(getattr(estimator, "backend", None), "ledger", None)
    return _ClassShardResult(
        class_index=task.class_index,
        parameter_snapshots=np.array(snapshots, dtype=float),
        gradient_norms_sq=np.array(norms, dtype=float),
        ledger_records=list(ledger.records) if ledger is not None else [],
        circuits_executed=int(getattr(estimator, "circuits_executed", 0)),
    )


class Trainer:
    """Optimises a QuClassi model's per-class trained states."""

    def __init__(
        self,
        model,
        config: Optional[TrainerConfig] = None,
        callbacks: Optional[Sequence[Callback]] = None,
        rng: RandomState = None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else TrainerConfig()
        self.callbacks: List[Callback] = list(callbacks) if callbacks else []
        self.rng = ensure_rng(rng)
        self.gradient_rule = resolve_gradient_rule(self.config.gradient_rule)
        self.cost_function = resolve_cost(self.config.cost)

    # ------------------------------------------------------------------ #
    # Loss helpers
    # ------------------------------------------------------------------ #
    def _class_targets(self, labels: np.ndarray, class_index: int) -> np.ndarray:
        """One-vs-rest targets for a class's discriminator state."""
        return (labels == class_index).astype(float)

    def _class_loss(
        self,
        class_index: int,
        parameters: np.ndarray,
        features: np.ndarray,
        targets: np.ndarray,
    ) -> float:
        fidelities = self.model.estimator.fidelities(parameters, features)
        return self.cost_function(fidelities, targets)

    def _uses_batched_path(self) -> bool:
        """Whether gradients run through the vectorised multi-loss sweep.

        The estimator must advertise batch support: the analytic statevector
        engine always does, and the circuit-executing SWAP-test estimator
        does whenever its backend can execute a sweep as a batch (all
        simulator backends).  Otherwise the per-evaluation loop of
        Algorithm 1 is kept.
        """
        return _supports_batch(self.model.estimator)

    def _multi_loss(self, features: np.ndarray, targets: np.ndarray):
        """Vectorised loss over a ``(batch, params)`` parameter matrix."""
        return _multi_loss_closure(self.model.estimator, self.cost_function, features, targets)

    # ------------------------------------------------------------------ #
    # Fit loop
    # ------------------------------------------------------------------ #
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        executor: "Optional[ShardExecutor | str]" = None,
    ) -> TrainingHistory:
        """Train the model in place and return the per-epoch history.

        Parameters
        ----------
        features, labels, validation_data:
            The training task.
        executor:
            ``None`` (default) trains the per-class loops serially in
            process.  A :class:`~repro.parallel.ShardExecutor` (or a strategy
            string ``"serial"``/``"thread"``/``"process"``) shards the
            per-class training across its worker pool; results are
            bit-identical across strategies (see the module docstring for
            the callback/timing caveats of sharded mode).
        """
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if features.ndim != 2:
            raise TrainingError(f"features must be 2-D, got shape {features.shape}")
        if labels.shape != (features.shape[0],):
            raise TrainingError("labels must have one entry per sample")
        if features.shape[1] != self.model.num_features:
            raise TrainingError(
                f"model expects {self.model.num_features} features, got {features.shape[1]}"
            )
        if labels.max() >= self.model.num_classes or labels.min() < 0:
            raise TrainingError(
                f"labels must lie in [0, {self.model.num_classes - 1}] "
                f"(got range [{labels.min()}, {labels.max()}])"
            )

        # One independent stream per class (SeedSequence.spawn): class c's
        # shuffles cannot depend on which classes trained before it, which is
        # what makes serial, reordered, and sharded runs bit-identical.
        class_rngs = spawn_rngs(self.rng, self.model.num_classes)

        history = TrainingHistory()
        for callback in self.callbacks:
            callback.on_train_begin(self)

        if executor is not None:
            if not isinstance(executor, ShardExecutor):
                executor = ShardExecutor(executor)
            self._fit_sharded(
                features, labels, validation_data, executor, class_rngs, history
            )
        else:
            self._fit_serial(features, labels, validation_data, class_rngs, history)

        for callback in self.callbacks:
            callback.on_train_end(self, history)
        return history

    # ------------------------------------------------------------------ #
    def _epoch_record(
        self,
        epoch: int,
        features: np.ndarray,
        labels: np.ndarray,
        validation_data,
        gradient_norm_sq: float,
        elapsed_seconds: float,
    ) -> EpochRecord:
        """End-of-epoch metrics for the model's *current* parameters."""
        per_class_loss = [
            self._class_loss(
                class_index,
                self.model.parameters_[class_index],
                features,
                self._class_targets(labels, class_index),
            )
            for class_index in range(self.model.num_classes)
        ]
        train_accuracy = self.model.score(features, labels)
        validation_accuracy = (
            self.model.score(validation_data[0], validation_data[1])
            if validation_data is not None
            else None
        )
        return EpochRecord(
            epoch=epoch,
            loss=float(np.mean(per_class_loss)),
            per_class_loss=[float(value) for value in per_class_loss],
            train_accuracy=float(train_accuracy),
            validation_accuracy=(
                float(validation_accuracy) if validation_accuracy is not None else None
            ),
            gradient_norm=float(np.sqrt(gradient_norm_sq)),
            elapsed_seconds=elapsed_seconds,
        )

    def _fit_serial(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        validation_data,
        class_rngs: List[np.random.Generator],
        history: TrainingHistory,
    ) -> None:
        for epoch in range(1, self.config.epochs + 1):
            timer = Timer()
            gradient_norm_sq = 0.0
            for class_index in range(self.model.num_classes):
                parameters, norm_sq = _class_epoch_update(
                    self.model.estimator,
                    self.gradient_rule,
                    self.cost_function,
                    self.config,
                    self.model.parameters_[class_index],
                    features,
                    self._class_targets(labels, class_index),
                    epoch,
                    class_rngs[class_index],
                )
                self.model.parameters_[class_index] = parameters
                gradient_norm_sq += norm_sq

            record = self._epoch_record(
                epoch, features, labels, validation_data, gradient_norm_sq, timer.elapsed()
            )
            history.append(record)
            for callback in self.callbacks:
                callback.on_epoch_end(self, record)
            if any(callback.should_stop() for callback in self.callbacks):
                break

    def _fit_sharded(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        validation_data,
        executor: ShardExecutor,
        class_rngs: List[np.random.Generator],
        history: TrainingHistory,
    ) -> None:
        """Train every class as one shard; reconstruct the epoch history.

        Each shard reruns the exact serial kernel for its class with the
        class's own spawned streams, so results do not depend on the
        executor strategy or worker count.  Ledgers of hardware-style
        backends are merged back in shard (class) order, making the job
        sequence deterministic under concurrency.
        """
        num_classes = self.model.num_classes
        estimator_spec = EstimatorSpec.from_estimator(self.model.estimator)
        # Shot-sampling streams are spawned per class *after* the shuffle
        # streams, in class order — strategy-independent by construction.
        backend_rngs = (
            spawn_rngs(self.rng, num_classes) if estimator_spec.samples_shots else None
        )

        tasks = []
        for class_index in range(num_classes):
            spec = estimator_spec
            if backend_rngs is not None:
                spec = spec.with_backend_seed(backend_rngs[class_index])
            tasks.append(
                _ClassShardTask(
                    class_index=class_index,
                    config=self.config,
                    gradient_rule=self.gradient_rule,
                    cost_function=self.cost_function,
                    builder=self.model.builder,
                    estimator_spec=spec,
                    initial_parameters=self.model.parameters_[class_index],
                    features=features,
                    targets=self._class_targets(labels, class_index),
                    rng=class_rngs[class_index],
                )
            )
        plan = ShardPlan.from_items(
            tasks, keys=[("class", class_index) for class_index in range(num_classes)]
        )
        results: List[_ClassShardResult] = executor.map(_run_class_shard, plan)

        # Deterministic ledger merge: shard (class) order, then each worker's
        # submission order — identical for serial, thread, and process runs.
        parent_ledger = getattr(
            getattr(self.model.estimator, "backend", None), "ledger", None
        )
        if parent_ledger is not None:
            for result in results:
                parent_ledger.extend(result.ledger_records)
        if hasattr(self.model.estimator, "circuits_executed"):
            self.model.estimator.circuits_executed += sum(  # repro: noqa REP101 -- parent-side merge, runs in the submitting thread after executor.map returned
                result.circuits_executed for result in results
            )

        snapshots = np.stack(
            [result.parameter_snapshots for result in results]
        )  # (classes, epochs, params)
        norms_sq = np.stack(
            [result.gradient_norms_sq for result in results]
        )  # (classes, epochs)

        for epoch in range(1, self.config.epochs + 1):
            timer = Timer()
            self.model.parameters_ = snapshots[:, epoch - 1, :].copy()
            record = self._epoch_record(
                epoch,
                features,
                labels,
                validation_data,
                float(norms_sq[:, epoch - 1].sum()),
                timer.elapsed(),
            )
            history.append(record)
            for callback in self.callbacks:
                callback.on_epoch_end(self, record)
            if any(callback.should_stop() for callback in self.callbacks):
                # Training already ran to completion on the workers; honour
                # the stop by reporting and keeping the stop-epoch snapshot.
                break
