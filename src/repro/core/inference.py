"""Multi-class inference from per-class fidelities (paper Section 4.5).

At induction time QuClassi evaluates every class's discriminator against the
sample and softmaxes the resulting fidelities; the class with the highest
probability wins.  A temperature parameter is exposed because fidelities live
in ``[0, 1]`` — a sharper softmax can be useful when many classes produce
similar fidelities (the 10-class MNIST setting).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.math import softmax


def fidelities_to_probabilities(fidelities: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Softmax per-class fidelities into class probabilities.

    Parameters
    ----------
    fidelities:
        Array of shape ``(n_samples, n_classes)`` (or ``(n_classes,)`` for a
        single sample) of SWAP-test fidelities.
    temperature:
        Softmax temperature; smaller values sharpen the distribution.
    """
    if temperature <= 0:
        raise ValidationError(f"temperature must be positive, got {temperature}")
    fidelities = np.asarray(fidelities, dtype=float)
    single = fidelities.ndim == 1
    matrix = fidelities[None, :] if single else fidelities
    if matrix.ndim != 2:
        raise ValidationError(f"fidelities must be 1-D or 2-D, got shape {fidelities.shape}")
    probabilities = softmax(matrix / temperature, axis=1)
    return probabilities[0] if single else probabilities


def predict_from_fidelities(fidelities: np.ndarray) -> np.ndarray:
    """Predicted class labels: arg-max over per-class fidelities."""
    fidelities = np.asarray(fidelities, dtype=float)
    if fidelities.ndim == 1:
        return np.array([int(np.argmax(fidelities))])
    if fidelities.ndim != 2:
        raise ValidationError(f"fidelities must be 1-D or 2-D, got shape {fidelities.shape}")
    return np.argmax(fidelities, axis=1)


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    predictions = np.asarray(predictions, dtype=int)
    labels = np.asarray(labels, dtype=int)
    if predictions.shape != labels.shape:
        raise ValidationError(
            f"predictions shape {predictions.shape} does not match labels shape {labels.shape}"
        )
    if predictions.size == 0:
        raise ValidationError("cannot compute accuracy of an empty prediction set")
    return float(np.mean(predictions == labels))


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = samples of true class ``i`` predicted as ``j``."""
    predictions = np.asarray(predictions, dtype=int)
    labels = np.asarray(labels, dtype=int)
    if predictions.shape != labels.shape:
        raise ValidationError("predictions and labels must have the same shape")
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    for true_label, predicted in zip(labels, predictions):
        matrix[true_label, predicted] += 1
    return matrix
