"""QuClassi's trainable quantum layers (paper Section 4.3).

Three layer styles are defined, mirroring Figs. 2-4 of the paper:

* :class:`SingleQubitUnitaryLayer` (``QC-S``) — every trained qubit gets an
  RY followed by an RZ rotation, each with its own parameter; together the
  two rotations can move a single qubit anywhere on the Bloch sphere.
* :class:`DualQubitUnitaryLayer` (``QC-D``) — consecutive qubit pairs share a
  single RY angle and a single RZ angle, applied equally to both qubits of
  the pair (one parameter per rotation per pair).
* :class:`EntanglementLayer` (``QC-E``) — consecutive qubit pairs are
  entangled with a CRY followed by a CRZ, giving a learnable amount of
  entanglement.

Layers are *specifications*: they report how many parameters they need and
emit parameterised instructions onto a circuit when asked.  A
:class:`LayerStack` composes several layers and owns the flat parameter
vector layout used by the trainer.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ValidationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.operations import Parameter


class QuantumLayer(abc.ABC):
    """A parameterised block of gates acting on the trained-state qubits."""

    #: Short code used in architecture strings ("s", "d", "e").
    code: str = "?"

    @abc.abstractmethod
    def num_parameters(self, num_qubits: int) -> int:
        """Number of trainable parameters for a register of ``num_qubits``."""

    @abc.abstractmethod
    def apply(
        self,
        circuit: QuantumCircuit,
        qubits: Sequence[int],
        parameters: Sequence[Parameter],
    ) -> None:
        """Append the layer's gates to ``circuit`` on ``qubits``.

        ``parameters`` must have exactly ``num_parameters(len(qubits))``
        entries, consumed in a deterministic order so the flat parameter
        vector layout is stable across calls.
        """

    def parameter_names(self, num_qubits: int, prefix: str) -> List[str]:
        """Deterministic parameter names for documentation and serialisation."""
        return [f"{prefix}_{self.code}{index}" for index in range(self.num_parameters(num_qubits))]

    @staticmethod
    def _pairs(qubits: Sequence[int]) -> List[Tuple[int, int]]:
        """Consecutive qubit pairs ``(q0, q1), (q1, q2), ...`` used by 2-qubit layers.

        A single-qubit register yields no pairs; two qubits yield one pair.
        """
        qubits = list(qubits)
        if len(qubits) < 2:
            return []
        return [(qubits[i], qubits[i + 1]) for i in range(len(qubits) - 1)]


class SingleQubitUnitaryLayer(QuantumLayer):
    """QC-S: per-qubit RY + RZ rotations (2 parameters per qubit)."""

    code = "s"

    def num_parameters(self, num_qubits: int) -> int:
        if num_qubits <= 0:
            raise ValidationError(f"num_qubits must be positive, got {num_qubits}")
        return 2 * num_qubits

    def apply(self, circuit: QuantumCircuit, qubits: Sequence[int], parameters: Sequence[Parameter]) -> None:
        expected = self.num_parameters(len(qubits))
        if len(parameters) != expected:
            raise ValidationError(f"QC-S layer expects {expected} parameters, got {len(parameters)}")
        iterator = iter(parameters)
        for qubit in qubits:
            circuit.ry(next(iterator), qubit, label="trained")
            circuit.rz(next(iterator), qubit, label="trained")


class DualQubitUnitaryLayer(QuantumLayer):
    """QC-D: shared RY + RZ rotation applied equally to both qubits of each pair."""

    code = "d"

    def num_parameters(self, num_qubits: int) -> int:
        if num_qubits <= 0:
            raise ValidationError(f"num_qubits must be positive, got {num_qubits}")
        return 2 * max(num_qubits - 1, 0)

    def apply(self, circuit: QuantumCircuit, qubits: Sequence[int], parameters: Sequence[Parameter]) -> None:
        expected = self.num_parameters(len(qubits))
        if len(parameters) != expected:
            raise ValidationError(f"QC-D layer expects {expected} parameters, got {len(parameters)}")
        iterator = iter(parameters)
        for qubit_a, qubit_b in self._pairs(qubits):
            theta_y = next(iterator)
            theta_z = next(iterator)
            # The same parameter drives the rotation on both qubits of the pair.
            circuit.ry(theta_y, qubit_a, label="trained")
            circuit.ry(theta_y, qubit_b, label="trained")
            circuit.rz(theta_z, qubit_a, label="trained")
            circuit.rz(theta_z, qubit_b, label="trained")


class EntanglementLayer(QuantumLayer):
    """QC-E: CRY + CRZ between consecutive qubit pairs (learnable entanglement)."""

    code = "e"

    def num_parameters(self, num_qubits: int) -> int:
        if num_qubits <= 0:
            raise ValidationError(f"num_qubits must be positive, got {num_qubits}")
        return 2 * max(num_qubits - 1, 0)

    def apply(self, circuit: QuantumCircuit, qubits: Sequence[int], parameters: Sequence[Parameter]) -> None:
        expected = self.num_parameters(len(qubits))
        if len(parameters) != expected:
            raise ValidationError(f"QC-E layer expects {expected} parameters, got {len(parameters)}")
        iterator = iter(parameters)
        for qubit_a, qubit_b in self._pairs(qubits):
            circuit.cry(next(iterator), qubit_a, qubit_b, label="trained")
            circuit.crz(next(iterator), qubit_a, qubit_b, label="trained")


#: Mapping from architecture-code characters to layer classes.
LAYER_CODES: Dict[str, type] = {
    "s": SingleQubitUnitaryLayer,
    "d": DualQubitUnitaryLayer,
    "e": EntanglementLayer,
}


def layers_from_architecture(architecture: str) -> List[QuantumLayer]:
    """Build a layer list from an architecture string.

    ``"s"`` gives QC-S, ``"sd"`` QC-SD, ``"sde"`` QC-SDE, matching the names
    used in the paper's figures.  Characters may repeat (e.g. ``"ss"`` stacks
    two single-qubit-unitary layers).
    """
    architecture = architecture.strip().lower().replace("qc-", "")
    if not architecture:
        raise ValidationError("architecture string must not be empty")
    layers: List[QuantumLayer] = []
    for code in architecture:
        if code not in LAYER_CODES:
            raise ValidationError(
                f"unknown layer code '{code}'; valid codes are {sorted(LAYER_CODES)}"
            )
        layers.append(LAYER_CODES[code]())
    return layers


@dataclasses.dataclass
class LayerStack:
    """An ordered stack of layers over a fixed trained-state register width.

    The stack owns the flat parameter layout: parameters of layer ``i`` come
    before those of layer ``i + 1``, and within a layer they follow the
    layer's own deterministic ordering.
    """

    layers: List[QuantumLayer]
    num_qubits: int

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise ValidationError(f"num_qubits must be positive, got {self.num_qubits}")
        if not self.layers:
            raise ValidationError("a LayerStack needs at least one layer")

    @classmethod
    def from_architecture(cls, architecture: str, num_qubits: int) -> "LayerStack":
        """Build a stack from an architecture string such as ``"sde"``."""
        return cls(layers=layers_from_architecture(architecture), num_qubits=num_qubits)

    @property
    def architecture(self) -> str:
        """Architecture string of the stack (e.g. ``"sde"``)."""
        return "".join(layer.code for layer in self.layers)

    @property
    def num_parameters(self) -> int:
        """Total number of trainable parameters."""
        return sum(layer.num_parameters(self.num_qubits) for layer in self.layers)

    def parameters(self, prefix: str = "theta") -> List[Parameter]:
        """Symbolic parameters in flat order."""
        params: List[Parameter] = []
        for layer_index, layer in enumerate(self.layers):
            count = layer.num_parameters(self.num_qubits)
            for local_index in range(count):
                params.append(Parameter(f"{prefix}_l{layer_index}_{layer.code}{local_index}"))
        return params

    def build_circuit(
        self,
        qubits: Sequence[int],
        total_qubits: int,
        prefix: str = "theta",
        name: str = "trained_state",
    ) -> QuantumCircuit:
        """Parameterised trained-state preparation circuit on ``qubits``."""
        qubits = list(qubits)
        if len(qubits) != self.num_qubits:
            raise ValidationError(
                f"stack is configured for {self.num_qubits} qubits, got {len(qubits)}"
            )
        circuit = QuantumCircuit(total_qubits, 0, name=name)
        params = self.parameters(prefix)
        cursor = 0
        for layer in self.layers:
            count = layer.num_parameters(self.num_qubits)
            layer.apply(circuit, qubits, params[cursor : cursor + count])
            cursor += count
        return circuit
