"""Model persistence.

Stores a trained :class:`~repro.core.model.QuClassi` as a small JSON document
(architecture, encoder choice, temperature, per-class weights).  JSON keeps
the artefacts human-readable and diff-able, which matters more here than
binary compactness — even the largest model in the paper has 160 parameters.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING

import numpy as np

from repro.encoding.amplitude import AmplitudeEncoder
from repro.encoding.angle import DualAngleEncoder, SingleAngleEncoder
from repro.encoding.basis import BasisEncoder
from repro.exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.model import QuClassi

#: Encoder registry used to round-trip the encoder choice through JSON.
_ENCODER_NAMES = {
    DualAngleEncoder: "dual_angle",
    SingleAngleEncoder: "single_angle",
    AmplitudeEncoder: "amplitude",
    BasisEncoder: "basis",
}
_ENCODER_FACTORIES = {
    "dual_angle": DualAngleEncoder,
    "single_angle": SingleAngleEncoder,
    "amplitude": AmplitudeEncoder,
    "basis": BasisEncoder,
}

#: Format version written into every file (bump on incompatible changes).
FORMAT_VERSION = 1


def model_to_dict(model: "QuClassi") -> dict:
    """Serialisable dictionary form of a model."""
    encoder_type = type(model.encoder)
    if encoder_type not in _ENCODER_NAMES:
        raise ValidationError(
            f"cannot serialise models using a custom encoder of type {encoder_type.__name__}"
        )
    return {
        "format_version": FORMAT_VERSION,
        "model": "QuClassi",
        "num_features": model.num_features,
        "num_classes": model.num_classes,
        "architecture": model.architecture,
        "encoder": _ENCODER_NAMES[encoder_type],
        "temperature": model.temperature,
        "weights": model.parameters_.tolist(),
    }


def model_from_dict(payload: dict) -> "QuClassi":
    """Rebuild a model from :func:`model_to_dict` output."""
    from repro.core.model import QuClassi

    required = {"format_version", "model", "num_features", "num_classes", "architecture", "encoder", "weights"}
    missing = required - payload.keys()
    if missing:
        raise ValidationError(f"model payload is missing fields: {sorted(missing)}")
    if payload["model"] != "QuClassi":
        raise ValidationError(f"unsupported model type {payload['model']!r}")
    if payload["format_version"] > FORMAT_VERSION:
        raise ValidationError(
            f"model file format {payload['format_version']} is newer than supported ({FORMAT_VERSION})"
        )
    encoder_name = payload["encoder"]
    if encoder_name not in _ENCODER_FACTORIES:
        raise ValidationError(f"unknown encoder {encoder_name!r} in model file")
    model = QuClassi(
        num_features=int(payload["num_features"]),
        num_classes=int(payload["num_classes"]),
        architecture=str(payload["architecture"]),
        encoder=_ENCODER_FACTORIES[encoder_name](),
        temperature=float(payload.get("temperature", 1.0)),
        seed=0,
    )
    model.set_weights(np.asarray(payload["weights"], dtype=float))
    return model


def save_model(model: "QuClassi", path: str) -> None:
    """Write a model to ``path`` as JSON (parent directories are created)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(model_to_dict(model), handle, indent=2)


def load_model(path: str) -> "QuClassi":
    """Read a model previously written by :func:`save_model`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return model_from_dict(payload)
