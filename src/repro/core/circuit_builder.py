"""QuClassi discriminator-circuit construction (paper Fig. 7).

One discriminator circuit compares the learned state of a single class
against one encoded data point:

* qubit 0 — SWAP-test ancilla (control qubit),
* qubits ``1 .. n`` — trained-state register prepared by the layer stack,
* qubits ``n+1 .. 2n`` — data register prepared by the data encoder,
* classical bit 0 — the ancilla measurement.

The builder produces circuits at three binding levels: fully symbolic
(trainable parameters *and* data angles), data-bound (used per sample during
training), and fully bound (ready for a backend).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.layers import LayerStack
from repro.encoding.base import DataEncoder
from repro.exceptions import ValidationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.operations import Parameter
from repro.quantum.register import ClassicalRegister, QuantumRegister
from repro.utils.cache import LRUCache


@dataclasses.dataclass(frozen=True)
class DiscriminatorLayout:
    """Qubit layout of a QuClassi discriminator circuit.

    Attributes
    ----------
    state_width:
        Number of qubits in each of the trained-state and data registers.
    ancilla:
        Index of the SWAP-test control qubit.
    trained_qubits, data_qubits:
        Global indices of the two registers.
    """

    state_width: int

    @property
    def ancilla(self) -> int:
        return 0

    @property
    def trained_qubits(self) -> tuple:
        return tuple(range(1, self.state_width + 1))

    @property
    def data_qubits(self) -> tuple:
        return tuple(range(self.state_width + 1, 2 * self.state_width + 1))

    @property
    def total_qubits(self) -> int:
        return 2 * self.state_width + 1


class DiscriminatorCircuitBuilder:
    """Builds the per-class discriminator circuit.

    Parameters
    ----------
    layer_stack:
        Trained-state layer stack (defines the trainable parameters).
    encoder:
        Classical-to-quantum encoder for the data register.
    num_features:
        Dimensionality of the (already reduced/normalised) input vectors.
    """

    #: Default bound on the memoised per-sample discriminator-circuit cache.
    DEFAULT_DATA_CIRCUIT_CACHE_SIZE = 4096

    def __init__(
        self,
        layer_stack: LayerStack,
        encoder: DataEncoder,
        num_features: int,
        data_circuit_cache_size: int = DEFAULT_DATA_CIRCUIT_CACHE_SIZE,
    ) -> None:
        if num_features <= 0:
            raise ValidationError(f"num_features must be positive, got {num_features}")
        if data_circuit_cache_size <= 0:
            raise ValidationError(
                f"data_circuit_cache_size must be positive, got {data_circuit_cache_size}"
            )
        expected_width = encoder.num_qubits(num_features)
        if layer_stack.num_qubits != expected_width:
            raise ValidationError(
                f"layer stack is configured for {layer_stack.num_qubits} qubits but the "
                f"encoder needs {expected_width} qubits for {num_features} features"
            )
        self.layer_stack = layer_stack
        self.encoder = encoder
        self.num_features = int(num_features)
        self.layout = DiscriminatorLayout(state_width=expected_width)
        # The symbolic trained-state circuit never changes; cache it so the
        # trainer's many parameter-shift evaluations only pay for binding.
        self._symbolic_trained_circuit: Optional[QuantumCircuit] = None
        # Fully symbolic discriminator (trained parameters *and* data
        # angles): one circuit per builder, compiled once into a whole-grid
        # SweepProgram by the estimator's grid path.
        self._symbolic_discriminator: Optional[QuantumCircuit] = None
        self._data_parameters: Optional[list] = None
        # Data-bound (trained-state-symbolic) discriminators depend only on
        # the feature vector, so they are memoised (bounded LRU): a sweep of
        # hundreds of parameter shifts over the same samples re-binds the
        # cached circuits instead of rebuilding layer stack, encoder and
        # SWAP-test skeleton each time.
        self._data_bound_cache: LRUCache = LRUCache(data_circuit_cache_size)

    # ------------------------------------------------------------------ #
    # Parameter bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def parameters(self) -> list:
        """Symbolic trainable parameters in flat order."""
        return self.layer_stack.parameters()

    @property
    def num_parameters(self) -> int:
        """Number of trainable parameters per class."""
        return self.layer_stack.num_parameters

    def parameter_binding(self, values: Sequence[float]) -> Dict[Parameter, float]:
        """Map a flat value vector onto the symbolic parameters."""
        params = self.parameters
        values = np.asarray(values, dtype=float)
        if values.shape != (len(params),):
            raise ValidationError(
                f"expected {len(params)} parameter values, got shape {values.shape}"
            )
        return dict(zip(params, values.tolist()))

    # ------------------------------------------------------------------ #
    # Whole-grid (fully symbolic) compilation support
    # ------------------------------------------------------------------ #
    @property
    def supports_grid_compile(self) -> bool:
        """Whether the encoder can compile its angles as bind-site columns."""
        return bool(getattr(self.encoder, "supports_angle_columns", False))

    @property
    def data_parameters(self) -> list:
        """Symbolic data-angle parameters, one per feature, in angle order."""
        if self._data_parameters is None:
            self._data_parameters = [
                Parameter(f"__data_angle_{index}")
                for index in range(self.num_features)
            ]
        return list(self._data_parameters)

    @property
    def grid_parameters(self) -> list:
        """Column order of the whole-grid program: trained then data angles."""
        return self.parameters + self.data_parameters

    def symbolic_discriminator(self) -> QuantumCircuit:
        """Fully symbolic discriminator: trained *and* data angles unbound.

        Same instruction skeleton as :meth:`_construct_discriminator` — the
        compiled whole-grid program is structure-identical to every bound
        per-sample discriminator — with a barrier at the trained/encoder
        seam so plan-time fusion never merges across the boundary a shared
        trained-state prefix is claimed over (VER404).  Cached: the circuit
        depends only on the model structure.  Callers must not mutate it.
        """
        if not self.supports_grid_compile:
            raise ValidationError(
                f"{type(self.encoder).__name__} does not support symbolic "
                "angle columns; the whole-grid discriminator is unavailable"
            )
        if self._symbolic_discriminator is None:
            layout = self.layout
            qreg = QuantumRegister(layout.total_qubits, "q")
            creg = ClassicalRegister(1, "c")
            circuit = QuantumCircuit(qreg, creg, name="quclassi_discriminator")
            circuit.h(layout.ancilla)
            trained = self.layer_stack.build_circuit(
                qubits=layout.trained_qubits,
                total_qubits=layout.total_qubits,
                name="trained_state",
            )
            circuit = circuit.compose(trained)
            circuit.barrier(*layout.trained_qubits)
            data = self.encoder.symbolic_encoding_circuit(
                self.num_features,
                self.data_parameters,
                offset=layout.data_qubits[0],
                total_qubits=layout.total_qubits,
            )
            circuit = circuit.compose(data)
            for trained_qubit, data_qubit in zip(
                layout.trained_qubits, layout.data_qubits
            ):
                circuit.cswap(layout.ancilla, trained_qubit, data_qubit)
            circuit.h(layout.ancilla)
            circuit.measure(layout.ancilla, 0)
            self._symbolic_discriminator = circuit
        return self._symbolic_discriminator

    def grid_bindings(
        self, parameter_matrix, feature_matrix
    ) -> np.ndarray:
        """The ``(rows x samples, columns)`` bindings of a whole-grid sweep.

        Row-major grid order — row ``r * samples + s`` binds parameter-shift
        row ``r`` and data sample ``s`` — matching the estimator's
        per-sample circuit stream exactly.  Columns follow
        :attr:`grid_parameters`: trained values repeated per sample, then
        the encoder's angle matrix tiled per shift row.
        """
        parameter_matrix = np.asarray(parameter_matrix, dtype=float)
        if parameter_matrix.ndim != 2 or parameter_matrix.shape[1] != self.num_parameters:
            raise ValidationError(
                f"expected a (rows, {self.num_parameters}) parameter matrix, "
                f"got shape {parameter_matrix.shape}"
            )
        angles = self.encoder.angle_matrix(feature_matrix)
        if angles.shape[1] != self.num_features:
            raise ValidationError(
                f"expected {self.num_features} angle column(s) per sample, "
                f"got {angles.shape[1]}"
            )
        rows, samples = parameter_matrix.shape[0], angles.shape[0]
        return np.hstack(
            [
                np.repeat(parameter_matrix, samples, axis=0),
                np.tile(angles, (rows, 1)),
            ]
        )

    # ------------------------------------------------------------------ #
    # Sub-circuits
    # ------------------------------------------------------------------ #
    def trained_state_circuit(self, parameter_values: Optional[Sequence[float]] = None) -> QuantumCircuit:
        """Trained-state preparation on a standalone ``state_width``-qubit register.

        Used by the analytic fidelity path (no ancilla or data register).
        """
        if self._symbolic_trained_circuit is None:
            self._symbolic_trained_circuit = self.layer_stack.build_circuit(
                qubits=range(self.layout.state_width),
                total_qubits=self.layout.state_width,
                name="trained_state",
            )
        circuit = self._symbolic_trained_circuit
        if parameter_values is None:
            return circuit.copy()
        return circuit.bind_parameters(self.parameter_binding(parameter_values))

    def _check_features(self, features: Sequence[float]) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        if features.shape != (self.num_features,):
            raise ValidationError(
                f"expected {self.num_features} features, got shape {features.shape}"
            )
        return features

    def data_state_circuit(self, features: Sequence[float]) -> QuantumCircuit:
        """Data-state preparation on a standalone ``state_width``-qubit register."""
        return self.encoder.encoding_circuit(
            self._check_features(features), offset=0, total_qubits=self.layout.state_width
        )

    # ------------------------------------------------------------------ #
    # Full discriminator
    # ------------------------------------------------------------------ #
    def _construct_discriminator(self, features: np.ndarray) -> QuantumCircuit:
        """Assemble the data-bound, trained-state-symbolic discriminator."""
        layout = self.layout
        qreg = QuantumRegister(layout.total_qubits, "q")
        creg = ClassicalRegister(1, "c")
        circuit = QuantumCircuit(qreg, creg, name="quclassi_discriminator")

        # Ancilla into superposition.
        circuit.h(layout.ancilla)

        # Trained state on qubits 1..n (symbolic parameters).
        trained = self.layer_stack.build_circuit(
            qubits=layout.trained_qubits,
            total_qubits=layout.total_qubits,
            name="trained_state",
        )
        circuit = circuit.compose(trained)

        # Data point on qubits n+1..2n (bound angles).
        data = self.encoder.encoding_circuit(
            features,
            offset=layout.data_qubits[0],
            total_qubits=layout.total_qubits,
        )
        circuit = circuit.compose(data)

        # SWAP test.
        for trained_qubit, data_qubit in zip(layout.trained_qubits, layout.data_qubits):
            circuit.cswap(layout.ancilla, trained_qubit, data_qubit)
        circuit.h(layout.ancilla)
        circuit.measure(layout.ancilla, 0)
        return circuit

    def _cached_data_bound_discriminator(self, features: Sequence[float]) -> QuantumCircuit:
        """The memoised data-bound discriminator — the *shared* cached instance.

        Internal: callers must not mutate the result (they bind or copy it
        immediately).  The public :meth:`data_bound_discriminator` returns an
        independent copy instead.
        """
        features = self._check_features(features)
        key = tuple(np.round(features, 12))
        cached = self._data_bound_cache.get(key)
        if cached is None:
            cached = self._construct_discriminator(features)
            self._data_bound_cache.put(key, cached)
        return cached

    def data_bound_discriminator(self, features: Sequence[float]) -> QuantumCircuit:
        """Discriminator with data angles bound and trained angles symbolic.

        Memoised per feature vector (bounded LRU): the expensive part of a
        discriminator — layer-stack construction, data encoding, composition —
        depends only on the sample, so every parameter-shift variant of a
        sweep re-binds the cached circuit.  Returns an independent copy, so
        caller mutations cannot poison the cache.
        """
        return self._cached_data_bound_discriminator(features).copy()

    def clear_cache(self) -> None:
        """Drop memoised discriminator circuits (e.g. when switching datasets)."""
        self._data_bound_cache.clear()

    def build(
        self,
        features: Sequence[float],
        parameter_values: Optional[Sequence[float]] = None,
        name: Optional[str] = None,
    ) -> QuantumCircuit:
        """Full SWAP-test discriminator circuit for one data point.

        The returned circuit measures the ancilla into classical bit 0; the
        probability of reading ``0`` is ``(1 + F) / 2`` where ``F`` is the
        fidelity between the trained state and the encoded data point.
        Construction is memoised per sample via
        :meth:`data_bound_discriminator`, so repeated builds (a training
        sweep) only pay for parameter binding.
        """
        circuit = self._cached_data_bound_discriminator(features)
        if parameter_values is not None:
            circuit = circuit.bind_parameters(self.parameter_binding(parameter_values))
        else:
            circuit = circuit.copy()
        if name is not None:
            circuit.name = name
        return circuit
