"""Gradient rules for the quantum parameters (paper Eq. 15).

The paper differentiates the cost with a central-difference-style rule whose
shift shrinks with the training epoch:

``dCost/dtheta_i ≈ (f(theta_i + pi / (2 sqrt(epoch))) - f(theta_i - pi / (2 sqrt(epoch)))) / 2``

The epoch-dependent shift starts wide (broad search of the cost landscape)
and narrows as training proceeds, which the authors credit for stable
convergence.  The classic parameter-shift rule (fixed shift ``pi / 2``) is
provided as the ablation baseline, and a small-step central finite
difference as a numerical cross-check used in tests.
"""

from __future__ import annotations

import abc
import dataclasses
import math
from typing import Callable

import numpy as np

from repro.exceptions import ValidationError

#: A loss functional of the flat parameter vector.
LossFunction = Callable[[np.ndarray], float]

#: A vectorised loss functional: maps a ``(batch, P)`` parameter matrix to a
#: length-``batch`` loss vector (one loss per row).
MultiLossFunction = Callable[[np.ndarray], np.ndarray]


class GradientRule(abc.ABC):
    """Estimates the gradient of a loss with respect to circuit parameters."""

    @abc.abstractmethod
    def shift(self, epoch: int) -> float:
        """Parameter shift used at the given (1-based) epoch."""

    def gradient(self, loss: LossFunction, parameters: np.ndarray, epoch: int = 1) -> np.ndarray:
        """Estimate the full gradient vector at ``parameters``.

        Evaluates the loss twice per parameter (forward and backward shift),
        exactly as Algorithm 1 does with its ``delta_fwd`` / ``delta_bck``
        circuit evaluations.
        """
        parameters = np.asarray(parameters, dtype=float)
        if parameters.ndim != 1:
            raise ValidationError(f"parameters must be a flat vector, got shape {parameters.shape}")
        shift = self.shift(epoch)
        gradient = np.zeros_like(parameters)
        for index in range(parameters.size):
            forward = parameters.copy()
            backward = parameters.copy()
            forward[index] += shift
            backward[index] -= shift
            gradient[index] = 0.5 * (loss(forward) - loss(backward))
        return gradient

    def shifted_parameter_matrix(self, parameters: np.ndarray, epoch: int = 1) -> np.ndarray:
        """All ``2P`` shifted parameter vectors of one gradient evaluation.

        Row ``i`` (``i < P``) is ``parameters`` with ``+shift`` on parameter
        ``i``; row ``P + i`` carries the matching ``-shift``.  Feeding this
        matrix to a vectorised multi-loss callable turns the whole sweep into
        one batched pass.
        """
        parameters = np.asarray(parameters, dtype=float)
        if parameters.ndim != 1:
            raise ValidationError(f"parameters must be a flat vector, got shape {parameters.shape}")
        shift = self.shift(epoch)
        offsets = np.eye(parameters.size) * shift
        return np.concatenate([parameters + offsets, parameters - offsets], axis=0)

    def gradient_batched(
        self, multi_loss: MultiLossFunction, parameters: np.ndarray, epoch: int = 1
    ) -> np.ndarray:
        """Batched counterpart of :meth:`gradient`.

        Builds the ``2P`` shifted vectors at once, evaluates them with a
        single call to ``multi_loss``, and combines forward/backward halves
        exactly like the loop path — same estimator, one vectorised pass.
        Both fidelity estimators feed this through one tiled compile-once
        sweep: the analytic engine evolves the whole shift matrix through
        its compiled :class:`~repro.quantum.program.SweepProgram`, and the
        SWAP-test estimator hands the full (shift-row x sample) grid to its
        backend's program-sweep path, tiled under the estimator's amplitude
        budget.
        """
        parameters = np.asarray(parameters, dtype=float)
        stacked = self.shifted_parameter_matrix(parameters, epoch)
        losses = np.asarray(multi_loss(stacked), dtype=float).reshape(-1)
        if losses.shape[0] != stacked.shape[0]:
            raise ValidationError(
                f"multi_loss returned {losses.shape[0]} losses for "
                f"{stacked.shape[0]} parameter rows"
            )
        half = parameters.size
        return 0.5 * (losses[:half] - losses[half:])


@dataclasses.dataclass(frozen=True)
class EpochScaledShiftRule(GradientRule):
    """The paper's rule: shift ``pi / (2 sqrt(epoch))`` (Eq. 15).

    Attributes
    ----------
    base_shift:
        Numerator of the shift; ``pi / 2`` reproduces the paper.
    minimum_shift:
        Lower bound that keeps very long runs from collapsing the shift to
        numerical noise.
    """

    base_shift: float = math.pi / 2.0
    minimum_shift: float = 1e-3

    def shift(self, epoch: int) -> float:
        if epoch < 1:
            raise ValidationError(f"epoch must be >= 1, got {epoch}")
        return max(self.base_shift / math.sqrt(epoch), self.minimum_shift)


@dataclasses.dataclass(frozen=True)
class ParameterShiftRule(GradientRule):
    """Classic fixed parameter-shift rule with shift ``pi / 2`` (ablation)."""

    fixed_shift: float = math.pi / 2.0

    def shift(self, epoch: int) -> float:
        if epoch < 1:
            raise ValidationError(f"epoch must be >= 1, got {epoch}")
        return self.fixed_shift


@dataclasses.dataclass(frozen=True)
class FiniteDifferenceRule(GradientRule):
    """Small-step central finite difference (numerical cross-check).

    Unlike the shift rules, the returned values approximate the true local
    derivative (divided by the step), so this rule rescales the half-difference
    accordingly.
    """

    step: float = 1e-4

    def shift(self, epoch: int) -> float:
        if epoch < 1:
            raise ValidationError(f"epoch must be >= 1, got {epoch}")
        return self.step

    def gradient(self, loss: LossFunction, parameters: np.ndarray, epoch: int = 1) -> np.ndarray:
        raw = super().gradient(loss, parameters, epoch)
        return raw / self.step

    def gradient_batched(
        self, multi_loss: "MultiLossFunction", parameters: np.ndarray, epoch: int = 1
    ) -> np.ndarray:
        raw = super().gradient_batched(multi_loss, parameters, epoch)
        return raw / self.step


def resolve_gradient_rule(rule: "str | GradientRule") -> GradientRule:
    """Resolve a gradient-rule specification into an instance.

    Accepts ``"epoch_scaled"`` (paper default), ``"parameter_shift"``,
    ``"finite_difference"``, or an existing :class:`GradientRule`.
    """
    if isinstance(rule, GradientRule):
        return rule
    name = str(rule).strip().lower()
    if name in ("epoch_scaled", "epoch", "quclassi"):
        return EpochScaledShiftRule()
    if name in ("parameter_shift", "shift"):
        return ParameterShiftRule()
    if name in ("finite_difference", "fd"):
        return FiniteDifferenceRule()
    raise ValidationError(f"unknown gradient rule '{rule}'")
