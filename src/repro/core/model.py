"""The QuClassi classifier (paper Section 4).

:class:`QuClassi` bundles everything the paper's architecture needs: one
trained quantum state per class (built from a stack of QC-S / QC-D / QC-E
layers), a data encoder, a fidelity estimator, softmax inference over the
per-class fidelities, and a scikit-learn-style ``fit`` / ``predict`` API.

Typical use::

    from repro.core import QuClassi
    from repro.datasets import load_iris, prepare_task

    data = prepare_task(load_iris(), n_components=None, rng=0)
    model = QuClassi(num_features=4, num_classes=3, architecture="s", seed=0)
    model.fit(data.x_train, data.y_train, epochs=25)
    print(model.score(data.x_test, data.y_test))
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.callbacks import Callback, TrainingHistory
from repro.core.circuit_builder import DiscriminatorCircuitBuilder
from repro.core.inference import (
    accuracy,
    fidelities_to_probabilities,
    predict_from_fidelities,
)
from repro.core.layers import LayerStack
from repro.core.swap_test import (
    AnalyticFidelityEstimator,
    FidelityEstimator,
    SwapTestFidelityEstimator,
)
from repro.core.trainer import Trainer, TrainerConfig
from repro.encoding.angle import DualAngleEncoder
from repro.encoding.base import DataEncoder
from repro.exceptions import TrainingError, ValidationError
from repro.quantum.backend import Backend
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import Statevector
from repro.utils.rng import RandomState, ensure_rng


class QuClassi:
    """Quantum-state-fidelity classifier for binary and multi-class problems.

    Parameters
    ----------
    num_features:
        Dimensionality of the (reduced, normalised-to-``[0, 1]``) inputs.
    num_classes:
        Number of classes; one trained state is maintained per class.
    architecture:
        Layer-stack string: ``"s"`` (QC-S, default), ``"sd"`` (QC-SD),
        ``"sde"`` (QC-SDE), or any combination of the codes ``s``/``d``/``e``.
    encoder:
        Classical-to-quantum data encoder; defaults to the paper's
        two-dimensions-per-qubit :class:`~repro.encoding.angle.DualAngleEncoder`.
    estimator:
        ``"analytic"`` (default) for closed-form fidelities, ``"swap_test"``
        for circuit execution on ``backend`` with ``shots`` shots, or a
        ready-made :class:`~repro.core.swap_test.FidelityEstimator`.
    backend, shots:
        Execution backend and shot count used when ``estimator="swap_test"``.
    temperature:
        Softmax temperature for multi-class inference.
    seed:
        Seed for parameter initialisation (uniform in ``[0, pi]``, as in
        Algorithm 1).
    """

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        architecture: str = "s",
        encoder: Optional[DataEncoder] = None,
        estimator: "str | FidelityEstimator" = "analytic",
        backend: Optional[Backend] = None,
        shots: Optional[int] = 1024,
        temperature: float = 1.0,
        seed: RandomState = None,
    ) -> None:
        if num_classes < 2:
            raise ValidationError(f"num_classes must be at least 2, got {num_classes}")
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        self.architecture = architecture.strip().lower().replace("qc-", "")
        self.encoder = encoder if encoder is not None else DualAngleEncoder()
        self.temperature = float(temperature)
        self._rng = ensure_rng(seed)

        state_width = self.encoder.num_qubits(self.num_features)
        self.layer_stack = LayerStack.from_architecture(self.architecture, state_width)
        self.builder = DiscriminatorCircuitBuilder(self.layer_stack, self.encoder, self.num_features)
        self.estimator = self._resolve_estimator(estimator, backend, shots)

        #: Per-class trainable parameters, shape ``(num_classes, params_per_class)``.
        self.parameters_ = self._rng.uniform(
            0.0, np.pi, size=(self.num_classes, self.builder.num_parameters)
        )
        #: History of the most recent :meth:`fit` call (``None`` before training).
        self.history_: Optional[TrainingHistory] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _resolve_estimator(
        self,
        estimator: "str | FidelityEstimator",
        backend: Optional[Backend],
        shots: Optional[int],
    ) -> FidelityEstimator:
        if isinstance(estimator, FidelityEstimator):
            return estimator
        name = str(estimator).strip().lower()
        if name == "analytic":
            return AnalyticFidelityEstimator(self.builder)
        if name in ("swap_test", "swap-test", "sampled"):
            return SwapTestFidelityEstimator(self.builder, backend=backend, shots=shots)
        raise ValidationError(f"unknown estimator '{estimator}'")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def parameters_per_class(self) -> int:
        """Trainable parameters of one class's state."""
        return self.builder.num_parameters

    @property
    def num_parameters(self) -> int:
        """Total trainable parameters across every class."""
        return self.parameters_per_class * self.num_classes

    @property
    def num_qubits(self) -> int:
        """Qubits of one discriminator circuit: ancilla + trained + data registers."""
        return self.builder.layout.total_qubits

    def trained_statevector(self, class_index: int) -> Statevector:
        """The trained state ``|omega_c>`` of one class (analytic form)."""
        self._check_class_index(class_index)
        circuit = self.builder.trained_state_circuit(self.parameters_[class_index])
        return Statevector(circuit.num_qubits).evolve(circuit)

    def discriminator_circuit(self, class_index: int, features: Sequence[float]) -> QuantumCircuit:
        """Fully bound SWAP-test discriminator circuit for one class and sample."""
        self._check_class_index(class_index)
        return self.builder.build(
            features,
            parameter_values=self.parameters_[class_index],
            name=f"quclassi_class{class_index}",
        )

    def _check_class_index(self, class_index: int) -> None:
        if not 0 <= class_index < self.num_classes:
            raise ValidationError(
                f"class_index must lie in [0, {self.num_classes - 1}], got {class_index}"
            )

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 25,
        learning_rate: float = 0.01,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        gradient_rule: str = "epoch_scaled",
        cost: str = "cross_entropy",
        update: str = "batch",
        batch_size: Optional[int] = 8,
        one_vs_rest: bool = True,
        callbacks: Optional[Sequence[Callback]] = None,
        rng: RandomState = None,
        executor=None,
    ) -> TrainingHistory:
        """Train the per-class states; see :class:`~repro.core.trainer.Trainer`.

        ``executor`` optionally shards the per-class training loops across a
        :class:`~repro.parallel.ShardExecutor` worker pool (or a strategy
        string ``"serial"``/``"thread"``/``"process"``); the result is
        bit-identical across the three strategies (and matches
        ``executor=None`` whenever training draws no shot-sampling
        randomness — see :mod:`repro.parallel`).
        """
        config = TrainerConfig(
            learning_rate=learning_rate,
            epochs=epochs,
            gradient_rule=gradient_rule,
            cost=cost,
            update=update,
            batch_size=batch_size,
            one_vs_rest=one_vs_rest,
        )
        trainer = Trainer(self, config=config, callbacks=callbacks, rng=rng if rng is not None else self._rng)
        self.history_ = trainer.fit(
            features, labels, validation_data=validation_data, executor=executor
        )
        return self.history_

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def class_fidelities(self, features: np.ndarray) -> np.ndarray:
        """Per-class SWAP-test fidelities, shape ``(n_samples, n_classes)``."""
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        if features.shape[1] != self.num_features:
            raise ValidationError(
                f"model expects {self.num_features} features, got {features.shape[1]}"
            )
        if getattr(self.estimator, "supports_batch", False):
            # One vectorised pass: the per-class parameter matrix is already
            # the batch, so inference is a single (class-row x sample) tiled
            # fidelity-matrix evaluation through the compiled sweep program.
            return self.estimator.fidelity_matrix(self.parameters_, features).T
        columns = [
            self.estimator.fidelities(self.parameters_[class_index], features)
            for class_index in range(self.num_classes)
        ]
        return np.stack(columns, axis=1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Softmaxed class probabilities, shape ``(n_samples, n_classes)``."""
        return fidelities_to_probabilities(self.class_fidelities(features), self.temperature)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return predict_from_fidelities(self.class_fidelities(features))

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on ``(features, labels)``."""
        labels = np.asarray(labels, dtype=int)
        return accuracy(self.predict(features), labels)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def get_weights(self) -> np.ndarray:
        """Copy of the per-class parameter matrix."""
        return self.parameters_.copy()

    def set_weights(self, weights: np.ndarray) -> None:
        """Overwrite the per-class parameter matrix (shape-checked)."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != self.parameters_.shape:
            raise TrainingError(
                f"weights shape {weights.shape} does not match expected {self.parameters_.shape}"
            )
        self.parameters_ = weights.copy()

    def save(self, path: str) -> None:
        """Serialise the model configuration and weights to a JSON file."""
        from repro.core.serialization import save_model

        save_model(self, path)

    @classmethod
    def load(cls, path: str) -> "QuClassi":
        """Load a model previously stored with :meth:`save`."""
        from repro.core.serialization import load_model

        return load_model(path)
