"""Fidelity estimation strategies for QuClassi training and inference.

Two estimators implement the same interface:

* :class:`AnalyticFidelityEstimator` — evolves the trained-state and
  data-state statevectors separately and computes ``|<omega|phi>|^2`` in
  closed form.  Exact and fast; this is the default for simulator results.
* :class:`SwapTestFidelityEstimator` — builds the full SWAP-test
  discriminator circuit and executes it on any
  :class:`~repro.quantum.backend.Backend` (ideal, finite-shot, or a noisy
  simulated device), recovering the fidelity from the ancilla statistics.
  This is the path used for the hardware experiments and the shots ablation.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Optional, Sequence

import numpy as np

from repro.core.circuit_builder import DiscriminatorCircuitBuilder
from repro.exceptions import ValidationError
from repro.quantum.backend import Backend, IdealBackend
from repro.quantum.batched import BatchedStatevector
from repro.quantum.fidelity import fidelity_from_swap_test_probability
from repro.quantum.statevector import Statevector


class FidelityEstimator(abc.ABC):
    """Estimates the fidelity between a class's trained state and a data point."""

    #: Whether :meth:`fidelity_matrix` vectorises over a batch of parameter
    #: vectors.  The trainer and model check this flag to pick the batched
    #: gradient/inference path; circuit-executing estimators leave it False
    #: and fall back to the per-evaluation loop.
    supports_batch: bool = False

    def __init__(self, builder: DiscriminatorCircuitBuilder) -> None:
        self.builder = builder

    @abc.abstractmethod
    def fidelity(self, parameter_values: Sequence[float], features: Sequence[float]) -> float:
        """Fidelity for one data point under the given trained-state parameters."""

    def fidelities(self, parameter_values: Sequence[float], feature_matrix: np.ndarray) -> np.ndarray:
        """Fidelities for every row of ``feature_matrix`` (default: loop)."""
        feature_matrix = np.asarray(feature_matrix, dtype=float)
        return np.array(
            [self.fidelity(parameter_values, row) for row in feature_matrix], dtype=float
        )

    def fidelity_matrix(
        self, parameter_matrix: np.ndarray, feature_matrix: np.ndarray
    ) -> np.ndarray:
        """Fidelities for every (parameter row, sample row) pair.

        Shape ``(batch, samples)``.  The default implementation loops over the
        parameter rows; :class:`AnalyticFidelityEstimator` overrides it with a
        fully vectorised statevector pass.
        """
        parameter_matrix = np.asarray(parameter_matrix, dtype=float)
        if parameter_matrix.ndim != 2:
            raise ValidationError(
                f"parameter_matrix must be 2-D (batch, params), got shape {parameter_matrix.shape}"
            )
        return np.stack(
            [self.fidelities(row, feature_matrix) for row in parameter_matrix]
        )


class AnalyticFidelityEstimator(FidelityEstimator):
    """Closed-form fidelity via statevector overlap.

    Data states depend only on the features, so they are memoised (in an LRU
    cache bounded by ``data_cache_size`` so multi-dataset sweeps cannot grow
    memory without limit): the trainer sweeps hundreds of parameter shifts
    against the same samples and the cached encodings turn each sweep into a
    single matrix product.

    The estimator is batch-native: :meth:`trained_statevectors` evolves a
    whole ``(batch, params)`` parameter matrix through the compiled gate
    program in one :class:`~repro.quantum.batched.BatchedStatevector` pass,
    and :meth:`fidelity_matrix` reduces an entire parameter-shift sweep to a
    single ``(batch, 2**n) @ (2**n, samples)`` matmul against the memoised
    data-state matrix.
    """

    supports_batch = True

    #: Default bound on the memoised per-row data-state cache.
    DEFAULT_DATA_CACHE_SIZE = 4096
    #: Default bound on the stacked data-state-matrix cache.  Each entry is a
    #: full ``(samples, 2**n)`` stack, so only the handful of (mini)batches
    #: live within an epoch are worth keeping.
    DEFAULT_DATA_MATRIX_CACHE_SIZE = 8

    def __init__(
        self,
        builder: DiscriminatorCircuitBuilder,
        data_cache_size: int = DEFAULT_DATA_CACHE_SIZE,
        data_matrix_cache_size: int = DEFAULT_DATA_MATRIX_CACHE_SIZE,
    ) -> None:
        super().__init__(builder)
        if data_cache_size <= 0:
            raise ValidationError(
                f"data_cache_size must be positive, got {data_cache_size}"
            )
        if data_matrix_cache_size <= 0:
            raise ValidationError(
                f"data_matrix_cache_size must be positive, got {data_matrix_cache_size}"
            )
        self._data_state_cache: "OrderedDict[tuple, Statevector]" = OrderedDict()
        self._data_cache_size = int(data_cache_size)
        # Stacked data-state matrices, keyed by the raw bytes of the feature
        # matrix: the trainer feeds the same (mini)batch to every gradient
        # evaluation, so the whole (samples, 2**n) stack is reused thousands
        # of times per epoch.
        self._data_matrix_cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._data_matrix_cache_size = int(data_matrix_cache_size)
        self._program = self._compile_program()

    def _compile_program(self) -> list:
        """Flatten the symbolic trained-state circuit into a gate program.

        Each entry is ``(gate_name, qubits, param_slots)`` where a slot is
        either ``("index", i)`` for the ``i``-th trainable parameter or
        ``("value", v)`` for a fixed angle.  Evaluating the program avoids
        rebuilding and re-binding circuit objects inside the training loop's
        thousands of parameter-shift evaluations.
        """
        symbolic = self.builder.trained_state_circuit(None)
        order = {param: index for index, param in enumerate(self.builder.parameters)}
        program = []
        for instruction in symbolic.instructions:
            if instruction.name == "barrier":
                continue
            slots = []
            for param in instruction.params:
                if hasattr(param, "name"):
                    slots.append(("index", order[param]))
                else:
                    slots.append(("value", float(param)))
            program.append((instruction.name, instruction.qubits, tuple(slots)))
        return program

    # ------------------------------------------------------------------ #
    def trained_statevector(self, parameter_values: Sequence[float]) -> Statevector:
        """Trained state ``|omega(theta)>`` on the standalone register."""
        from repro.quantum import gates as gate_library

        values = np.asarray(parameter_values, dtype=float)
        state = Statevector(self.builder.layout.state_width)
        for name, qubits, slots in self._program:
            params = tuple(
                values[slot_value] if slot_kind == "index" else slot_value
                for slot_kind, slot_value in slots
            )
            state.apply_matrix(gate_library.gate_matrix(name, *params), qubits)
        return state

    def data_statevector(self, features: Sequence[float]) -> Statevector:
        """Encoded data state ``|phi(x)>`` (memoised per feature vector, LRU)."""
        key = tuple(np.round(np.asarray(features, dtype=float), 12))
        cached = self._data_state_cache.get(key)
        if cached is None:
            circuit = self.builder.data_state_circuit(features)
            cached = Statevector(circuit.num_qubits).evolve(circuit)
            self._data_state_cache[key] = cached
            while len(self._data_state_cache) > self._data_cache_size:
                self._data_state_cache.popitem(last=False)
        else:
            self._data_state_cache.move_to_end(key)
        return cached

    def data_state_matrix(self, feature_matrix: np.ndarray) -> np.ndarray:
        """Stacked data-state amplitudes, one row per sample (memoised)."""
        feature_matrix = np.ascontiguousarray(np.asarray(feature_matrix, dtype=float))
        key = (feature_matrix.shape, feature_matrix.tobytes())
        cached = self._data_matrix_cache.get(key)
        if cached is None:
            cached = np.stack([self.data_statevector(row).data for row in feature_matrix])
            cached.flags.writeable = False
            self._data_matrix_cache[key] = cached
            while len(self._data_matrix_cache) > self._data_matrix_cache_size:
                self._data_matrix_cache.popitem(last=False)
        else:
            self._data_matrix_cache.move_to_end(key)
        return cached

    # ------------------------------------------------------------------ #
    def fidelity(self, parameter_values: Sequence[float], features: Sequence[float]) -> float:
        omega = self.trained_statevector(parameter_values)
        phi = self.data_statevector(features)
        return omega.fidelity(phi)

    def fidelities(self, parameter_values: Sequence[float], feature_matrix: np.ndarray) -> np.ndarray:
        omega = self.trained_statevector(parameter_values).data
        data_matrix = self.data_state_matrix(feature_matrix)
        overlaps = data_matrix.conj() @ omega
        return np.abs(overlaps) ** 2

    # ------------------------------------------------------------------ #
    # Batched evaluation
    # ------------------------------------------------------------------ #
    def trained_statevectors(self, parameter_matrix: np.ndarray) -> BatchedStatevector:
        """Trained states for every row of a ``(batch, params)`` matrix.

        One vectorised pass through the compiled gate program; equivalent to
        stacking :meth:`trained_statevector` over the rows but without the
        per-row Python gate loop.
        """
        values = np.asarray(parameter_matrix, dtype=float)
        if values.ndim != 2:
            raise ValidationError(
                f"parameter_matrix must be 2-D (batch, params), got shape {values.shape}"
            )
        if values.shape[1] != self.builder.num_parameters:
            raise ValidationError(
                f"expected {self.builder.num_parameters} parameters per row, "
                f"got {values.shape[1]}"
            )
        state = BatchedStatevector(values.shape[0], self.builder.layout.state_width)
        return state.apply_program(self._program, values)

    def fidelity_matrix(
        self, parameter_matrix: np.ndarray, feature_matrix: np.ndarray
    ) -> np.ndarray:
        """Vectorised ``(batch, samples)`` fidelity matrix.

        Evolves all parameter rows at once and overlaps them with the memoised
        data-state matrix in a single matmul — the core of the batched
        parameter-shift sweep.
        """
        omega = self.trained_statevectors(parameter_matrix)
        data_matrix = self.data_state_matrix(feature_matrix)
        return omega.fidelities(data_matrix)

    def clear_cache(self) -> None:
        """Drop memoised data states (e.g. when switching datasets)."""
        self._data_state_cache.clear()
        self._data_matrix_cache.clear()


class SwapTestFidelityEstimator(FidelityEstimator):
    """Fidelity from SWAP-test ancilla statistics on an execution backend.

    Parameters
    ----------
    builder:
        Discriminator circuit builder.
    backend:
        Execution backend; defaults to an ideal statevector backend.
    shots:
        Number of shots per circuit; ``None`` requests exact probabilities
        (only meaningful on noiseless backends).
    """

    def __init__(
        self,
        builder: DiscriminatorCircuitBuilder,
        backend: Optional[Backend] = None,
        shots: Optional[int] = 1024,
    ) -> None:
        super().__init__(builder)
        self.backend = backend if backend is not None else IdealBackend()
        if shots is not None and shots <= 0:
            raise ValidationError(f"shots must be positive or None, got {shots}")
        self.shots = shots
        #: Number of circuits executed so far (cost accounting for reports).
        self.circuits_executed = 0

    def fidelity(self, parameter_values: Sequence[float], features: Sequence[float]) -> float:
        circuit = self.builder.build(features, parameter_values=parameter_values)
        probability_zero = self.backend.ancilla_zero_probability(circuit, shots=self.shots)
        self.circuits_executed += 1
        return fidelity_from_swap_test_probability(probability_zero)
