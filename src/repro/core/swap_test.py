"""Fidelity estimation strategies for QuClassi training and inference.

Two estimators implement the same interface:

* :class:`AnalyticFidelityEstimator` — evolves the trained-state and
  data-state statevectors separately and computes ``|<omega|phi>|^2`` in
  closed form.  Exact and fast; this is the default for simulator results.
* :class:`SwapTestFidelityEstimator` — builds the full SWAP-test
  discriminator circuit and executes it on any
  :class:`~repro.quantum.backend.Backend` (ideal, finite-shot, or a noisy
  simulated device), recovering the fidelity from the ancilla statistics.
  This is the path used for the hardware experiments and the shots ablation.
  On simulator backends it is sweep-batched: a whole parameter-shift sweep of
  discriminator circuits is stacked into
  :meth:`~repro.quantum.backend.Backend.run_batch` calls, which the
  statevector engine vectorises as one batched-statevector pass and the noisy
  backends execute as cached transpile re-binds feeding one vectorised
  batched-density-matrix pass under the device noise model.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.core.circuit_builder import DiscriminatorCircuitBuilder
from repro.exceptions import ValidationError
from repro.quantum.backend import Backend, IdealBackend
from repro.quantum.batched import BatchedStatevector
from repro.quantum.fidelity import (
    fidelities_from_swap_test_probabilities,
    fidelity_from_swap_test_probability,
)
from repro.quantum.program import StatevectorEngine, SweepProgram, TilePlan
from repro.quantum.statevector import Statevector
from repro.utils.cache import LRUCache


class FidelityEstimator(abc.ABC):
    """Estimates the fidelity between a class's trained state and a data point."""

    #: Whether :meth:`fidelity_matrix` vectorises over a batch of parameter
    #: vectors.  The trainer and model check this flag to pick the batched
    #: gradient/inference path.  The analytic estimator always batches; the
    #: circuit-executing SWAP-test estimator mirrors its backend's
    #: ``supports_batch`` (True on the simulator backends) and estimators
    #: without batch support fall back to the per-evaluation loop.
    supports_batch: bool = False

    def __init__(self, builder: DiscriminatorCircuitBuilder) -> None:
        self.builder = builder

    @abc.abstractmethod
    def fidelity(self, parameter_values: Sequence[float], features: Sequence[float]) -> float:
        """Fidelity for one data point under the given trained-state parameters."""

    def fidelities(self, parameter_values: Sequence[float], feature_matrix: np.ndarray) -> np.ndarray:
        """Fidelities for every row of ``feature_matrix`` (default: loop)."""
        feature_matrix = np.asarray(feature_matrix, dtype=float)
        return np.array(
            [self.fidelity(parameter_values, row) for row in feature_matrix], dtype=float
        )

    def fidelity_matrix(
        self, parameter_matrix: np.ndarray, feature_matrix: np.ndarray
    ) -> np.ndarray:
        """Fidelities for every (parameter row, sample row) pair.

        Shape ``(batch, samples)``.  The default implementation loops over the
        parameter rows; :class:`AnalyticFidelityEstimator` overrides it with a
        fully vectorised statevector pass.
        """
        parameter_matrix = np.asarray(parameter_matrix, dtype=float)
        if parameter_matrix.ndim != 2:
            raise ValidationError(
                f"parameter_matrix must be 2-D (batch, params), got shape {parameter_matrix.shape}"
            )
        return np.stack(
            [self.fidelities(row, feature_matrix) for row in parameter_matrix]
        )


class AnalyticFidelityEstimator(FidelityEstimator):
    """Closed-form fidelity via statevector overlap.

    Data states depend only on the features, so they are memoised (in an LRU
    cache bounded by ``data_cache_size`` so multi-dataset sweeps cannot grow
    memory without limit): the trainer sweeps hundreds of parameter shifts
    against the same samples and the cached encodings turn each sweep into a
    single matrix product.

    The estimator is batch-native: :meth:`trained_statevectors` evolves a
    whole ``(batch, params)`` parameter matrix through the compiled gate
    program in one :class:`~repro.quantum.batched.BatchedStatevector` pass,
    and :meth:`fidelity_matrix` reduces an entire parameter-shift sweep to a
    single ``(batch, 2**n) @ (2**n, samples)`` matmul against the memoised
    data-state matrix.
    """

    supports_batch = True

    #: Default bound on the memoised per-row data-state cache.
    DEFAULT_DATA_CACHE_SIZE = 4096
    #: Default bound on the stacked data-state-matrix cache.  Each entry is a
    #: full ``(samples, 2**n)`` stack, so only the handful of (mini)batches
    #: live within an epoch are worth keeping.
    DEFAULT_DATA_MATRIX_CACHE_SIZE = 8
    #: Default amplitude budget of one :meth:`fidelity_matrix` evaluation
    #: (complex entries held at once across *both* matmul operands — trained
    #: rows and data columns; ~128 MiB of complex128).
    DEFAULT_MAX_BATCH_AMPLITUDES = 2**23

    def __init__(
        self,
        builder: DiscriminatorCircuitBuilder,
        data_cache_size: int = DEFAULT_DATA_CACHE_SIZE,
        data_matrix_cache_size: int = DEFAULT_DATA_MATRIX_CACHE_SIZE,
        max_batch_amplitudes: int = DEFAULT_MAX_BATCH_AMPLITUDES,
    ) -> None:
        super().__init__(builder)
        if data_cache_size <= 0:
            raise ValidationError(
                f"data_cache_size must be positive, got {data_cache_size}"
            )
        if data_matrix_cache_size <= 0:
            raise ValidationError(
                f"data_matrix_cache_size must be positive, got {data_matrix_cache_size}"
            )
        if max_batch_amplitudes <= 0:
            raise ValidationError(
                f"max_batch_amplitudes must be positive, got {max_batch_amplitudes}"
            )
        self._data_state_cache: LRUCache = LRUCache(data_cache_size)
        # Stacked data-state matrices, keyed by the raw bytes of the feature
        # matrix: the trainer feeds the same (mini)batch to every gradient
        # evaluation, so the whole (samples, 2**n) stack is reused thousands
        # of times per epoch.
        self._data_matrix_cache: LRUCache = LRUCache(data_matrix_cache_size)
        self._max_batch_amplitudes = int(max_batch_amplitudes)
        # Compile-once: the symbolic trained-state circuit never changes, so
        # its SweepProgram is derived a single time and every parameter-shift
        # evaluation only feeds bindings into it.
        self._program = SweepProgram.compile(
            self.builder.trained_state_circuit(None),
            bind_floats=False,
            parameters=self.builder.parameters,
            name="trained_state",
        )
        # Compiled lazily: the symbolic data-encoder program that batches
        # data_state_matrix (encoders without angle-column support keep the
        # per-row loop).
        self._encoder_program: Optional[SweepProgram] = None

    # ------------------------------------------------------------------ #
    def trained_statevector(self, parameter_values: Sequence[float]) -> Statevector:
        """Trained state ``|omega(theta)>`` on the standalone register."""
        from repro.quantum import gates as gate_library

        values = np.asarray(parameter_values, dtype=float)
        state = Statevector(self.builder.layout.state_width)
        for step in self._program.steps:
            if step.is_fixed:
                state.apply_matrix(step.matrix, step.qubits)
                continue
            params = tuple(
                slot[1] if slot[0] == "value" else slot[2] * values[slot[1]]
                for slot in step.slots
            )
            state.apply_matrix(gate_library.gate_matrix(step.name, *params), step.qubits)
        return state

    def data_statevector(self, features: Sequence[float]) -> Statevector:
        """Encoded data state ``|phi(x)>`` (memoised per feature vector, LRU)."""
        key = tuple(np.round(np.asarray(features, dtype=float), 12))
        cached = self._data_state_cache.get(key)
        if cached is None:
            circuit = self.builder.data_state_circuit(features)
            cached = Statevector(circuit.num_qubits).evolve(circuit)
            self._data_state_cache.put(key, cached)
        return cached

    def _data_encoder_program(self) -> Optional[SweepProgram]:
        """The symbolic encoder program (``None`` without angle-column support)."""
        if not getattr(self.builder.encoder, "supports_angle_columns", False):
            return None
        if self._encoder_program is None:
            self._encoder_program = SweepProgram.compile(
                self.builder.encoder.symbolic_encoding_circuit(
                    self.builder.num_features,
                    self.builder.data_parameters,
                    offset=0,
                    total_qubits=self.builder.layout.state_width,
                ),
                bind_floats=False,
                parameters=self.builder.data_parameters,
                name="data_state",
            )
        return self._encoder_program

    def data_state_matrix(self, feature_matrix: np.ndarray) -> np.ndarray:
        """Stacked data-state amplitudes, one row per sample (memoised).

        Angle-column encoders evaluate the whole batch as **one** compiled
        program pass through the :mod:`repro.arrays` kernels (no per-row
        Python circuit walk); other encoders keep the per-row loop.  The
        batched einsum evolution can differ from the per-row
        :class:`~repro.quantum.statevector.Statevector` contraction at the
        last ULP, like every other batched fast path.
        """
        feature_matrix = np.ascontiguousarray(np.asarray(feature_matrix, dtype=float))
        key = (feature_matrix.shape, feature_matrix.tobytes())
        cached = self._data_matrix_cache.get(key)
        if cached is None:
            program = self._data_encoder_program()
            if program is not None and feature_matrix.shape[0]:
                angles = self.builder.encoder.angle_matrix(feature_matrix)
                cached = program.evolve(angles, StatevectorEngine()).amplitudes
            else:
                cached = np.stack(
                    [self.data_statevector(row).data for row in feature_matrix]
                )
            cached.flags.writeable = False
            self._data_matrix_cache.put(key, cached)
        return cached

    # ------------------------------------------------------------------ #
    def fidelity(self, parameter_values: Sequence[float], features: Sequence[float]) -> float:
        omega = self.trained_statevector(parameter_values)
        phi = self.data_statevector(features)
        return omega.fidelity(phi)

    def fidelities(self, parameter_values: Sequence[float], feature_matrix: np.ndarray) -> np.ndarray:
        omega = self.trained_statevector(parameter_values).data
        data_matrix = self.data_state_matrix(feature_matrix)
        overlaps = data_matrix.conj() @ omega
        return np.abs(overlaps) ** 2

    # ------------------------------------------------------------------ #
    # Batched evaluation
    # ------------------------------------------------------------------ #
    def trained_statevectors(self, parameter_matrix: np.ndarray) -> BatchedStatevector:
        """Trained states for every row of a ``(batch, params)`` matrix.

        One vectorised pass through the compiled gate program; equivalent to
        stacking :meth:`trained_statevector` over the rows but without the
        per-row Python gate loop.
        """
        values = np.asarray(parameter_matrix, dtype=float)
        if values.ndim != 2:
            raise ValidationError(
                f"parameter_matrix must be 2-D (batch, params), got shape {values.shape}"
            )
        if values.shape[1] != self.builder.num_parameters:
            raise ValidationError(
                f"expected {self.builder.num_parameters} parameters per row, "
                f"got {values.shape[1]}"
            )
        return self._program.evolve(values, StatevectorEngine())

    def fidelity_matrix(
        self, parameter_matrix: np.ndarray, feature_matrix: np.ndarray
    ) -> np.ndarray:
        """Vectorised ``(batch, samples)`` fidelity matrix, memory-bounded.

        When both matmul operands — the ``(batch, 2**n)`` trained-state rows
        *and* the ``(samples, 2**n)`` data-state columns — fit the
        ``max_batch_amplitudes`` budget together, the whole sweep is one
        program evolution plus one matmul against the memoised data-state
        matrix (the fast path every repeat sweep hits).  Larger workloads
        tile along **both** axes under a
        :class:`~repro.quantum.program.TilePlan`: trained-state row tiles
        evolve through the compiled program, data-state column tiles stack
        from the per-row LRU cache, and each output block is one small
        matmul, so neither operand is ever fully materialised.
        """
        parameter_matrix = np.asarray(parameter_matrix, dtype=float)
        if parameter_matrix.ndim != 2:
            raise ValidationError(
                f"parameter_matrix must be 2-D (batch, params), got shape {parameter_matrix.shape}"
            )
        feature_matrix = np.asarray(feature_matrix, dtype=float)
        rows, samples = parameter_matrix.shape[0], feature_matrix.shape[0]
        state_amplitudes = 2**self.builder.layout.state_width
        if (rows + samples) * state_amplitudes <= self._max_batch_amplitudes:
            omega = self.trained_statevectors(parameter_matrix)
            data_matrix = self.data_state_matrix(feature_matrix)
            return omega.fidelities(data_matrix)
        plan = TilePlan.for_state_overlap(
            rows, samples, state_amplitudes, self._max_batch_amplitudes
        )
        out = np.empty((rows, samples), dtype=float)
        for row_start, row_stop in plan.row_tiles():
            omega = self.trained_statevectors(parameter_matrix[row_start:row_stop])
            for sample_start, sample_stop in plan.sample_tiles():
                # Per-tile stacks go through the memoised helper, so the
                # inner row-tile loop (and every repeat sweep over the same
                # minibatch) reuses cached tile stacks instead of re-stacking
                # — and the per-row LRU keeps even evicted tiles cheap.
                data_tile = self.data_state_matrix(
                    feature_matrix[sample_start:sample_stop]
                )
                out[row_start:row_stop, sample_start:sample_stop] = omega.fidelities(
                    data_tile
                )
        return out

    def clear_cache(self) -> None:
        """Drop memoised data states (e.g. when switching datasets)."""
        self._data_state_cache.clear()
        self._data_matrix_cache.clear()


class SwapTestFidelityEstimator(FidelityEstimator):
    """Fidelity from SWAP-test ancilla statistics on an execution backend.

    The estimator is sweep-batched and memory-bounded: :meth:`fidelities`
    and :meth:`fidelity_matrix` hand the whole (parameter row x sample)
    workload to
    :meth:`~repro.quantum.backend.Backend.sweep_zero_probabilities` on
    backends that execute compiled sweep programs — the backend compiles the
    shared discriminator structure once (statevector program cache, or the
    noisy transpile template's precomposed-superoperator program), consumes
    the circuits only for their binding rows, and streams the grid tile by
    tile under a :class:`~repro.quantum.program.TilePlan` derived from
    ``max_batch_amplitudes``.  Backends without program support fall back to
    chunked :meth:`~repro.quantum.backend.Backend.ancilla_zero_probabilities`
    calls.  Circuit construction is amortised too — the data-bound
    (trained-state symbolic) discriminator of each sample is memoised in an
    LRU cache, so a parameter-shift sweep only pays a flat parameter re-bind
    per circuit.

    ``supports_batch`` mirrors the backend's flag: on the simulator backends
    the trainer, :meth:`GradientRule.gradient_batched`, and QuClassi inference
    route whole sweeps through :meth:`fidelity_matrix` automatically.

    Parameters
    ----------
    builder:
        Discriminator circuit builder.
    backend:
        Execution backend; defaults to an ideal statevector backend.
    shots:
        Number of shots per circuit; ``None`` requests exact probabilities
        (only meaningful on noiseless backends).
    max_batch_amplitudes:
        Amplitude budget of one sweep evaluation, counting **both** workload
        axes: every in-flight (parameter row, data sample) pair costs its
        full discriminator state — ``2**num_qubits`` complex entries on the
        statevector backends, ``4**num_qubits`` on density backends — and
        the two-axis :class:`~repro.quantum.program.TilePlan` (or, on
        non-program backends, the chunk size) is derived from this bound.
    """

    #: Default amplitude budget per vectorised chunk (~128 MiB of complex128).
    DEFAULT_MAX_BATCH_AMPLITUDES = 2**23

    def __init__(
        self,
        builder: DiscriminatorCircuitBuilder,
        backend: Optional[Backend] = None,
        shots: Optional[int] = 1024,
        max_batch_amplitudes: int = DEFAULT_MAX_BATCH_AMPLITUDES,
    ) -> None:
        super().__init__(builder)
        self.backend = backend if backend is not None else IdealBackend()
        if shots is not None and shots <= 0:
            raise ValidationError(f"shots must be positive or None, got {shots}")
        self.shots = shots
        if max_batch_amplitudes <= 0:
            raise ValidationError(
                f"max_batch_amplitudes must be positive, got {max_batch_amplitudes}"
            )
        self._max_batch_amplitudes = int(max_batch_amplitudes)
        self._supports_batch_override: Optional[bool] = None
        #: Number of circuits executed so far (cost accounting for reports).
        self.circuits_executed = 0

    @property
    def supports_batch(self) -> bool:  # type: ignore[override]
        """Whether sweeps run through the backend batch API.

        Derived from the *current* backend (``backend`` is a public
        attribute that callers swap, e.g. to re-score a trained model on a
        noisy device), so the trainer and inference always see the flag of
        the backend that will actually execute the sweep.  Assigning the
        attribute (the ``estimator.supports_batch = False`` idiom used to
        force the per-evaluation loop) pins an explicit override; assign
        ``None`` to resume tracking the backend.
        """
        if self._supports_batch_override is not None:
            return self._supports_batch_override
        return bool(getattr(self.backend, "supports_batch", False))

    @supports_batch.setter
    def supports_batch(self, value: Optional[bool]) -> None:
        self._supports_batch_override = None if value is None else bool(value)

    # ------------------------------------------------------------------ #
    # Circuit assembly
    # ------------------------------------------------------------------ #
    def _per_element_amplitudes(self) -> int:
        """Complex entries one in-flight discriminator state costs.

        A noisy backend simulates density matrices, whose per-element
        footprint is ``4**n`` rather than ``2**n`` — budgeting against the
        true working-set size keeps ``max_batch_amplitudes`` meaning
        "complex entries in flight" on every backend.
        """
        num_qubits = self.builder.layout.total_qubits
        if getattr(self.backend, "is_noisy", False):
            return 2 ** (2 * num_qubits)
        return 2**num_qubits

    def _zero_probabilities(self, circuits, rows: int, samples: int) -> np.ndarray:
        """Ancilla readouts for one (rows x samples) sweep, memory-bounded.

        On backends that execute compiled sweep programs
        (``supports_programs``), the whole two-axis workload goes through one
        :meth:`~repro.quantum.backend.Backend.sweep_zero_probabilities` call
        under a :class:`~repro.quantum.program.TilePlan` derived from
        ``max_batch_amplitudes`` — the budget counts every (shift row, data
        sample) pair's full state, so both axes are accounted, and the
        backend streams tiles without materialising per-element results.
        Other backends fall back to chunked
        :meth:`~repro.quantum.backend.Backend.ancilla_zero_probabilities`
        calls over the lazily consumed circuit stream (only one chunk's
        circuits are alive at a time).  Both paths are draw-for-draw
        identical under a shared seed.
        """
        per_element = self._per_element_amplitudes()
        if getattr(self.backend, "supports_programs", False):
            plan = TilePlan.for_circuit_sweep(
                rows, samples, per_element, self._max_batch_amplitudes
            )
            zeros = self.backend.sweep_zero_probabilities(
                circuits, shots=self.shots, tile_plan=plan
            )
            self.circuits_executed += int(zeros.shape[0])  # repro: noqa REP101 -- estimators are rebuilt per shard from EstimatorSpec; the parent merges counts after the sweep
            return zeros
        iterator = iter(circuits)
        first = next(iterator, None)
        if first is None:
            return np.zeros(0)
        chunk_size = max(1, self._max_batch_amplitudes // per_element)
        parts = []
        chunk = [first]
        for circuit in iterator:
            if len(chunk) == chunk_size:
                parts.append(
                    self.backend.ancilla_zero_probabilities(chunk, shots=self.shots)
                )
                self.circuits_executed += len(chunk)  # repro: noqa REP101 -- estimators are rebuilt per shard from EstimatorSpec; the parent merges counts after the sweep
                chunk = []
            chunk.append(circuit)
        parts.append(self.backend.ancilla_zero_probabilities(chunk, shots=self.shots))
        self.circuits_executed += len(chunk)  # repro: noqa REP101 -- estimators are rebuilt per shard from EstimatorSpec; the parent merges counts after the sweep
        return np.concatenate(parts)

    def _grid_zero_probabilities(
        self, parameter_matrix: np.ndarray, feature_matrix: np.ndarray
    ) -> np.ndarray:
        """Ancilla readouts for one sweep via the whole-grid program path.

        Binds the builder's symbolic discriminator once and feeds the full
        ``(rows x samples, columns)`` bindings matrix to
        :meth:`~repro.quantum.backend.Backend.sweep_grid_zero_probabilities`
        — no per-sample circuits are constructed at all.  The
        :meth:`~repro.quantum.program.TilePlan.for_grid_sweep` plan keeps
        every tile inside one parameter row so the executor can evolve the
        trained-state prefix once per tile and broadcast it (certified by
        VER403) across the tile's samples.
        """
        rows = parameter_matrix.shape[0]
        samples = feature_matrix.shape[0]
        bindings = self.builder.grid_bindings(parameter_matrix, feature_matrix)
        plan = TilePlan.for_grid_sweep(
            rows, samples, self._per_element_amplitudes(), self._max_batch_amplitudes
        )
        zeros = self.backend.sweep_grid_zero_probabilities(
            self.builder.symbolic_discriminator(),
            self.builder.grid_parameters,
            bindings,
            shots=self.shots,
            tile_plan=plan,
        )
        self.circuits_executed += int(zeros.shape[0])  # repro: noqa REP101 -- estimators are rebuilt per shard from EstimatorSpec; the parent merges counts after the sweep
        return zeros

    def clear_cache(self) -> None:
        """Drop the builder's memoised discriminator circuits."""
        self.builder.clear_cache()

    # ------------------------------------------------------------------ #
    # Fidelity evaluation
    # ------------------------------------------------------------------ #
    def fidelity(self, parameter_values: Sequence[float], features: Sequence[float]) -> float:
        circuit = self.builder.build(features, parameter_values=parameter_values)
        probability_zero = self.backend.ancilla_zero_probability(circuit, shots=self.shots)
        self.circuits_executed += 1
        return fidelity_from_swap_test_probability(probability_zero)

    def fidelities(self, parameter_values: Sequence[float], feature_matrix: np.ndarray) -> np.ndarray:
        """Fidelities for every sample row, executed as one circuit batch.

        A one-row :meth:`fidelity_matrix` sweep — delegating keeps the two
        paths order-identical, which the seed-matched RNG guarantees rely on.
        """
        parameter_values = np.asarray(parameter_values, dtype=float)
        return self.fidelity_matrix(parameter_values[None, :], feature_matrix)[0]

    def fidelity_matrix(
        self, parameter_matrix: np.ndarray, feature_matrix: np.ndarray
    ) -> np.ndarray:
        """Vectorised ``(batch, samples)`` fidelity matrix via the batch API.

        When the backend executes whole-grid programs and the encoder
        supports angle columns, the entire sweep routes through one
        :meth:`_grid_zero_probabilities` call — a single compiled program
        with the grid's bindings matrix, no per-sample circuits.  Otherwise
        the discriminator circuits of every (parameter row, sample) pair —
        all sharing one gate structure — stack into backend batches.  Both
        paths walk elements in the same row-major order, so sampled sweeps
        stay seed-identical either way.
        """
        parameter_matrix = np.asarray(parameter_matrix, dtype=float)
        if parameter_matrix.ndim != 2:
            raise ValidationError(
                f"parameter_matrix must be 2-D (batch, params), got shape {parameter_matrix.shape}"
            )
        feature_matrix = np.asarray(feature_matrix, dtype=float)

        rows = parameter_matrix.shape[0]
        samples = feature_matrix.shape[0]
        if rows == 0 or samples == 0:
            return np.zeros((rows, samples))
        if (
            self.supports_batch
            and getattr(self.backend, "supports_grid_programs", False)
            and self.builder.supports_grid_compile
        ):
            zeros = self._grid_zero_probabilities(parameter_matrix, feature_matrix)
            fidelities = fidelities_from_swap_test_probabilities(zeros)
            return fidelities.reshape(rows, samples)

        # One cache lookup per sample (shared references), not one per
        # (parameter row, sample) pair.  Binding the shared cached instances
        # is safe: bind_parameters produces fresh circuits without touching
        # the originals.
        sample_circuits = [
            self.builder._cached_data_bound_discriminator(features)
            for features in feature_matrix
        ]

        def circuit_stream():
            # Row-major (parameter row, then sample) order — the same order
            # as the per-circuit loop, so sampled sweeps stay seed-identical.
            for row in parameter_matrix:
                binding = self.builder.parameter_binding(row)
                for circuit in sample_circuits:
                    yield circuit.bind_parameters(binding)

        zeros = self._zero_probabilities(
            circuit_stream(), parameter_matrix.shape[0], feature_matrix.shape[0]
        )
        fidelities = fidelities_from_swap_test_probabilities(zeros)
        return fidelities.reshape(parameter_matrix.shape[0], feature_matrix.shape[0])
