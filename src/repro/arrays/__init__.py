"""Array-namespace seam for the simulation kernels (ROADMAP item 4).

Every dense numerical kernel the engines execute — ``einsum``, ``matmul``,
``kron``, ``tensordot``, ``outer``, ``vdot``, ``trace``, ``norm``,
``multinomial`` — is routed through this module instead of being called on
``numpy`` directly, and every amplitude buffer is allocated through
:func:`zeros`/:func:`as_complex` instead of a literal ``dtype=complex``.
Two contracts fall out of that seam, and both are machine-checked:

* **One swap point.**  A GPU (CuPy) or autograd (torch) backend only has to
  replace the thin wrappers here; engine code never names ``np`` for a
  kernel call.  Lint rule ``REP202`` rejects direct ``np.`` kernel calls in
  the engine modules, and ``REP201`` rejects literal complex dtypes outside
  this package.
* **One precision knob.**  :func:`set_precision` (or the
  ``REPRO_PRECISION`` environment variable) flips every configured-dtype
  allocation and cast between ``complex128``/``float64`` (the default, and
  the determinism contract's canonical precision) and
  ``complex64``/``float32`` (opt-in, halves amplitude memory).  The
  VER3xx shape/dtype abstract interpreter flags kernels that would silently
  promote a configured-precision run back to ``complex128``.

Two kinds of dtype requests exist, and the distinction matters:

* :data:`COMPLEX_DTYPE` / :data:`REAL_DTYPE` are the **canonical**
  double-precision dtypes.  Gate matrices, Kraus operators, and verifier
  arithmetic are always built at canonical precision — operators are tiny,
  and building them wide keeps their construction exact.  They are cast to
  the configured precision at the point of application.
* :func:`complex_dtype` / :func:`real_dtype` return the **configured**
  dtypes.  State buffers (amplitudes, density matrices) and the casts at
  the kernel application boundary use these.

Sampling is deliberately outside the knob: outcome probabilities are
upcast to ``float64`` before ``multinomial`` (see
:func:`repro.quantum.measurement.normalize_outcome_probabilities`), so a
single-precision run draws from the same renormalised distribution shape
as a double run and ``numpy`` never sees a ``float32`` pvals vector.

Tolerances scale with the configured precision via :func:`state_atol`:
``complex64`` stores ~7 significant digits, so validation thresholds that
assert unit norm / unit trace at ``1e-8`` under double precision relax to
``1e-4`` under single precision (and end-to-end sweep outputs are
documented to match double precision within ``5e-4`` — see
``docs/array_backend.md``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

import numpy as np

#: Canonical (double) precision: operator construction and verification.
COMPLEX_DTYPE = np.dtype(np.complex128)
REAL_DTYPE = np.dtype(np.float64)

#: Recognised precision modes, in documentation order.
PRECISIONS = ("double", "single")

#: Environment variable consulted once at import for the initial mode.
PRECISION_ENV = "REPRO_PRECISION"

_MODES = {
    "double": {
        "complex": np.dtype(np.complex128),
        "real": np.dtype(np.float64),
        # Matches the seed engines' hand-written thresholds (norm checks
        # at 1e-8); double mode must behave bit-identically to the seed.
        "state_atol": 1e-8,
        # Documented end-to-end sweep tolerance vs itself is exact.
        "sweep_atol": 0.0,
    },
    "single": {
        "complex": np.dtype(np.complex64),
        "real": np.dtype(np.float32),
        # float32 keeps ~7 significant digits; unit-norm/unit-trace checks
        # accumulate rounding across gate applications.
        "state_atol": 1e-4,
        # Documented tolerance of single-precision sweep outputs
        # (probabilities, fidelities) against the double reference.
        "sweep_atol": 5e-4,
    },
}


def _initial_precision() -> str:
    requested = os.environ.get(PRECISION_ENV, "double").strip().lower()
    return requested if requested in _MODES else "double"


_ACTIVE = _initial_precision()


def get_precision() -> str:
    """The active precision mode: ``"double"`` or ``"single"``."""
    return _ACTIVE


def set_precision(mode: str) -> None:
    """Switch the configured precision for subsequent allocations/casts.

    Flip the knob *before* building states or executing programs: buffers
    already allocated keep their dtype, and cached noise-superoperator
    plans built at another precision are re-cast at application time
    rather than rebuilt.
    """
    global _ACTIVE
    if mode not in _MODES:
        raise ValueError(
            f"unknown precision {mode!r}; expected one of {list(PRECISIONS)}"
        )
    _ACTIVE = mode


@contextmanager
def precision(mode: str) -> Iterator[None]:
    """Context manager form of :func:`set_precision` (restores on exit)."""
    previous = get_precision()
    set_precision(mode)
    try:
        yield
    finally:
        set_precision(previous)


def complex_dtype() -> np.dtype:
    """The configured complex dtype for state buffers and kernel casts."""
    return _MODES[_ACTIVE]["complex"]


def real_dtype() -> np.dtype:
    """The configured real dtype (magnitudes, probabilities mid-kernel)."""
    return _MODES[_ACTIVE]["real"]


def complex_itemsize() -> int:
    """Bytes per amplitude at the configured precision (16 or 8)."""
    return int(complex_dtype().itemsize)


def state_atol() -> float:
    """Absolute tolerance for state invariants (unit norm, unit trace)."""
    return float(_MODES[_ACTIVE]["state_atol"])


def sweep_atol() -> float:
    """Documented end-to-end tolerance vs the double-precision reference."""
    return float(_MODES[_ACTIVE]["sweep_atol"])


# ---------------------------------------------------------------------------
# Allocation and casts
# ---------------------------------------------------------------------------


def zeros(shape, dtype: Optional[np.dtype] = None) -> np.ndarray:
    """A zeroed buffer at the configured complex precision by default."""
    return np.zeros(shape, dtype=complex_dtype() if dtype is None else dtype)


def eye(n: int) -> np.ndarray:
    """An identity at the configured complex precision (for operator lifts)."""
    return np.eye(n, dtype=complex_dtype())


def as_complex(values) -> np.ndarray:
    """``values`` as an array at the configured complex precision.

    A no-copy view when the input already has the configured dtype — in
    the default double mode this makes the seam byte-identical to the old
    ``np.asarray(..., dtype=complex)`` call sites.
    """
    return np.asarray(values, dtype=complex_dtype())


def as_real(values) -> np.ndarray:
    """``values`` as an array at the configured real precision."""
    return np.asarray(values, dtype=real_dtype())


# ---------------------------------------------------------------------------
# Kernel wrappers — the swap point for an alternative backend
# ---------------------------------------------------------------------------


def einsum(subscripts: str, *operands, **kwargs) -> np.ndarray:
    return np.einsum(subscripts, *operands, **kwargs)


def matmul(a, b, **kwargs) -> np.ndarray:
    return np.matmul(a, b, **kwargs)


def kron(a, b) -> np.ndarray:
    return np.kron(a, b)


def tensordot(a, b, axes) -> np.ndarray:
    return np.tensordot(a, b, axes=axes)


def outer(a, b) -> np.ndarray:
    return np.outer(a, b)


def vdot(a, b) -> complex:
    return np.vdot(a, b)


def trace(a) -> np.ndarray:
    return np.trace(a)


def norm(a, **kwargs):
    return np.linalg.norm(a, **kwargs)


def multinomial(
    generator: np.random.Generator,
    shots: int,
    pvals,
    size: Optional[Tuple[int, ...]] = None,
) -> np.ndarray:
    """Multinomial draws with ``pvals`` upcast to ``float64``.

    ``numpy`` validates that pvals sum to 1 in double precision; passing a
    ``float32`` vector straight through would make sampling sensitive to
    the precision knob.  Upcasting here keeps the sampling boundary exact
    in both modes.
    """
    probabilities = np.asarray(pvals, dtype=REAL_DTYPE)
    if size is None:
        return generator.multinomial(shots, probabilities)
    return generator.multinomial(shots, probabilities, size=size)


__all__ = [
    "COMPLEX_DTYPE",
    "REAL_DTYPE",
    "PRECISIONS",
    "PRECISION_ENV",
    "get_precision",
    "set_precision",
    "precision",
    "complex_dtype",
    "real_dtype",
    "complex_itemsize",
    "state_atol",
    "sweep_atol",
    "zeros",
    "eye",
    "as_complex",
    "as_real",
    "einsum",
    "matmul",
    "kron",
    "tensordot",
    "outer",
    "vdot",
    "trace",
    "norm",
    "multinomial",
]
