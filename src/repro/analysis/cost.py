"""Static cost-model verification of compiled sweep programs (VER2xx).

An abstract interpreter over a compiled
:class:`~repro.quantum.program.SweepProgram` and its
:class:`~repro.quantum.program.TilePlan`: without executing anything, it
computes what one tiled execution *will* allocate and contract —

* the peak amplitude count of one tile's working set (``2**n`` complex
  entries per element on a statevector engine, ``4**n`` on a density
  engine);
* the peak resident bytes, modelling the engine's einsum double-buffering
  (input and output amplitude arrays are live together during every step)
  plus the sweep-wide bindings matrix and read-out buffer;
* the superoperator/einsum contraction count of the full sweep (one
  contraction per compiled step per tile).

and verifies the prediction against the plan's declared
``max_amplitudes`` budget (the ``max_batch_amplitudes`` knob of the
estimators).  The point is to catch budget bugs at *plan* time: a tile
whose working set exceeds the budget, a single element no tiling can ever
fit, a noisy engine whose ``4**n`` footprint silently blows a budget sized
for statevectors.  Where :mod:`repro.analysis.verify` checks that a plan is
*well-formed* (VER140/VER141 partition checks), this module checks that it
is *affordable*.

The model is deliberately coarse — it bounds the dominant allocations and
ignores O(gate) temporaries — but it is calibrated: the reference-suite
predictions stay within 1.5x of tracemalloc peaks measured by
``benchmarks/bench_program_compile.py`` (asserted in
``tests/analysis/test_cost_model.py``).
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.analysis.diagnostics import Diagnostic, Location, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.quantum.program import SweepProgram, TilePlan

#: Code -> one-line description, mirrored in ``docs/static_analysis.md``.
COST_CODES = {
    "VER201": "tile working set exceeds the declared amplitude budget",
    "VER202": "a single sweep element exceeds the budget — no tiling can fit it",
    "VER203": "tile plan uses under a quarter of the budget while still tiling",
    "VER205": "budget fits a statevector element but not one density (4**n) element",
}

#: Bytes per complex amplitude at the canonical (double) precision; the
#: live prediction uses :func:`repro.arrays.complex_itemsize`, so a
#: ``set_precision("single")`` run is budgeted at 8 bytes per amplitude.
BYTES_PER_AMPLITUDE = 16
#: Live amplitude arrays per einsum step: the input state, the einsum
#: output, and one internal contraction intermediate (``np.einsum`` routes
#: two-operand contractions through a BLAS path that materialises a
#: reordered copy), measured against tracemalloc in
#: ``tests/analysis/test_cost_model.py``.
EINSUM_LIVE_ARRAYS = 3
#: VER203 fires when a *tiling* plan uses less than this fraction of the
#: budget — the sweep pays per-tile contraction overhead it did not need to.
UNDERUTILISATION_FRACTION = 0.25

_ENGINE_KINDS = ("statevector", "density")
_MODES = ("circuit_sweep", "state_overlap")


@dataclasses.dataclass(frozen=True)
class CostReport:
    """Statically predicted execution cost of one (program, tile plan) pair."""

    program: str
    engine: str  #: ``statevector`` or ``density``
    mode: str  #: ``circuit_sweep`` or ``state_overlap``
    num_qubits: int
    #: Complex entries of one element's state: ``2**n`` or ``4**n``.
    element_amplitudes: int
    rows: int
    samples: int
    row_tile: int
    sample_tile: int
    num_tiles: int
    #: Elements resident in the largest tile's working set.
    tile_elements: int
    #: Amplitudes of the largest tile's working set (the budgeted quantity).
    peak_amplitudes: int
    #: Bytes per amplitude at the precision configured when the report was
    #: built (16 under double, 8 under single — see ``repro.arrays``).
    bytes_per_amplitude: int
    #: Predicted peak resident bytes of one execution (see module docstring).
    peak_bytes: int
    #: Step applications over the whole sweep: ``num_tiles * len(steps)``.
    contractions: int
    #: Of which precomposed ``(4**k, 4**k)`` superoperator contractions
    #: (density engines contract every step as a superoperator; 0 otherwise).
    superoperator_contractions: int
    #: The plan's declared budget (``None`` when undeclared).
    max_amplitudes: Optional[int]
    #: Leading steps evolved once per tile at batch 1 and broadcast (the
    #: VER403-certified shared trained-state prefix); 0 when not shared.
    shared_prefix_steps: int = 0
    #: Per-element step applications over the whole sweep.  Without prefix
    #: sharing every element pays every step; a shared prefix pays its steps
    #: once per tile instead of once per element, so this is the quantity
    #: the whole-grid executor actually reduces.
    element_contractions: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering for the analysis payload's ``cost`` section."""
        return dataclasses.asdict(self)


def _element_amplitudes(num_qubits: int, engine: str) -> int:
    if engine == "density":
        return 4**num_qubits
    return 2**num_qubits


def _tile_counts(plan: "TilePlan", mode: str):
    """(working-set elements of the largest tile, number of tiles)."""
    if mode == "state_overlap":
        # Overlap sweeps hold one tile of row states *and* one tile of
        # sample states simultaneously (the (r + s) budget of
        # ``TilePlan.for_state_overlap``).
        row_tiles = math.ceil(plan.rows / plan.row_tile)
        sample_tiles = math.ceil(plan.samples / plan.sample_tile)
        working = min(plan.rows, plan.row_tile) + min(plan.samples, plan.sample_tile)
        return working, row_tiles * sample_tiles
    # Circuit sweeps stream contiguous row-major element tiles
    # (``TilePlan.flat_tiles``); the plan itself knows both quantities.
    return plan.tile_elements, plan.num_tiles


def estimate_cost(
    program: "SweepProgram",
    plan: "TilePlan",
    *,
    engine: str = "statevector",
    mode: str = "circuit_sweep",
    shared_prefix_steps: int = 0,
) -> CostReport:
    """Predict the execution cost of ``program`` under ``plan``.

    ``engine`` selects the per-element state size (``statevector``: ``2**n``
    complex amplitudes; ``density``: ``4**n``); ``mode`` selects the tiling
    semantics (``circuit_sweep``: contiguous element tiles of a
    ``rows x samples`` grid; ``state_overlap``: a row-state tile and a
    sample-state tile resident together, as in the analytic estimator).
    ``shared_prefix_steps`` declares how many leading steps a
    ``TilePlan.for_grid_sweep`` execution evolves once per tile and
    broadcasts (:func:`repro.analysis.equiv.shared_prefix_length`); those
    steps cost one element per tile instead of one per grid element in the
    ``element_contractions`` account.
    """
    if engine not in _ENGINE_KINDS:
        raise ValueError(f"engine must be one of {_ENGINE_KINDS}, got {engine!r}")
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    if shared_prefix_steps < 0 or shared_prefix_steps > len(program.steps):
        raise ValueError(
            f"shared_prefix_steps must lie in [0, {len(program.steps)}], "
            f"got {shared_prefix_steps}"
        )
    from repro.arrays import complex_itemsize

    element_amplitudes = _element_amplitudes(program.num_qubits, engine)
    tile_elements, num_tiles = _tile_counts(plan, mode)
    peak_amplitudes = tile_elements * element_amplitudes
    # Sweep-wide buffers resident across every tile: the float bindings
    # matrix and the accumulated joint read-out distribution.  Bindings and
    # read-outs stay float64 in both precision modes (the sampling boundary
    # is outside the knob), but amplitude bytes scale with the configured
    # complex itemsize.
    bytes_per_amplitude = complex_itemsize()
    sweep_elements = (
        plan.rows + plan.samples if mode == "state_overlap" else plan.total_elements
    )
    bindings_bytes = sweep_elements * program.num_columns * 8
    readout_bytes = sweep_elements * (2 ** len(program.measured_qubits)) * 8
    peak_bytes = (
        EINSUM_LIVE_ARRAYS * peak_amplitudes * bytes_per_amplitude
        + bindings_bytes
        + readout_bytes
    )
    contractions = num_tiles * len(program.steps)
    suffix_steps = len(program.steps) - shared_prefix_steps
    element_contractions = (
        num_tiles * shared_prefix_steps + sweep_elements * suffix_steps
    )
    return CostReport(
        program=program.name,
        engine=engine,
        mode=mode,
        num_qubits=program.num_qubits,
        element_amplitudes=element_amplitudes,
        rows=plan.rows,
        samples=plan.samples,
        row_tile=plan.row_tile,
        sample_tile=plan.sample_tile,
        num_tiles=num_tiles,
        tile_elements=tile_elements,
        peak_amplitudes=peak_amplitudes,
        bytes_per_amplitude=bytes_per_amplitude,
        peak_bytes=peak_bytes,
        contractions=contractions,
        superoperator_contractions=contractions if engine == "density" else 0,
        max_amplitudes=plan.max_amplitudes,
        shared_prefix_steps=shared_prefix_steps,
        element_contractions=element_contractions,
    )


def verify_cost(
    program: "SweepProgram",
    plan: "TilePlan",
    *,
    engine: str = "statevector",
    mode: str = "circuit_sweep",
) -> List[Diagnostic]:
    """Check the predicted cost of ``program`` under ``plan`` against its budget.

    Emits VER201/VER202 errors when the declared ``max_amplitudes`` budget
    cannot hold the tile working set (respectively a single element), a
    VER203 warning when a plan tiles the sweep while using under a quarter
    of its budget, and a VER205 warning when the budget holds a statevector
    element but not a single density (``4**n``) element — a noisy backend
    could not run the program under it at all.  Plans without a declared
    budget verify vacuously.  Prefix-shared plans
    (``TilePlan.for_grid_sweep``) are exempt from VER203: their single-row
    tiles are what makes the shared trained-state prefix legal, not an
    under-sized budget.
    """
    report = estimate_cost(program, plan, engine=engine, mode=mode)
    budget = report.max_amplitudes
    out: List[Diagnostic] = []
    if budget is None:
        return out
    obj = f"{program.name}[{engine}/{mode}]"

    def diag(code: str, message: str, severity: Severity, hint: str) -> Diagnostic:
        return Diagnostic(
            code=code,
            severity=severity,
            location=Location(obj=obj),
            message=message,
            hint=hint,
        )

    if report.element_amplitudes > budget:
        out.append(
            diag(
                "VER202",
                f"one element needs {report.element_amplitudes} amplitudes on "
                f"the {engine} engine but the budget is {budget} — no tiling "
                "can fit it",
                Severity.ERROR,
                "raise max_batch_amplitudes or shrink the circuit; tiling "
                "cannot split a single element's state",
            )
        )
    elif report.peak_amplitudes > budget:
        out.append(
            diag(
                "VER201",
                f"tile working set is {report.peak_amplitudes} amplitudes "
                f"({report.tile_elements} elements x "
                f"{report.element_amplitudes}) but the declared budget is "
                f"{budget}",
                Severity.ERROR,
                "shrink row_tile/sample_tile or derive the plan with "
                "TilePlan.for_circuit_sweep/for_state_overlap from the budget",
            )
        )
    else:
        if (
            report.num_tiles > 1
            and report.peak_amplitudes < budget * UNDERUTILISATION_FRACTION
            # Prefix-shared grid plans tile one parameter row at a time ON
            # PURPOSE: the trained columns must be constant within a tile
            # for the executor to evolve the trained-state prefix once and
            # broadcast it.  Growing such a tile toward the budget would
            # forfeit the shared prefix, so small tiles are not waste here
            # and the under-utilisation warning would be a false positive.
            and not getattr(plan, "shared_prefix", False)
        ):
            out.append(
                diag(
                    "VER203",
                    f"plan streams {report.num_tiles} tiles but each uses only "
                    f"{report.peak_amplitudes} of {budget} budgeted amplitudes "
                    f"(< {int(UNDERUTILISATION_FRACTION * 100)}%)",
                    Severity.WARNING,
                    "grow the tile extents toward the budget to amortise "
                    "per-tile contraction overhead",
                )
            )
        if engine == "statevector":
            density_element = _element_amplitudes(program.num_qubits, "density")
            if density_element > budget:
                out.append(
                    diag(
                        "VER205",
                        f"budget {budget} holds a statevector element "
                        f"({report.element_amplitudes} amplitudes) but one "
                        f"density element needs {density_element} — a noisy "
                        "backend cannot run this program under the budget at "
                        "all",
                        Severity.WARNING,
                        "raise max_batch_amplitudes past 4**num_qubits before "
                        "pointing the sweep at a noisy backend",
                    )
                )
    return out


def reference_cost_reports() -> List[CostReport]:
    """Cost reports of the figure suite's representative sweep programs.

    Compiles the same QuClassi discriminator programs as
    :func:`repro.analysis.verify.verify_reference_suite` (Iris QC-S/QC-D/QC-E
    at 4 features, binary-MNIST QC-S at 8) and predicts a representative
    parameter-shift sweep for each — statevector and density engines — under
    a tile plan derived from the estimators' default
    ``max_batch_amplitudes``.  Feeds the machine-readable ``cost`` section of
    the analysis payload (CLI ``--verify``).
    """
    import numpy as np

    from repro.core.model import QuClassi
    from repro.core.swap_test import SwapTestFidelityEstimator
    from repro.quantum.program import SweepProgram, TilePlan
    from repro.utils.rng import ensure_rng

    budget = SwapTestFidelityEstimator.DEFAULT_MAX_BATCH_AMPLITUDES
    rng = ensure_rng(2022)
    workloads = [
        ("iris", 4, "s"),
        ("iris", 4, "d"),
        ("iris", 4, "e"),
        ("mnist", 8, "s"),
    ]
    #: Representative sweep grid: parameter-shift rows x a test batch.
    rows, samples = 16, 64
    reports: List[CostReport] = []
    for dataset, num_features, architecture in workloads:
        builder = QuClassi(
            num_features=num_features,
            num_classes=2,
            architecture=architecture,
            seed=2022,
        ).builder
        values = rng.uniform(0.0, np.pi, size=len(builder.parameters))
        features = rng.uniform(0.05, 1.0, size=num_features)
        program = SweepProgram.compile(
            builder.build(features, values),
            bind_floats=True,
            name=f"{dataset}-{architecture}:discriminator",
        )
        for engine in _ENGINE_KINDS:
            element = _element_amplitudes(program.num_qubits, engine)
            plan = TilePlan.for_circuit_sweep(rows, samples, element, budget)
            reports.append(
                estimate_cost(program, plan, engine=engine, mode="circuit_sweep")
            )
    return reports


def verify_reference_costs() -> List[Diagnostic]:
    """Budget-verify the reference suite's representative plans (all clean)."""
    import numpy as np

    from repro.core.model import QuClassi
    from repro.core.swap_test import SwapTestFidelityEstimator
    from repro.quantum.program import SweepProgram, TilePlan
    from repro.utils.rng import ensure_rng

    budget = SwapTestFidelityEstimator.DEFAULT_MAX_BATCH_AMPLITUDES
    rng = ensure_rng(2022)
    out: List[Diagnostic] = []
    for dataset, num_features, architecture in [("iris", 4, "s"), ("mnist", 8, "s")]:
        builder = QuClassi(
            num_features=num_features,
            num_classes=2,
            architecture=architecture,
            seed=2022,
        ).builder
        values = rng.uniform(0.0, np.pi, size=len(builder.parameters))
        features = rng.uniform(0.05, 1.0, size=num_features)
        program = SweepProgram.compile(
            builder.build(features, values),
            bind_floats=True,
            name=f"{dataset}-{architecture}:discriminator",
        )
        for engine in _ENGINE_KINDS:
            element = _element_amplitudes(program.num_qubits, engine)
            plan = TilePlan.for_circuit_sweep(16, 64, element, budget)
            out.extend(verify_cost(program, plan, engine=engine, mode="circuit_sweep"))
    return out
