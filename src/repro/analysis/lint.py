"""AST contract linter: parse files, run rules, honour suppressions.

The linter walks Python files, parses them once, and hands the tree to every
:class:`~repro.analysis.rules.Rule` whose :meth:`applies` accepts the file.
Findings can be suppressed *per line* with a justified comment::

    risky_call()  # repro: noqa REP001 -- seeding handled by caller, see #42

The justification (everything after ``--``) is **required**: a bare
``# repro: noqa REP001`` does not suppress anything and instead raises a
``REP000`` finding, so every suppression in the tree documents why the
contract does not apply.  Suppressed findings are counted (never silently
dropped) and surface in the CLI summary and JSON payload.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    sort_diagnostics,
)
from repro.analysis.rules import LintContext, Rule, select_rules

#: matches ``repro: noqa <CODE>[, <CODE>...] [-- justification]`` comments
_NOQA = re.compile(
    r"#\s*repro:\s*noqa\s+(?P<codes>(?:(?:REP|VER)\d{3})(?:\s*,\s*(?:REP|VER)\d{3})*)"
    r"(?:\s*--\s*(?P<why>\S.*))?",
)


@dataclasses.dataclass(frozen=True)
class Suppression:
    """One ``# repro: noqa`` comment."""

    line: int
    codes: Tuple[str, ...]
    justification: Optional[str]


@dataclasses.dataclass
class LintResult:
    """Outcome of one lint run: surviving findings plus accounting."""

    diagnostics: List[Diagnostic]
    files_checked: int
    suppressed: int
    #: per-rule-code tallies of the suppressed findings (accounting, so a
    #: suppression wave against one rule family is visible in the payload)
    suppressed_by_code: Dict[str, int] = dataclasses.field(default_factory=dict)


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """(line, text) for each comment in ``source``; raw lines as a fallback."""
    import io
    import tokenize

    try:
        return [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return list(enumerate(source.splitlines(), start=1))


def find_suppressions(source: str) -> List[Suppression]:
    """Every ``repro: noqa`` comment in ``source`` (line numbers 1-based).

    Only genuine comment tokens are scanned — a noqa-shaped string inside a
    docstring or string literal is prose, not a suppression.  When the file
    cannot be tokenised the raw lines are scanned instead (such files already
    fail to parse and carry a ``REP000`` finding of their own).
    """
    out: List[Suppression] = []
    for lineno, comment in _comment_tokens(source):
        match = _NOQA.search(comment)
        if match is None:
            continue
        codes = tuple(
            code.strip().upper() for code in match.group("codes").split(",")
        )
        why = match.group("why")
        out.append(
            Suppression(
                line=lineno,
                codes=codes,
                justification=why.strip() if why else None,
            )
        )
    return out


def _statement_extents(source: str) -> List[Tuple[int, int]]:
    """``(lineno, end_lineno)`` of every *simple* statement spanning lines.

    Only simple (non-compound) statements are collected: a suppression
    comment anywhere inside a wrapped call or a parenthesised assignment
    should cover the whole statement, but a comment inside a function body
    must not blanket the enclosing ``def``.  Compound statements contribute
    their header extent instead (``if (...\\n...):`` up to the first body
    statement), so a noqa on a wrapped condition line still reaches the
    diagnostic anchored at the keyword.
    """
    compound = (
        ast.FunctionDef,
        ast.AsyncFunctionDef,
        ast.ClassDef,
        ast.If,
        ast.For,
        ast.AsyncFor,
        ast.While,
        ast.With,
        ast.AsyncWith,
        ast.Try,
    )
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError):
        return []
    extents: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if start is None or end is None:
            continue
        if isinstance(node, compound):
            first_body_line = min(
                (
                    child.lineno
                    for child in getattr(node, "body", [])
                    if hasattr(child, "lineno")
                ),
                default=None,
            )
            if first_body_line is not None:
                end = max(start, first_body_line - 1)
        if end > start:
            extents.append((start, end))
    return extents


def justified_suppression_index(source: str) -> Dict[int, set]:
    """line -> codes justifiably suppressed there (bare noqas excluded).

    The shared application point for *every* analysis family: the per-file
    linter, the cross-module flow analyzers, and the shape interpreter
    honour the same ``# repro: noqa CODE -- why`` comments, so one
    suppression syntax covers REP and VER findings alike.  Bare
    (unjustified) suppressions are not indexed — they suppress nothing and
    are reported as ``REP000`` by :func:`lint_source`.

    A suppression physically placed on *any* line of a multi-line simple
    statement (a wrapped call, a parenthesised expression) covers the whole
    statement's line extent, so the comment can sit at the end of the
    wrapped call while the diagnostic anchors at its first line.
    """
    index: Dict[int, set] = {}
    for suppression in find_suppressions(source):
        if suppression.justification is None:
            continue
        index.setdefault(suppression.line, set()).update(suppression.codes)
    if index:
        for start, end in _statement_extents(source):
            spanned = set()
            for line in range(start, end + 1):
                spanned.update(index.get(line, ()))
            if spanned:
                for line in range(start, end + 1):
                    index.setdefault(line, set()).update(spanned)
    return index


def apply_suppressions(
    diagnostics: Iterable[Diagnostic], index: Dict[int, set]
) -> Tuple[List[Diagnostic], Dict[str, int]]:
    """Drop findings covered by ``index``; tally the drops per rule code."""
    kept: List[Diagnostic] = []
    suppressed_by_code: Dict[str, int] = {}
    for diagnostic in diagnostics:
        line = diagnostic.location.line
        if line is not None and diagnostic.code in index.get(line, ()):
            suppressed_by_code[diagnostic.code] = (
                suppressed_by_code.get(diagnostic.code, 0) + 1
            )
            continue
        kept.append(diagnostic)
    return kept, suppressed_by_code


def merge_suppression_counts(
    into: Dict[str, int], counts: Dict[str, int]
) -> Dict[str, int]:
    """Accumulate per-code suppression tallies (in place; returned for chaining)."""
    for code, count in counts.items():
        into[code] = into.get(code, 0) + count
    return into


def normalize_path(path: str, root: Optional[str] = None) -> str:
    """Root-relative, ``/``-separated rendering of ``path`` for locations."""
    root = root or os.getcwd()
    absolute = os.path.abspath(path)
    try:
        relative = os.path.relpath(absolute, root)
    except ValueError:  # pragma: no cover - different drive on Windows
        relative = absolute
    if relative.startswith(".."):
        relative = absolute
    return relative.replace(os.sep, "/")


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [
                d for d in dirnames if not d.startswith(".") and d != "__pycache__"
            ]
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return sorted(dict.fromkeys(found))


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    *,
    root: Optional[str] = None,
) -> Tuple[List[Diagnostic], int]:
    """Lint one in-memory module; returns ``(findings, suppressed_count)``.

    Findings include a parse failure (reported as ``REP000``) and any
    malformed suppression comments; properly justified suppressions remove
    matching same-line findings and are tallied in the second element.
    """
    findings, suppressed_by_code = lint_source_accounted(
        source, path, rules, root=root
    )
    return findings, sum(suppressed_by_code.values())


def lint_source_accounted(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    *,
    root: Optional[str] = None,
) -> Tuple[List[Diagnostic], Dict[str, int]]:
    """:func:`lint_source` with per-rule-code suppression accounting."""
    normalized = normalize_path(path, root)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [
                Diagnostic(
                    code="REP000",
                    severity=Severity.ERROR,
                    location=Location(
                        file=normalized, line=exc.lineno or 1, column=exc.offset or 1
                    ),
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            {},
        )
    context = LintContext(path=normalized, source=source, tree=tree)
    raw: List[Diagnostic] = []
    for rule in rules if rules is not None else select_rules():
        if rule.applies(context):
            raw.extend(rule.check(context))

    out: List[Diagnostic] = []
    for suppression in find_suppressions(source):
        if suppression.justification is None:
            out.append(
                Diagnostic(
                    code="REP000",
                    severity=Severity.ERROR,
                    location=Location(file=normalized, line=suppression.line, column=1),
                    message=(
                        "suppression without justification: "
                        f"noqa {', '.join(suppression.codes)}"
                    ),
                    hint="write '# repro: noqa REPxxx -- <why the contract does "
                    "not apply here>'",
                )
            )

    kept, suppressed_by_code = apply_suppressions(
        raw, justified_suppression_index(source)
    )
    out.extend(kept)
    return out, suppressed_by_code


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    *,
    root: Optional[str] = None,
    jobs: Optional[int] = None,
) -> LintResult:
    """Lint every Python file under ``paths``.

    ``jobs > 1`` fans the per-file linting out through
    :class:`repro.parallel.ShardExecutor` (one shard per file, thread
    strategy — the executor the rest of the stack dogfoods).  Shard results
    come back in shard-index order and are merged in that order before the
    final sort, so the findings and the per-code suppression tallies are
    identical to the serial pass.
    """
    rules = list(rules) if rules is not None else select_rules()
    diagnostics: List[Diagnostic] = []
    suppressed_by_code: Dict[str, int] = {}
    files = iter_python_files(paths)

    def lint_file(path: str) -> Tuple[List[Diagnostic], Dict[str, int]]:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return lint_source_accounted(source, path, rules, root=root)

    if jobs is not None and jobs > 1 and len(files) > 1:
        from repro.parallel import ShardExecutor, ShardPlan

        executor = ShardExecutor(strategy="thread", max_workers=jobs)
        plan = ShardPlan.from_items(files)
        results = executor.map(lambda shard: lint_file(shard.payload), plan)
    else:
        results = [lint_file(path) for path in files]
    for found, hidden in results:
        diagnostics.extend(found)
        merge_suppression_counts(suppressed_by_code, hidden)
    return LintResult(
        diagnostics=sort_diagnostics(diagnostics),
        files_checked=len(files),
        suppressed=sum(suppressed_by_code.values()),
        suppressed_by_code=suppressed_by_code,
    )
