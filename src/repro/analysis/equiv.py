"""Translation validation of the compile pipeline (VER4xx).

The fifth analysis family of :mod:`repro.analysis` (after the AST linter,
the flow analyzers, the IR/cost verifiers, and the shape interpreter).
Where the IR verifier checks one compiled
:class:`~repro.quantum.program.SweepProgram` against its *own* invariants,
this family checks an **optimised** program against its **source**: every
algebraic rewrite the plan-time fusion pass performs is re-derived here
through an independent code path and certified, so a fusion bug surfaces
as a diagnostic (or a refused compile) instead of as wrong sweep numbers.

====== ====================================================================
code   contract
====== ====================================================================
VER401 a fused step's matrix equals the ordered product of its source
       unitaries lifted to the fused qubit tuple, up to a global phase
VER402 a fused step's folded density superoperator equals the sequential
       composition of its sources' (noise ∘ conjugation) superoperators,
       and the folded matrix is still CPTP
VER403 a claimed shared trained-state prefix only covers steps whose bind
       columns are constant across every shift row of the bindings
VER410 an optimised program is a faithful translation of its source:
       structural metadata, bind-column maps, and the step algebra
       (flattened through fusion provenance) all agree
VER411 the optimisation pass was vacuous — the optimised program has no
       fused steps or no fewer steps than its source (warning)
====== ====================================================================

Two implementations, one theorem
--------------------------------

The fusion pass in :mod:`repro.quantum.program` lifts gate blocks to the
fused qubit tuple with tensor ``tensordot``/``moveaxis`` axis algebra (the
engines' idiom).  The certificates here rebuild every lift from scratch
with ``kron`` plus explicit qubit-permutation matrices — a genuinely
different code path — so a bug in either lifting implementation makes the
two sides disagree and the certificate fail.

The **fusion legality oracle** (:func:`can_extend_fusion`) is the decision
procedure the pass consults *before* rewriting: fixed unitaries only,
overlapping qubit tuples, bounded fused width, and — under a noise model —
the channel-commutation condition ``C(U) · N_acc == N_acc · C(U)`` that
makes folding the run's noise superoperators behind the fused unitary
exact (moving each appended conjugation left past the accumulated noise).
Parametric bind sites and measurement barriers always block fusion.

Findings surface through the shared CLI (``--verify``), SARIF/JSON
outputs, the baseline ratchet, and ``--select`` like every other family.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.verify import DEFAULT_ATOL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.quantum.noise import NoiseModel
    from repro.quantum.program import GateStep, SweepProgram

#: Code -> one-line description, mirrored in ``docs/static_analysis.md``.
EQUIV_CODES = {
    "VER401": "fused unitary differs from the ordered product of its sources",
    "VER402": "folded superoperator differs from the composed source channels",
    "VER403": "claimed shared prefix reads a column that varies across rows",
    "VER404": "fused step spans a declared fusion barrier",
    "VER410": "optimised program is not a faithful translation of its source",
    "VER411": "optimisation pass was vacuous: nothing fused (warning)",
}

#: Default cap on the fused qubit-tuple width.  Two qubits keeps fused
#: unitaries at ``4 x 4`` and folded superoperators at ``16 x 16`` — the
#: dominant wins (``cx`` + trailing single-qubit rotations in basis-routed
#: circuits) fit, and plan matrices stay trivially cheap to certify.
DEFAULT_MAX_FUSED_QUBITS = 2


def _diag(
    code: str,
    message: str,
    *,
    obj: str,
    severity: Severity = Severity.ERROR,
    hint: Optional[str] = None,
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity,
        location=Location(obj=obj),
        message=message,
        hint=hint,
    )


# --------------------------------------------------------------------------- #
# Independent lifting: kron blocks + explicit qubit-permutation matrices
# --------------------------------------------------------------------------- #


def qubit_permutation_matrix(
    source_order: Sequence[int], target_order: Sequence[int]
) -> np.ndarray:
    """``P`` reordering a statevector from ``source_order`` to ``target_order``.

    Amplitude index bits are most-significant-first: bit ``i`` of an index in
    the source basis is the value of qubit ``source_order[i]``.  ``P`` is
    real orthogonal, so ``P.T`` is its inverse.
    """
    if sorted(source_order) != sorted(target_order):
        raise ValueError(
            f"permutation endpoints disagree: {source_order} vs {target_order}"
        )
    m = len(source_order)
    dim = 2**m
    matrix = np.zeros((dim, dim))
    for y in range(dim):
        bits = {
            qubit: (y >> (m - 1 - i)) & 1 for i, qubit in enumerate(source_order)
        }
        x = 0
        for qubit in target_order:
            x = (x << 1) | bits[qubit]
        matrix[x, y] = 1.0
    return matrix


def lift_unitary_kron(
    matrix: np.ndarray, qubits: Sequence[int], union: Sequence[int]
) -> np.ndarray:
    """Lift a ``(2**k, 2**k)`` block on ``qubits`` to the ``union`` register.

    Builds ``kron(matrix, eye)`` in the ``qubits``-first axis order and
    conjugates by the permutation onto ``union`` order — deliberately *not*
    the tensor-axis lift the fusion pass itself uses.
    """
    qubits = tuple(qubits)
    union = tuple(union)
    rest = [q for q in union if q not in qubits]
    block = np.kron(
        np.asarray(matrix), np.eye(2 ** len(rest), dtype=np.asarray(matrix).dtype)
    )
    perm = qubit_permutation_matrix(list(qubits) + rest, union)
    return perm @ block @ perm.T


def lift_superoperator_kron(
    superoperator: np.ndarray, qubits: Sequence[int], union: Sequence[int]
) -> np.ndarray:
    """Lift a ``(4**k, 4**k)`` kron-layout superoperator to the ``union``.

    The superoperator acts on ``vec(rho)`` with row index ``R * 2**m + C``;
    the embed keeps the sub-block on the leading axes (``qubits`` first) and
    the permutation superoperator ``kron(P, P)`` reorders both the row and
    the column factor onto ``union`` order.
    """
    qubits = tuple(qubits)
    union = tuple(union)
    k, m = len(qubits), len(union)
    rest_dim = 2 ** (m - k)
    sub = np.asarray(superoperator).reshape(2**k, 2**k, 2**k, 2**k)
    identity = np.eye(rest_dim)
    embedded = np.einsum(
        "abcd,ef,gh->aebgcfdh", sub, identity, identity
    ).reshape(4**m, 4**m)
    rest = [q for q in union if q not in qubits]
    perm = qubit_permutation_matrix(list(qubits) + rest, union)
    perm_super = np.kron(perm, perm)
    return perm_super @ embedded @ perm_super.T


def _conjugation_kron(matrix: np.ndarray) -> np.ndarray:
    """``rho -> U rho U^dagger`` as a kron-layout superoperator (local copy)."""
    matrix = np.asarray(matrix)
    return np.kron(matrix, matrix.conj())


# --------------------------------------------------------------------------- #
# The fusion legality oracle
# --------------------------------------------------------------------------- #


def fusion_union(steps: Sequence["GateStep"]) -> Tuple[int, ...]:
    """Sorted union of the qubit tuples of ``steps``."""
    return tuple(sorted({qubit for step in steps for qubit in step.qubits}))


def accumulated_noise(
    steps: Sequence["GateStep"],
    union: Sequence[int],
    noise_model: "NoiseModel",
) -> Optional[np.ndarray]:
    """The run's composed noise superoperators, lifted onto ``union``.

    ``None`` when the model attaches no channel to any step of the run —
    the commutation condition is then vacuously true.
    """
    from repro.quantum.program import gate_noise_superoperator

    composed: Optional[np.ndarray] = None
    for step in steps:
        noise = gate_noise_superoperator(step.name, step.qubits, noise_model)
        if noise is None:
            continue
        lifted = lift_superoperator_kron(noise, step.qubits, union)
        composed = lifted if composed is None else lifted @ composed
    return composed


def can_extend_fusion(
    run: Sequence["GateStep"],
    step: "GateStep",
    *,
    noise_model: Optional["NoiseModel"] = None,
    max_fused_qubits: int = DEFAULT_MAX_FUSED_QUBITS,
    atol: float = DEFAULT_ATOL,
) -> Tuple[bool, str]:
    """Whether ``step`` may join the fused run ``run``; ``(ok, reason)``.

    An empty ``run`` asks whether ``step`` may *start* a run.  The
    noise-commutation condition is the exactness proof obligation: the
    fused plan ``N_k ... N_1 · C(U_k ... U_1)`` equals the sequential
    ``(N_k C_k) ... (N_1 C_1)`` iff each appended conjugation commutes with
    the noise accumulated before it, which is exactly what is checked here
    (incrementally, against the composed product — the only factor the
    rearrangement ever moves a conjugation past).
    """
    if not step.is_fixed:
        return False, "parametric bind site blocks fusion"
    if getattr(step, "fused_from", None):
        return False, "step already carries fusion provenance"
    if not run:
        return True, ""
    union = fusion_union(list(run) + [step])
    if len(union) > max_fused_qubits:
        return (
            False,
            f"fused width {len(union)} exceeds max_fused_qubits={max_fused_qubits}",
        )
    if not set(step.qubits) & set(fusion_union(run)):
        return False, "qubit tuples do not overlap"
    if noise_model is not None:
        acc = accumulated_noise(run, union, noise_model)
        if acc is not None:
            conjugation = _conjugation_kron(
                lift_unitary_kron(step.matrix, step.qubits, union)
            )
            if not np.allclose(conjugation @ acc, acc @ conjugation, atol=atol):
                return (
                    False,
                    "accumulated noise superoperator does not commute with "
                    "the appended unitary's conjugation",
                )
    return True, ""


# --------------------------------------------------------------------------- #
# Per-rewrite certificates (VER401 / VER402 / VER403)
# --------------------------------------------------------------------------- #


def verify_fused_step(
    step: "GateStep",
    *,
    program_name: str = "program",
    atol: float = DEFAULT_ATOL,
) -> List[Diagnostic]:
    """VER401 — fused unitary ≡ lifted ordered product, up to global phase."""
    out: List[Diagnostic] = []
    obj = f"program '{program_name}' fused step '{step.name}'"
    sources = step.fused_from or ()
    if not sources:
        return out
    expected: Optional[np.ndarray] = None
    for source in sources:
        if source.matrix is None:
            out.append(
                _diag(
                    "VER401",
                    f"fusion provenance contains parametric step '{source.name}'",
                    obj=obj,
                    hint="only fixed unitaries may fuse; re-run the legality oracle",
                )
            )
            return out
        lifted = lift_unitary_kron(source.matrix, source.qubits, step.qubits)
        expected = lifted if expected is None else lifted @ expected
    actual = np.asarray(step.matrix)
    if actual.shape != expected.shape:
        out.append(
            _diag(
                "VER401",
                f"fused matrix has shape {actual.shape}, sources lift to "
                f"{expected.shape}",
                obj=obj,
            )
        )
        return out
    # Compare up to a global phase: align on the largest source entry.
    anchor = np.unravel_index(np.argmax(np.abs(expected)), expected.shape)
    phase = 1.0 + 0.0j
    if abs(expected[anchor]) > atol:
        candidate = actual[anchor] / expected[anchor]
        if abs(abs(candidate) - 1.0) <= atol:
            phase = candidate
    if not np.allclose(actual, phase * expected, atol=atol):
        out.append(
            _diag(
                "VER401",
                "fused matrix differs from the ordered product of its source "
                "unitaries (beyond a global phase)",
                obj=obj,
                hint="the optimiser's tensor lift and the validator's "
                "kron/permutation lift disagree — the rewrite is unsound",
            )
        )
    return out


def verify_fused_superoperator_plan(
    step: "GateStep",
    plan_superoperator: np.ndarray,
    noise_model: "NoiseModel",
    *,
    program_name: str = "program",
    atol: float = DEFAULT_ATOL,
) -> List[Diagnostic]:
    """VER402 — folded plan ≡ sequential source composition, CPTP preserved."""
    from repro.analysis.verify import verify_superoperator
    from repro.quantum.program import gate_noise_superoperator

    out: List[Diagnostic] = []
    obj = f"program '{program_name}' fused step '{step.name}'"
    sources = step.fused_from or ()
    if not sources:
        return out
    expected: Optional[np.ndarray] = None
    for source in sources:
        if source.matrix is None:
            out.append(
                _diag(
                    "VER402",
                    f"fusion provenance contains parametric step '{source.name}'",
                    obj=obj,
                )
            )
            return out
        term = _conjugation_kron(
            lift_unitary_kron(source.matrix, source.qubits, step.qubits)
        )
        noise = gate_noise_superoperator(source.name, source.qubits, noise_model)
        if noise is not None:
            term = lift_superoperator_kron(noise, source.qubits, step.qubits) @ term
        expected = term if expected is None else term @ expected
    actual = np.asarray(plan_superoperator)
    if actual.shape != expected.shape:
        out.append(
            _diag(
                "VER402",
                f"folded superoperator has shape {actual.shape}, the source "
                f"composition has {expected.shape}",
                obj=obj,
            )
        )
        return out
    if not np.allclose(actual, expected, atol=atol):
        out.append(
            _diag(
                "VER402",
                "folded superoperator differs from the sequential composition "
                "of the source (noise ∘ conjugation) superoperators",
                obj=obj,
                hint="the noise model disagrees with the one the program was "
                "optimised under, or a channel-commutation assumption is "
                "violated — re-optimise with the engine's noise model",
            )
        )
    for finding in verify_superoperator(
        actual, len(step.qubits), name=f"{obj} folded plan", atol=atol
    ):
        out.append(
            _diag(
                "VER402",
                f"folded superoperator is not CPTP: {finding.message}",
                obj=obj,
            )
        )
    return out


def shared_prefix_length(program: "SweepProgram", bindings) -> int:
    """Longest step prefix legal to evolve once and share across all rows.

    A step is shareable while it is fixed or reads only bind columns whose
    values are identical across every row of ``bindings`` — the invariant
    behind sharing the trained-state prefix across parameter-shift rows
    that only differ downstream.
    """
    bindings = np.asarray(bindings, dtype=float)
    if bindings.ndim != 2 or bindings.shape[0] == 0:
        return 0
    constant = {
        column
        for column in range(bindings.shape[1])
        if np.all(bindings[:, column] == bindings[0, column])
    }
    prefix = 0
    for step in program.steps:
        if not step.is_fixed:
            columns = {slot[1] for slot in step.slots if slot[0] == "column"}
            if not columns <= constant:
                break
        prefix += 1
    return prefix


def verify_shared_prefix(
    program: "SweepProgram", bindings, prefix_steps: int
) -> List[Diagnostic]:
    """VER403 — a claimed shared prefix must not read a row-varying column."""
    out: List[Diagnostic] = []
    obj = f"program '{program.name}' shared prefix"
    bindings = np.asarray(bindings, dtype=float)
    if prefix_steps > len(program.steps):
        out.append(
            _diag(
                "VER403",
                f"claimed prefix of {prefix_steps} step(s) exceeds the "
                f"program's {len(program.steps)} step(s)",
                obj=obj,
            )
        )
        return out
    legal = shared_prefix_length(program, bindings)
    if prefix_steps > legal:
        step = program.steps[legal]
        out.append(
            _diag(
                "VER403",
                f"step {legal} ('{step.name}') reads a bind column that "
                f"varies across the {bindings.shape[0]} shift row(s); the "
                f"shared prefix may cover at most {legal} step(s), not "
                f"{prefix_steps}",
                obj=obj,
                hint="sharing the trained-state evolution is only exact up "
                "to the first row-varying bind site",
            )
        )
    return out


# --------------------------------------------------------------------------- #
# End-to-end witness (VER410 / VER411)
# --------------------------------------------------------------------------- #


def verify_translation(
    source: "SweepProgram",
    optimized: "SweepProgram",
    *,
    atol: float = DEFAULT_ATOL,
) -> List[Diagnostic]:
    """VER410/VER411 — witness that ``optimized`` faithfully translates ``source``.

    Checks structural metadata, the bind-column map, and the step algebra:
    flattening every fused step through its provenance must reproduce the
    source step sequence exactly (names, qubit tuples, slot tuples, and the
    fixed matrices themselves), so the parametric bind-site subsequence is
    identical by construction.  Emits a VER411 warning when the pass
    rewrote nothing.
    """
    out: List[Diagnostic] = []
    obj = f"translation '{source.name}' -> '{optimized.name}'"
    for field in (
        "num_qubits",
        "num_clbits",
        "measured_qubits",
        "clbits",
        "num_columns",
        "parameters",
        "column_sites",
        "fusion_barriers",
    ):
        before, after = getattr(source, field), getattr(optimized, field)
        if before != after:
            out.append(
                _diag(
                    "VER410",
                    f"structural metadata '{field}' changed: {before!r} -> {after!r}",
                    obj=obj,
                )
            )
    flattened: List["GateStep"] = []
    barriers = set(getattr(optimized, "fusion_barriers", ()) or ())
    position = 0
    for index, step in enumerate(optimized.steps):
        span = len(step.fused_from) if step.fused_from else 1
        crossed = sorted(b for b in barriers if position < b < position + span)
        if crossed:
            out.append(
                _diag(
                    "VER404",
                    f"fused step {index} ('{step.name}') spans source steps "
                    f"[{position}, {position + span}) across declared fusion "
                    f"barrier(s) {crossed}",
                    obj=obj,
                    hint="barriers mark boundaries fusion must respect — the "
                    "whole-grid compile path barriers the trained/encoder "
                    "seam so shared-prefix claims survive optimisation",
                )
            )
        position += span
        if step.fused_from:
            if not step.is_fixed:
                out.append(
                    _diag(
                        "VER410",
                        f"fused step {index} ('{step.name}') carries no matrix",
                        obj=obj,
                    )
                )
            if step.slots:
                out.append(
                    _diag(
                        "VER410",
                        f"fused step {index} ('{step.name}') carries bind "
                        "slots; fusion must not absorb parametric sites",
                        obj=obj,
                    )
                )
            if fusion_union(step.fused_from) != tuple(sorted(step.qubits)):
                out.append(
                    _diag(
                        "VER410",
                        f"fused step {index} ('{step.name}') acts on "
                        f"{step.qubits} but its provenance spans "
                        f"{fusion_union(step.fused_from)}",
                        obj=obj,
                    )
                )
            flattened.extend(step.fused_from)
        else:
            flattened.append(step)
    if len(flattened) != len(source.steps):
        out.append(
            _diag(
                "VER410",
                f"flattened step algebra has {len(flattened)} step(s), the "
                f"source has {len(source.steps)}",
                obj=obj,
            )
        )
    else:
        for index, (theirs, ours) in enumerate(zip(flattened, source.steps)):
            if (
                theirs.name != ours.name
                or theirs.qubits != ours.qubits
                or theirs.slots != ours.slots
            ):
                out.append(
                    _diag(
                        "VER410",
                        f"flattened step {index} is "
                        f"('{theirs.name}', {theirs.qubits}) but the source "
                        f"step is ('{ours.name}', {ours.qubits}) with "
                        "matching slots required",
                        obj=obj,
                    )
                )
                continue
            if (theirs.matrix is None) != (ours.matrix is None):
                out.append(
                    _diag(
                        "VER410",
                        f"flattened step {index} ('{ours.name}') disagrees "
                        "with the source on being fixed vs parametric",
                        obj=obj,
                    )
                )
            elif theirs.matrix is not None and not (
                theirs.matrix is ours.matrix
                or np.allclose(theirs.matrix, ours.matrix, atol=atol)
            ):
                out.append(
                    _diag(
                        "VER410",
                        f"flattened step {index} ('{ours.name}') carries a "
                        "matrix that differs from the source step's",
                        obj=obj,
                    )
                )
    if optimized is source or not any(step.fused_from for step in optimized.steps):
        out.append(
            _diag(
                "VER411",
                "optimisation pass was vacuous: the program has no fused steps",
                obj=obj,
                severity=Severity.WARNING,
                hint="nothing to certify — either no runs were legal to fuse "
                "or the pass was asked to rewrite an already-optimised program",
            )
        )
    elif len(optimized.steps) >= len(source.steps):
        out.append(
            _diag(
                "VER411",
                f"optimised program has {len(optimized.steps)} step(s), not "
                f"fewer than the source's {len(source.steps)}",
                obj=obj,
                severity=Severity.WARNING,
            )
        )
    return out


# --------------------------------------------------------------------------- #
# Figure-suite reference equivalence (the CLI's ``--verify`` entry)
# --------------------------------------------------------------------------- #


def verify_reference_equivalence() -> List[Diagnostic]:
    """Optimise the reference programs and certify every rewrite (VER4xx).

    For each reference workload: the transpile-template program is fused
    under the simulated IBM-Q London noise model and certified end to end
    (VER410 witness, VER401 per fused unitary, VER402 against the density
    engine's actual folded plans), an ideal (noise-free) fusion of the same
    program is certified for the statevector path, and a parameter-shift
    bindings matrix is checked for shared-prefix legality (VER403).  The
    whole-grid program of the same workload — trained and encoder bind
    columns in one symbolic compile — is then fused and certified too:
    VER404 (via the translation witness) proves fusion never crossed the
    trained/encoder barrier, and VER403 proves a single-row grid tile
    legally shares its trained-state prefix before and after optimisation.
    """
    from repro.core.model import QuClassi
    from repro.hardware.calibration import get_calibration
    from repro.quantum.program import DensitySuperoperatorEngine, SweepProgram
    from repro.quantum.transpiler import TranspileCache
    from repro.utils.rng import ensure_rng

    from repro.exceptions import SimulationError

    out: List[Diagnostic] = []
    noise = get_calibration("ibmq_london").noise_model()
    rng = ensure_rng(2022)
    workloads = [("iris", 4, "s"), ("mnist", 8, "s")]
    for dataset, num_features, architecture in workloads:
        builder = QuClassi(
            num_features=num_features,
            num_classes=2,
            architecture=architecture,
            seed=2022,
        ).builder
        values = rng.uniform(0.0, np.pi, size=len(builder.parameters))
        features = rng.uniform(0.05, 1.0, size=num_features)
        bound_circuit = builder.build(features, values)
        cache = TranspileCache()
        entry, row = cache.template(bound_circuit)
        source = entry.ensure_program(optimize=False)
        label = f"{dataset}-{architecture}:transpiled"
        try:
            noisy = source.optimized(noise_model=noise)
            ideal = source.optimized()
        except SimulationError as exc:
            out.append(
                _diag(
                    "VER410",
                    f"optimising '{label}' failed its own certification: {exc}",
                    obj=f"program '{label}'",
                )
            )
            continue
        for optimized in (noisy, ideal):
            if optimized is source:
                continue
            out.extend(verify_translation(source, optimized))
            for step in optimized.steps:
                if step.fused_from:
                    out.extend(
                        verify_fused_step(step, program_name=optimized.name)
                    )
        if noisy is not source:
            engine = DensitySuperoperatorEngine(noise)
            for step, plan in zip(noisy.steps, engine.step_plans(noisy)):
                if step.fused_from:
                    out.extend(
                        verify_fused_superoperator_plan(
                            step,
                            plan[1],
                            noise,
                            program_name=noisy.name,
                        )
                    )
        # Shared-prefix legality across parameter-shift-style rows: every
        # row binds the same values except one late column.
        bindings = np.tile(np.asarray(row, dtype=float), (3, 1))
        if bindings.shape[1]:
            bindings[1:, -1] += 0.5
        out.extend(
            verify_shared_prefix(
                source, bindings, shared_prefix_length(source, bindings)
            )
        )
        # Whole-grid path: the symbolic discriminator compiles trained AND
        # encoder bind columns into one program with a fusion barrier at the
        # trained/encoder seam.  Certify that fusing it preserves the
        # barrier (VER404 inside verify_translation) and that a grid tile —
        # one parameter row, several samples — legally shares the trained
        # prefix up to the barrier (VER403).
        grid_source = SweepProgram.compile(
            builder.symbolic_discriminator(),
            bind_floats=False,
            parameters=builder.grid_parameters,
            name=f"{dataset}-{architecture}:grid",
        )
        try:
            grid_optimized = grid_source.optimized()
        except SimulationError as exc:
            out.append(
                _diag(
                    "VER410",
                    f"optimising '{grid_source.name}' failed its own "
                    f"certification: {exc}",
                    obj=f"program '{grid_source.name}'",
                )
            )
            continue
        if grid_optimized is not grid_source:
            out.extend(verify_translation(grid_source, grid_optimized))
            for step in grid_optimized.steps:
                if step.fused_from:
                    out.extend(
                        verify_fused_step(step, program_name=grid_optimized.name)
                    )
        feature_batch = rng.uniform(0.05, 0.95, size=(4, num_features))
        tile = builder.grid_bindings(values[None, :], feature_batch)
        for program in (grid_source, grid_optimized):
            prefix = shared_prefix_length(program, tile)
            if prefix == 0:
                out.append(
                    _diag(
                        "VER403",
                        f"grid tile of '{program.name}' shares no prefix at "
                        "all — the trained-state evolution is not constant "
                        "across a single parameter row's samples",
                        obj=f"program '{program.name}' shared prefix",
                        hint="trained columns must precede every encoder "
                        "bind site for the grid fast path to pay off",
                    )
                )
            out.extend(verify_shared_prefix(program, tile, prefix))
    return out
