"""Static IR verifier for compiled :class:`~repro.quantum.program.SweepProgram`s.

PR 5 moved the sweep hot path into a compiled IR: gate steps with
precomputed unitaries, parameter bind sites reading a ``(batch, columns)``
bindings matrix, noise precomposed into ``(4**k, 4**k)`` superoperators, and
a :class:`~repro.quantum.program.TilePlan` cutting the (shift rows x samples)
grid.  Each of those artefacts has invariants that, when silently violated —
a bind-site column outside the bindings matrix, a non-CPTP precomposed
channel, a tile enumeration that skips grid elements — produce *wrong
numbers*, not exceptions, three layers away from the defect.

This module checks those invariants **statically**, over the IR itself, and
reports through the shared :class:`~repro.analysis.diagnostics.Diagnostic`
record:

====== ====================================================================
code   invariant
====== ====================================================================
VER101 every bind-site column index lies in ``[0, num_columns)``
VER102 every parametric site is covered by the supplied bindings matrix
VER103 every declared binding column is read by at least one site (warning)
VER110 gate qubit tuples lie within the register width, without duplicates
VER111 measured qubits/clbits lie within their registers, measured once,
       and pair up one clbit per measured qubit
VER120 fixed-step matrices are ``(2**k, 2**k)`` and unitary (full level)
VER121 the fixed/parametric split is consistent (fixed steps carry a
       matrix, parametric steps do not)
VER130 a (precomposed) superoperator/channel is trace preserving
VER131 a (precomposed) superoperator is completely positive (Choi PSD)
VER140 the tile plan exactly partitions the sweep grid it claims to cover
VER141 a tile exceeds the plan's declared amplitude budget (warning)
VER150 the circuit fits the deferred-measurement strategy (no operation on
       an already-measured qubit, no qubit measured twice, no resets)
====== ====================================================================

Two verification levels keep the hot path honest without taxing it:

* the **cheap** subset (index/bounds/consistency checks, ``O(steps)``) runs
  on *every* :meth:`SweepProgram.compile` — compiles are structure-cached,
  so this costs one linear walk per circuit structure;
* the **full** level adds the numerical checks (unitarity of fixed
  matrices, CPTP of precomposed noise superoperators) and is switched on by
  the ``REPRO_VERIFY=1`` environment flag, which also makes the density
  engine verify each precomposed step plan before executing it.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

import numpy as np

from repro.arrays import COMPLEX_DTYPE

from repro.analysis.diagnostics import Diagnostic, Location, Severity, errors
from repro.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.quantum.program import SweepProgram, TilePlan

#: Environment flag enabling the full (numerical) verification level.
REPRO_VERIFY_ENV = "REPRO_VERIFY"

#: Default absolute tolerance of the numerical (unitarity / CPTP) checks.
DEFAULT_ATOL = 1e-8

#: Code -> one-line description, mirrored in ``docs/static_analysis.md``.
VERIFIER_CODES = {
    "VER101": "bind-site column index out of range of the program's columns",
    "VER102": "parametric site not covered by the supplied bindings matrix",
    "VER103": "declared binding column never read by any bind site",
    "VER110": "gate qubit tuple outside the register width or duplicated",
    "VER111": "measurement read-out outside the registers or inconsistent",
    "VER120": "fixed gate step matrix malformed or not unitary",
    "VER121": "fixed/parametric step split inconsistent with its matrix",
    "VER130": "superoperator or channel is not trace preserving",
    "VER131": "superoperator is not completely positive",
    "VER140": "tile plan does not exactly partition the sweep grid",
    "VER141": "tile exceeds the plan's declared amplitude budget",
    "VER150": "circuit violates the deferred-measurement strategy",
}


def full_verification_enabled() -> bool:
    """Whether ``REPRO_VERIFY`` requests the full (numerical) level."""
    return os.environ.get(REPRO_VERIFY_ENV, "").strip().lower() in {"1", "true", "yes", "on"}


def _diag(
    code: str,
    message: str,
    *,
    obj: str,
    severity: Severity = Severity.ERROR,
    hint: Optional[str] = None,
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity,
        location=Location(obj=obj),
        message=message,
        hint=hint,
    )


# --------------------------------------------------------------------------- #
# Superoperator / channel checks (VER130, VER131)
# --------------------------------------------------------------------------- #


def verify_superoperator(
    superoperator: np.ndarray,
    num_qubits: int,
    *,
    name: str = "superoperator",
    atol: float = DEFAULT_ATOL,
) -> List[Diagnostic]:
    """CPTP-check one ``(4**k, 4**k)`` superoperator in the kron layout.

    The layout is the one :func:`~repro.quantum.batched_density.conjugation_superoperator`
    produces (``vec`` row-major, so ``S = sum_k kron(K_k, K_k.conj())``):

    * trace preservation — ``sum_r S[(r, r), (c, c')] == delta(c, c')``,
      i.e. the trace row of the superoperator is the vectorised identity;
    * complete positivity — the Choi matrix ``J[(c, r), (c', r')] =
      S[(r, r'), (c, c')]`` is positive semi-definite within ``atol``.
    """
    out: List[Diagnostic] = []
    matrix = np.asarray(superoperator, dtype=COMPLEX_DTYPE)
    dim = 2 ** int(num_qubits)
    expected = (dim * dim, dim * dim)
    if matrix.ndim != 2 or matrix.shape != expected:
        out.append(
            _diag(
                "VER130",
                f"expected a {expected[0]}x{expected[1]} superoperator for "
                f"{num_qubits} qubit(s), got shape {matrix.shape}",
                obj=name,
            )
        )
        return out
    if not np.all(np.isfinite(matrix.view(float))):
        out.append(_diag("VER130", "superoperator contains non-finite entries", obj=name))
        return out
    tensor = matrix.reshape(dim, dim, dim, dim)  # [r, r', c, c']
    trace_row = np.einsum("rrcd->cd", tensor)
    tp_defect = float(np.max(np.abs(trace_row - np.eye(dim))))
    if tp_defect > atol:
        out.append(
            _diag(
                "VER130",
                f"not trace preserving: trace-row defect {tp_defect:.3e} "
                f"exceeds tolerance {atol:.1e}",
                obj=name,
                hint="channels must satisfy sum_k K_k^dagger K_k = I; check the "
                "Kraus operators (and their composition order) feeding this "
                "superoperator",
            )
        )
    choi = tensor.transpose(2, 0, 3, 1).reshape(dim * dim, dim * dim)
    hermiticity = float(np.max(np.abs(choi - choi.conj().T)))
    if hermiticity > max(atol, 1e-10):
        out.append(
            _diag(
                "VER131",
                f"not completely positive: Choi matrix is non-Hermitian "
                f"(defect {hermiticity:.3e})",
                obj=name,
            )
        )
        return out
    min_eig = float(np.min(np.linalg.eigvalsh(choi)))
    if min_eig < -max(atol, 1e-10):
        out.append(
            _diag(
                "VER131",
                f"not completely positive: Choi matrix has eigenvalue "
                f"{min_eig:.3e} below zero",
                obj=name,
                hint="a map that is not a Kraus-representable channel was "
                "composed into this superoperator",
            )
        )
    return out


def verify_channel(
    kraus_operators: Sequence[np.ndarray],
    *,
    name: str = "channel",
    atol: float = DEFAULT_ATOL,
) -> List[Diagnostic]:
    """CPTP-check a channel given in Kraus form.

    A Kraus-form channel is completely positive by construction, so the
    substantive check is trace preservation (the completeness relation) plus
    shape consistency — every operator square, all of one dimension, and the
    dimension a power of two.
    """
    out: List[Diagnostic] = []
    operators = [np.asarray(k, dtype=COMPLEX_DTYPE) for k in kraus_operators]
    if not operators:
        return [_diag("VER130", "channel has no Kraus operators", obj=name)]
    dim = operators[0].shape[0] if operators[0].ndim == 2 else None
    for index, kraus in enumerate(operators):
        if kraus.ndim != 2 or kraus.shape[0] != kraus.shape[1]:
            out.append(
                _diag(
                    "VER130",
                    f"Kraus operator {index} is not square (shape {kraus.shape})",
                    obj=name,
                )
            )
            return out
        if kraus.shape[0] != dim:
            out.append(
                _diag(
                    "VER130",
                    f"Kraus operator {index} has dimension {kraus.shape[0]}, "
                    f"expected {dim}",
                    obj=name,
                )
            )
            return out
        if not np.all(np.isfinite(kraus.view(float))):
            out.append(
                _diag(
                    "VER130",
                    f"Kraus operator {index} contains non-finite entries",
                    obj=name,
                )
            )
            return out
    if dim < 1 or dim & (dim - 1):
        out.append(
            _diag(
                "VER130",
                f"Kraus dimension {dim} is not a power of two",
                obj=name,
            )
        )
        return out
    total = np.zeros((dim, dim), dtype=COMPLEX_DTYPE)
    for kraus in operators:
        total += kraus.conj().T @ kraus
    defect = float(np.max(np.abs(total - np.eye(dim))))
    if defect > atol:
        out.append(
            _diag(
                "VER130",
                f"not trace preserving: completeness defect {defect:.3e} "
                f"exceeds tolerance {atol:.1e}",
                obj=name,
                hint="sum_k K_k^dagger K_k must equal the identity",
            )
        )
    return out


# --------------------------------------------------------------------------- #
# Tile-plan checks (VER140, VER141)
# --------------------------------------------------------------------------- #


def verify_tile_plan(
    plan: "TilePlan",
    *,
    expected_rows: Optional[int] = None,
    expected_samples: Optional[int] = None,
    element_amplitudes: Optional[int] = None,
) -> List[Diagnostic]:
    """Check that a tile plan exactly partitions the grid it claims to cover.

    The flat tile enumeration must be contiguous, in order, non-overlapping,
    and cover exactly ``rows * samples`` elements — the property the tiled
    executor's "bit-identical to the untiled pass" guarantee rests on.  When
    ``expected_rows``/``expected_samples`` are given the plan's declared grid
    is additionally matched against them (VER140); when
    ``element_amplitudes`` is given, tiles whose working set exceeds the
    plan's declared ``max_amplitudes`` budget are reported (VER141, warning —
    the budget is advisory for the overlap-matmul cost model).
    """
    out: List[Diagnostic] = []
    obj = (
        f"tile plan {plan.rows}x{plan.samples} "
        f"(row_tile={plan.row_tile}, sample_tile={plan.sample_tile})"
    )
    if expected_rows is not None and plan.rows != expected_rows:
        out.append(
            _diag(
                "VER140",
                f"plan declares {plan.rows} row(s) but the sweep has {expected_rows}",
                obj=obj,
            )
        )
    if expected_samples is not None and plan.samples != expected_samples:
        out.append(
            _diag(
                "VER140",
                f"plan declares {plan.samples} sample(s) but the sweep has "
                f"{expected_samples}",
                obj=obj,
            )
        )
    total = plan.rows * plan.samples
    cursor = 0
    for start, stop in plan.flat_tiles():
        if start != cursor:
            kind = "overlaps" if start < cursor else "skips"
            out.append(
                _diag(
                    "VER140",
                    f"tile [{start}, {stop}) {kind} the grid at element "
                    f"{cursor}: tiles must be contiguous in row-major order",
                    obj=obj,
                )
            )
            return out
        if stop <= start:
            out.append(
                _diag("VER140", f"tile [{start}, {stop}) is empty or reversed", obj=obj)
            )
            return out
        if (
            element_amplitudes is not None
            and plan.max_amplitudes is not None
            and (stop - start) * element_amplitudes > plan.max_amplitudes
            and stop - start > 1
        ):
            out.append(
                _diag(
                    "VER141",
                    f"tile [{start}, {stop}) holds "
                    f"{(stop - start) * element_amplitudes} amplitudes, over "
                    f"the declared budget of {plan.max_amplitudes}",
                    obj=obj,
                    severity=Severity.WARNING,
                    hint="derive the plan with TilePlan.for_circuit_sweep so "
                    "tiles respect the amplitude budget",
                )
            )
        cursor = stop
    if cursor != total:
        out.append(
            _diag(
                "VER140",
                f"tiles cover {cursor} element(s) of a {total}-element grid",
                obj=obj,
                hint="every (row, sample) pair must be executed exactly once",
            )
        )
    return out


# --------------------------------------------------------------------------- #
# Circuit checks (VER110, VER150)
# --------------------------------------------------------------------------- #


def verify_circuit(circuit, *, name: Optional[str] = None) -> List[Diagnostic]:
    """Structured deferred-measurement and bounds diagnostics for a circuit.

    Generalises :func:`repro.quantum.program.check_deferred_measurement` —
    which raises on the first violation — into a pass that reports *every*
    violation as a :class:`Diagnostic`: operations or resets on
    already-measured qubits, qubits measured twice, resets (which the
    vectorised sweep engines cannot model), and qubit indices outside the
    register.
    """
    out: List[Diagnostic] = []
    circuit_name = name or getattr(circuit, "name", "circuit")
    num_qubits = circuit.num_qubits
    measured: set = set()
    for position, instruction in enumerate(circuit.instructions):
        if instruction.name == "barrier":
            continue
        obj = f"circuit '{circuit_name}' instruction {position} ({instruction.name})"
        bad_qubits = [q for q in instruction.qubits if not 0 <= q < num_qubits]
        if bad_qubits:
            out.append(
                _diag(
                    "VER110",
                    f"qubit(s) {bad_qubits} outside the {num_qubits}-qubit register",
                    obj=obj,
                )
            )
        if instruction.is_measurement:
            duplicates = measured.intersection(instruction.qubits)
            if duplicates:
                out.append(
                    _diag(
                        "VER150",
                        f"qubit(s) {sorted(duplicates)} measured more than once; "
                        "deferred measurement supports a single measurement per "
                        "qubit",
                        obj=obj,
                        hint="measure each qubit at most once, at the end of the "
                        "circuit",
                    )
                )
            measured.update(instruction.qubits)
            continue
        touched = measured.intersection(instruction.qubits)
        if touched:
            out.append(
                _diag(
                    "VER150",
                    f"instruction '{instruction.name}' acts on already-measured "
                    f"qubit(s) {sorted(touched)}; deferred measurement cannot "
                    "apply operations after a measurement",
                    obj=obj,
                    hint="move the measurement after every operation on the qubit",
                )
            )
        if instruction.name == "reset":
            out.append(
                _diag(
                    "VER150",
                    "reset requires per-element projective randomness the "
                    "vectorised sweep engines do not model",
                    obj=obj,
                    hint="compile-once sweeps cannot contain resets; use the "
                    "per-circuit simulator instead",
                )
            )
    return out


# --------------------------------------------------------------------------- #
# Program checks (VER101-VER121)
# --------------------------------------------------------------------------- #


def _program_structural_diagnostics(program: "SweepProgram") -> List[Diagnostic]:
    """The cheap ``O(steps)`` subset: bounds and IR-consistency checks."""
    out: List[Diagnostic] = []
    prog = f"program '{program.name}'"
    num_qubits = program.num_qubits
    columns_read: set = set()
    for index, step in enumerate(program.steps):
        obj = f"{prog} step {index} ({step.name})"
        bad_qubits = [q for q in step.qubits if not 0 <= q < num_qubits]
        if bad_qubits:
            out.append(
                _diag(
                    "VER110",
                    f"qubit(s) {bad_qubits} outside the {num_qubits}-qubit register",
                    obj=obj,
                )
            )
        if len(set(step.qubits)) != len(step.qubits):
            out.append(
                _diag(
                    "VER110",
                    f"duplicate qubit in tuple {step.qubits}",
                    obj=obj,
                )
            )
        has_column_slot = False
        for slot in step.slots:
            if slot[0] != "column":
                continue
            has_column_slot = True
            column = slot[1]
            columns_read.add(column)
            if not 0 <= column < program.num_columns:
                out.append(
                    _diag(
                        "VER101",
                        f"bind site reads column {column} of a "
                        f"{program.num_columns}-column bindings matrix",
                        obj=obj,
                        hint="bind-site columns are assigned at compile time; a "
                        "hand-built or mutated program lost the column/count "
                        "invariant",
                    )
                )
        if step.is_fixed and has_column_slot:
            out.append(
                _diag(
                    "VER121",
                    "step carries a precomputed matrix but also reads bindings "
                    "columns; the executor would ignore the bindings",
                    obj=obj,
                )
            )
        if not step.is_fixed and not has_column_slot:
            out.append(
                _diag(
                    "VER121",
                    "step has neither a precomputed matrix nor a bindings "
                    "column; the executor cannot build its gate",
                    obj=obj,
                    hint="all-value slots must be compiled into a fixed matrix",
                )
            )
    unread = sorted(set(range(program.num_columns)) - columns_read)
    if unread:
        out.append(
            _diag(
                "VER103",
                f"binding column(s) {unread} are never read by any bind site",
                obj=prog,
                severity=Severity.WARNING,
                hint="sweep callers will populate these columns to no effect; "
                "drop the unused parameters from the ordering",
            )
        )
    # Measurement read-out consistency.
    measured = program.measured_qubits
    bad = [q for q in measured if not 0 <= q < num_qubits]
    if bad:
        out.append(
            _diag(
                "VER111",
                f"measured qubit(s) {bad} outside the {num_qubits}-qubit register",
                obj=prog,
            )
        )
    if len(set(measured)) != len(measured):
        out.append(
            _diag(
                "VER111",
                f"qubit(s) measured more than once in {measured}",
                obj=prog,
            )
        )
    bad_clbits = [c for c in program.clbits if not 0 <= c < program.num_clbits]
    if bad_clbits:
        out.append(
            _diag(
                "VER111",
                f"clbit(s) {bad_clbits} outside the {program.num_clbits}-clbit register",
                obj=prog,
            )
        )
    if len(program.clbits) != len(measured):
        out.append(
            _diag(
                "VER111",
                f"{len(measured)} measured qubit(s) map to {len(program.clbits)} "
                "clbit(s); read-out needs exactly one clbit per measured qubit",
                obj=prog,
            )
        )
    return out


def _program_numeric_diagnostics(
    program: "SweepProgram", atol: float = DEFAULT_ATOL
) -> List[Diagnostic]:
    """The full-level numerical subset: fixed-matrix shapes and unitarity."""
    out: List[Diagnostic] = []
    prog = f"program '{program.name}'"
    for index, step in enumerate(program.steps):
        if not step.is_fixed:
            continue
        obj = f"{prog} step {index} ({step.name})"
        matrix = np.asarray(step.matrix, dtype=COMPLEX_DTYPE)
        dim = 2 ** len(step.qubits)
        if matrix.shape != (dim, dim):
            out.append(
                _diag(
                    "VER120",
                    f"fixed matrix has shape {matrix.shape}, expected "
                    f"({dim}, {dim}) for {len(step.qubits)} qubit(s)",
                    obj=obj,
                )
            )
            continue
        if not np.all(np.isfinite(matrix.view(float))):
            out.append(_diag("VER120", "fixed matrix has non-finite entries", obj=obj))
            continue
        defect = float(np.max(np.abs(matrix @ matrix.conj().T - np.eye(dim))))
        if defect > max(atol, 1e-9):
            out.append(
                _diag(
                    "VER120",
                    f"fixed matrix is not unitary (defect {defect:.3e})",
                    obj=obj,
                    hint="gate matrices must come from the gate library; a "
                    "hand-patched step matrix would silently denormalise every "
                    "sweep state",
                )
            )
    return out


def verify_program(
    program: "SweepProgram",
    *,
    bindings=None,
    tile_plan: Optional["TilePlan"] = None,
    noise_model=None,
    level: str = "full",
    atol: float = DEFAULT_ATOL,
) -> List[Diagnostic]:
    """Verify one compiled program (and optionally its sweep inputs).

    Parameters
    ----------
    program:
        The compiled :class:`~repro.quantum.program.SweepProgram`.
    bindings:
        Optional ``(batch, columns)`` bindings matrix of the sweep about to
        execute; enables the VER102 coverage check of every parametric site.
    tile_plan:
        Optional :class:`~repro.quantum.program.TilePlan`; checked for exact
        grid partition (VER140/VER141) and, when ``bindings`` is also given,
        for matching the sweep's row count.
    noise_model:
        Optional :class:`~repro.quantum.noise.NoiseModel`; at the full level
        every gate's precomposed noise superoperator is CPTP-checked
        (VER130/VER131) exactly as the density engine will compose it.
    level:
        ``"cheap"`` for the always-on structural subset, ``"full"`` (default)
        to add the numerical checks.
    """
    if level not in ("cheap", "full"):
        raise ValueError(f"unknown verification level {level!r}")
    out = _program_structural_diagnostics(program)
    prog = f"program '{program.name}'"
    if bindings is not None:
        matrix = np.asarray(bindings, dtype=float)
        if matrix.ndim != 2:
            out.append(
                _diag(
                    "VER102",
                    f"bindings must be 2-D (batch, columns), got shape {matrix.shape}",
                    obj=prog,
                )
            )
        else:
            width = matrix.shape[1]
            uncovered = sorted(
                {
                    slot[1]
                    for step in program.steps
                    for slot in step.slots
                    if slot[0] == "column" and slot[1] >= width
                }
            )
            if uncovered:
                out.append(
                    _diag(
                        "VER102",
                        f"parametric site column(s) {uncovered} are not covered "
                        f"by the {width}-column bindings matrix",
                        obj=prog,
                        hint="the bindings matrix must supply every compiled "
                        "bind-site column",
                    )
                )
            elif width != program.num_columns:
                out.append(
                    _diag(
                        "VER102",
                        f"bindings have {width} column(s) but the program "
                        f"declares {program.num_columns}",
                        obj=prog,
                    )
                )
    if tile_plan is not None:
        out.extend(
            verify_tile_plan(
                tile_plan, element_amplitudes=2**program.num_qubits
            )
        )
        if bindings is not None and np.asarray(bindings).ndim == 2:
            total = tile_plan.rows * tile_plan.samples
            rows = np.asarray(bindings).shape[0]
            if total != rows:
                out.append(
                    _diag(
                        "VER140",
                        f"tile plan covers {total} grid element(s) but the "
                        f"bindings have {rows} row(s)",
                        obj=prog,
                    )
                )
    if level == "full":
        out.extend(_program_numeric_diagnostics(program, atol))
        if noise_model is not None:
            from repro.quantum.program import gate_noise_superoperator

            seen: set = set()
            for index, step in enumerate(program.steps):
                key = (step.name, len(step.qubits))
                if key in seen:
                    continue
                seen.add(key)
                try:
                    superop = gate_noise_superoperator(
                        step.name, step.qubits, noise_model
                    )
                except SimulationError as exc:
                    out.append(
                        _diag(
                            "VER130",
                            f"noise precomposition failed: {exc}",
                            obj=f"{prog} step {index} ({step.name})",
                        )
                    )
                    continue
                if superop is None:
                    continue
                out.extend(
                    verify_superoperator(
                        superop,
                        len(step.qubits),
                        name=(
                            f"{prog} step {index} ({step.name}) precomposed "
                            "noise superoperator"
                        ),
                        atol=atol,
                    )
                )
    return out


# --------------------------------------------------------------------------- #
# Compile-time and execution-time hooks
# --------------------------------------------------------------------------- #


def assert_clean(
    diagnostics: Iterable[Diagnostic], *, context: str, error_cls=SimulationError
) -> None:
    """Raise ``error_cls`` listing every error-severity finding, if any."""
    failed = errors(diagnostics)
    if failed:
        details = "\n".join(f"  {d.format()}" for d in failed)
        raise error_cls(
            f"{context}: static verification found {len(failed)} error(s):\n{details}"
        )


def verify_compilation(program: "SweepProgram") -> None:
    """The :meth:`SweepProgram.compile` hook.

    Runs the cheap structural subset on every compile (compiles are cached
    per structure, so this is one linear walk per structure) and the full
    numerical level when ``REPRO_VERIFY=1``; error findings abort the
    compile with :class:`~repro.exceptions.SimulationError` — a plan-time
    bug surfaces here instead of as NaNs three layers down.
    """
    level = "full" if full_verification_enabled() else "cheap"
    assert_clean(
        verify_program(program, level=level),
        context=f"compiling '{program.name}'",
    )


def verify_step_plan_superoperators(program: "SweepProgram", plans) -> None:
    """The :meth:`DensitySuperoperatorEngine.step_plans` hook (full level only).

    Checks every precomposed per-step superoperator — the folded
    unitary+noise matrix of fixed steps and the noise-only precomposition of
    parametric sites — for CPTP before the engine ever contracts with it.
    """
    if not full_verification_enabled():
        return
    out: List[Diagnostic] = []
    prog = f"program '{program.name}'"
    for index, (step, plan) in enumerate(zip(program.steps, plans)):
        kind, superop = plan
        if superop is None:
            continue
        out.extend(
            verify_superoperator(
                superop,
                len(step.qubits),
                name=f"{prog} step {index} ({step.name}) {kind} superoperator plan",
            )
        )
    assert_clean(out, context=f"planning noise superoperators for '{program.name}'")


# --------------------------------------------------------------------------- #
# Figure-suite reference programs
# --------------------------------------------------------------------------- #


def verify_reference_suite() -> List[Diagnostic]:
    """Compile and fully verify the figure suite's representative programs.

    Builds the QuClassi discriminator circuits behind the paper figures
    (Iris QC-S/QC-D/QC-E at 4 features, the binary-MNIST QC-S at 8) and
    verifies, at the full level, every program the stack compiles from them:
    the builder's symbolic trained-state program, the bound-sweep program of
    a data-bound discriminator, and the transpile template's program with
    the simulated IBM-Q London noise model attached.  Used by the CLI's
    ``--verify`` pass and the clean-suite property test.
    """
    from repro.core.model import QuClassi
    from repro.hardware.calibration import get_calibration
    from repro.quantum.program import SweepProgram
    from repro.quantum.transpiler import TranspileCache
    from repro.utils.rng import ensure_rng

    out: List[Diagnostic] = []
    noise = get_calibration("ibmq_london").noise_model()
    rng = ensure_rng(2022)
    workloads = [
        ("iris", 4, "s"),
        ("iris", 4, "d"),
        ("iris", 4, "e"),
        ("mnist", 8, "s"),
    ]
    for dataset, num_features, architecture in workloads:
        builder = QuClassi(
            num_features=num_features,
            num_classes=2,
            architecture=architecture,
            seed=2022,
        ).builder
        values = rng.uniform(0.0, np.pi, size=len(builder.parameters))
        features = rng.uniform(0.05, 1.0, size=num_features)
        # Symbolic trained-state program (the analytic estimator's compile).
        symbolic = SweepProgram.compile(
            builder.trained_state_circuit(None),
            bind_floats=False,
            parameters=builder.parameters,
            name=f"{dataset}-{architecture}:trained_state",
        )
        out.extend(verify_program(symbolic, noise_model=noise))
        # Bound sweep program of one data-bound discriminator (run_batch path).
        bound_circuit = builder.build(features, values)
        bound = SweepProgram.compile(
            bound_circuit,
            bind_floats=True,
            name=f"{dataset}-{architecture}:discriminator",
        )
        out.extend(
            verify_program(
                bound,
                bindings=np.asarray([bound.binding_row(bound_circuit)]),
                noise_model=noise,
            )
        )
        out.extend(verify_circuit(bound_circuit))
        # Transpile-template program (the noisy-backend sweep path).
        cache = TranspileCache()
        entry, _ = cache.template(bound_circuit)
        out.extend(verify_program(entry.ensure_program(), noise_model=noise))
    return out
