"""The cross-module flow analyzers: REP101–REP104.

All four ride on the same :class:`~repro.analysis.flow.graph.Project` /
:class:`~repro.analysis.flow.graph.CallGraph` pair and report through the
shared :class:`~repro.analysis.diagnostics.Diagnostic` record:

====== =====================================================================
code   contract
====== =====================================================================
REP101 shard-reachable code never mutates shared state (attribute
       read-modify-writes, ``global`` writes, module-level container
       stores) outside a ``with <lock>:`` region or a class annotated
       ``__thread_safe__ = True`` (``repro.utils.cache.LRUCache``)
REP102 one ``numpy.random.Generator`` never flows into more than one shard
       submission — per-shard streams come from ``SeedSequence.spawn``
       (``spawn_rngs``/``spawn_seed_sequences``)
REP103 payload classes (``*Spec``, ``Shard``/``ShardPlan``) stay
       *transitively* picklable: no field path reaches a threading
       primitive or a live backend/simulator/estimator/executor type
REP104 raw engine buffers (``BatchedStatevector._amplitudes``,
       ``BatchedDensityMatrix._matrices``) never escape into cached values
       without a ``.copy()``
====== =====================================================================

REP101 findings are *worker-shared-state candidates*: the analyzer cannot
see object lifetimes, so writes to objects that are provably worker-local
(built inside the shard body) are skipped, and remaining false positives are
suppressed with justified ``# repro: noqa`` comments at the write site.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.flow.dataflow import (
    ENGINE_BUFFER_ATTRIBUTES,
    RNG_ATTRIBUTES,
    SPAWN_SINKS,
    FunctionFacts,
    _is_buffer_read,
    function_facts,
    render,
)
from repro.analysis.flow.entrypoints import EntryPoint, find_entry_points
from repro.analysis.flow.graph import CallGraph, FunctionInfo, Project

#: The flow-analyzer rule catalogue (code -> one-line description).
FLOW_CODES = {
    "REP101": (
        "shard-reachable write to shared mutable state without a lock "
        "(race under the thread strategy)"
    ),
    "REP102": (
        "one numpy Generator flows into multiple shard submissions instead "
        "of per-shard SeedSequence.spawn streams"
    ),
    "REP103": (
        "shard payload class reaches an unpicklable field (threading "
        "primitive or live backend/simulator/estimator/executor)"
    ),
    "REP104": (
        "raw engine buffer escapes into a cached value without .copy()"
    ),
}

_LIVE_OBJECT_SUFFIXES = ("Backend", "Simulator", "Estimator", "Executor")
_THREADING_FIELD_TYPES = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event",
    "Thread",
}
_PAYLOAD_ROOT_NAMES = {"Shard", "ShardPlan"}


def _diag(
    code: str,
    message: str,
    *,
    file: str,
    line: int,
    column: int = 1,
    obj: Optional[str] = None,
    hint: Optional[str] = None,
    severity: Severity = Severity.ERROR,
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity,
        location=Location(file=file, line=line, column=column, obj=obj),
        message=message,
        hint=hint,
    )


def _node_diag(
    code: str,
    message: str,
    function: FunctionInfo,
    node: ast.AST,
    hint: Optional[str] = None,
) -> Diagnostic:
    return _diag(
        code,
        message,
        file=function.module.path,
        line=getattr(node, "lineno", function.line),
        column=getattr(node, "col_offset", 0) + 1,
        obj=function.qualname,
        hint=hint,
    )


def _class_is_thread_safe(project: Project, function: FunctionInfo) -> bool:
    if function.class_name is None:
        return False
    module_name = function.module.name
    qualname = (
        f"{module_name}.{function.class_name}" if module_name else function.class_name
    )
    info = project.classes.get(qualname)
    return bool(info is not None and info.thread_safe)


# --------------------------------------------------------------------------- #
# REP101 — shard-reachable shared-state writes
# --------------------------------------------------------------------------- #


def check_shared_state(
    project: Project,
    graph: CallGraph,
    entry_points: Sequence[EntryPoint],
    facts_of: Dict[str, FunctionFacts],
) -> List[Diagnostic]:
    """REP101: unlocked writes to shared mutable state in shard-reachable code."""
    out: List[Diagnostic] = []
    reachable = graph.reachable(ep.qualname for ep in entry_points)
    for qualname in sorted(reachable):
        function = project.functions[qualname]
        if _class_is_thread_safe(project, function):
            continue
        facts = facts_of[qualname]
        for write in facts.shared_writes:
            if write.lock_guarded:
                continue
            out.append(
                _node_diag(
                    "REP101",
                    f"'{write.target}' is written from shard-reachable code "
                    f"({qualname}) without a lock — a race under the thread "
                    "strategy",
                    function,
                    write.node,
                    hint=(
                        "guard the read-modify-write with threading.Lock, route "
                        "the state through repro.utils.cache.LRUCache "
                        "(__thread_safe__), or suppress with a justified noqa "
                        "if the object is provably worker-local"
                    ),
                )
            )
    return out


# --------------------------------------------------------------------------- #
# REP102 — shared Generator across shard submissions
# --------------------------------------------------------------------------- #


def _loop_target_names(target: ast.AST) -> Set[str]:
    return {
        node.id for node in ast.walk(target) if isinstance(node, ast.Name)
    }


def _names_in(node: ast.AST) -> Set[str]:
    return {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}


def _rng_valued(node: ast.AST, facts: FunctionFacts) -> bool:
    if isinstance(node, ast.Name):
        return node.id in facts.rng_names
    if isinstance(node, ast.Attribute):
        return node.attr in RNG_ATTRIBUTES
    return False


def _contains_fanout_call(function: FunctionInfo, project: Project) -> bool:
    from repro.analysis.flow.entrypoints import _is_fanout_call

    for node in ast.walk(function.node):
        if isinstance(node, ast.Call) and _is_fanout_call(
            node, project, function.module
        ):
            return True
    return False


def _flag_rng_args_in_loops(
    function: FunctionInfo, facts: FunctionFacts, out: List[Diagnostic]
) -> None:
    """Flag loop-invariant generator expressions used while building payloads."""

    def scan_body(body: Iterable[ast.AST], loop_names: Set[str]) -> None:
        for statement in body:
            for node in ast.walk(statement):
                if not isinstance(node, ast.Call):
                    continue
                call_name = None
                if isinstance(node.func, ast.Name):
                    call_name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    call_name = node.func.attr
                if call_name in SPAWN_SINKS:
                    continue  # spawning from a parent stream is the fix
                arguments = list(node.args) + [kw.value for kw in node.keywords]
                for argument in arguments:
                    if not _rng_valued(argument, facts):
                        continue
                    if _names_in(argument) & loop_names:
                        continue  # derived from the loop index: per-shard
                    out.append(
                        _node_diag(
                            "REP102",
                            f"generator '{render(argument)}' is loop-invariant "
                            "but flows into per-shard payloads — every shard "
                            "would share one stream, making results depend on "
                            "execution order",
                            function,
                            argument,
                            hint=(
                                "spawn per-shard streams first: "
                                "rngs = spawn_rngs(parent, n); pass "
                                "rngs[index] inside the loop"
                            ),
                        )
                    )

    for node in ast.walk(function.node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            scan_body(node.body, _loop_target_names(node.target))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            loop_names: Set[str] = set()
            for generator in node.generators:
                loop_names |= _loop_target_names(generator.target)
            scan_body([node.elt], loop_names)


def _flag_rng_across_submissions(
    function: FunctionInfo,
    facts: FunctionFacts,
    project: Project,
    out: List[Diagnostic],
) -> None:
    """Flag the same generator name passed to two or more ``.submit`` calls."""
    from repro.analysis.flow.entrypoints import _is_fanout_call

    submissions: Dict[str, List[ast.AST]] = {}
    for node in ast.walk(function.node):
        if not isinstance(node, ast.Call):
            continue
        if not _is_fanout_call(node, project, function.module):
            continue
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        for argument in arguments:
            if _rng_valued(argument, facts):
                submissions.setdefault(render(argument), []).append(argument)
    for name, nodes in submissions.items():
        if len(nodes) < 2:
            continue
        for node in nodes[1:]:
            out.append(
                _node_diag(
                    "REP102",
                    f"generator '{name}' flows into more than one shard "
                    "submission — shards would share one stream",
                    function,
                    node,
                    hint="spawn one child stream per submission with "
                    "spawn_rngs/spawn_seed_sequences",
                )
            )


def check_seed_aliasing(
    project: Project, facts_of: Dict[str, FunctionFacts]
) -> List[Diagnostic]:
    """REP102: one Generator object flowing into multiple shard submissions."""
    out: List[Diagnostic] = []
    for qualname in sorted(project.functions):
        function = project.functions[qualname]
        if not _contains_fanout_call(function, project):
            continue
        facts = facts_of[qualname]
        _flag_rng_args_in_loops(function, facts, out)
        _flag_rng_across_submissions(function, facts, project, out)
    return out


# --------------------------------------------------------------------------- #
# REP103 — transitive payload picklability
# --------------------------------------------------------------------------- #


def _payload_roots(project: Project) -> List:
    roots = []
    for info in project.classes.values():
        if info.name.endswith("Spec") or info.name in _PAYLOAD_ROOT_NAMES:
            roots.append(info)
    return sorted(roots, key=lambda info: (info.module.path, info.node.lineno))


def _field_problem(type_name: str, project: Project) -> Optional[str]:
    """A terminal unpicklability reason for one annotation type name."""
    if type_name in _THREADING_FIELD_TYPES:
        return f"threading primitive '{type_name}'"
    if type_name.endswith("Spec"):
        return None  # sibling specs are picklable by the same contract
    for suffix in _LIVE_OBJECT_SUFFIXES:
        if type_name.endswith(suffix):
            return f"live-object type '{type_name}' (suffix {suffix!r})"
    return None


def check_payload_picklability(project: Project) -> List[Diagnostic]:
    """REP103: BFS from payload classes over field annotations."""
    out: List[Diagnostic] = []
    for root in _payload_roots(project):
        stack: List[Tuple[object, Tuple[str, ...]]] = [(root, ())]
        visited: Set[str] = set()
        while stack:
            info, path = stack.pop()
            if info.qualname in visited:
                continue
            visited.add(info.qualname)
            if info is not root and info.defines_getstate:
                # The class controls its own pickling (drops/recreates the
                # offending fields) — its internals are its own business.
                continue
            for field, (type_names, line) in sorted(info.field_types.items()):
                field_path = path + (f"{info.name}.{field}",)
                for type_name in type_names:
                    problem = _field_problem(type_name, project)
                    if problem is not None:
                        out.append(
                            _diag(
                                "REP103",
                                f"payload class {root.name} reaches {problem} "
                                f"via {' -> '.join(field_path)} — unpicklable "
                                "under the process strategy",
                                file=info.module.path,
                                line=line,
                                obj=root.qualname,
                                hint="carry a picklable spec/factory instead "
                                "of the live object; rebuild it worker-side",
                            )
                        )
                        continue
                    for child in project.classes_by_name.get(type_name, []):
                        if (
                            child.holds_threading_primitive
                            and not child.defines_getstate
                        ):
                            out.append(
                                _diag(
                                    "REP103",
                                    f"payload class {root.name} reaches "
                                    f"{child.name} via "
                                    f"{' -> '.join(field_path)}, which stores "
                                    "a threading primitive in __init__ without "
                                    "__getstate__ — unpicklable under the "
                                    "process strategy",
                                    file=info.module.path,
                                    line=line,
                                    obj=root.qualname,
                                    hint=f"give {child.name} __getstate__/"
                                    "__setstate__ that drop and recreate the "
                                    "lock (see repro.utils.cache.LRUCache)",
                                )
                            )
                        elif child.qualname not in visited:
                            stack.append((child, field_path))
    return out


# --------------------------------------------------------------------------- #
# REP104 — engine buffers escaping into caches
# --------------------------------------------------------------------------- #


def _buffer_tainted(node: ast.AST, facts: FunctionFacts) -> bool:
    if _is_buffer_read(node):
        return True
    return isinstance(node, ast.Name) and node.id in facts.buffer_names


def check_buffer_escape(
    project: Project, facts_of: Dict[str, FunctionFacts]
) -> List[Diagnostic]:
    """REP104: raw ``_amplitudes``/``_matrices`` stored into cached values."""
    out: List[Diagnostic] = []
    for qualname in sorted(project.functions):
        function = project.functions[qualname]
        facts = facts_of[qualname]
        for node in ast.walk(function.node):
            value: Optional[ast.AST] = None
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "put"
                and len(node.args) >= 2
            ):
                value = node.args[1]
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, (ast.Name, ast.Attribute))
                ):
                    base = target.value
                    base_name = (
                        base.id if isinstance(base, ast.Name) else base.attr
                    )
                    if "cache" in base_name.lower() or "memo" in base_name.lower():
                        value = node.value
            if value is not None and _buffer_tainted(value, facts):
                out.append(
                    _node_diag(
                        "REP104",
                        f"raw engine buffer '{render(value)}' escapes into a "
                        "cached value — the cache entry aliases mutable engine "
                        "state and corrupts on the next sweep",
                        function,
                        value,
                        hint="store a .copy() (the engines' public "
                        ".amplitudes/.matrices properties already copy)",
                    )
                )
    return out


# --------------------------------------------------------------------------- #
# Orchestration
# --------------------------------------------------------------------------- #


def run_flow_analyzers(
    project: Project, codes: Optional[Sequence[str]] = None
) -> Tuple[List[Diagnostic], List[EntryPoint]]:
    """Run the selected flow analyzers over one project.

    Returns ``(diagnostics, entry_points)``; ``codes=None`` runs all four.
    """
    wanted = set(codes) if codes is not None else set(FLOW_CODES)
    facts_of = {
        qualname: function_facts(
            function.node, function.module.mutable_globals
        )
        for qualname, function in project.functions.items()
    }
    entry_points = find_entry_points(project)
    out: List[Diagnostic] = []
    if "REP101" in wanted:
        graph = CallGraph.build(project)
        out.extend(check_shared_state(project, graph, entry_points, facts_of))
    if "REP102" in wanted:
        out.extend(check_seed_aliasing(project, facts_of))
    if "REP103" in wanted:
        out.extend(check_payload_picklability(project))
    if "REP104" in wanted:
        out.extend(check_buffer_escape(project, facts_of))
    # Nested loops and overlapping walks can visit one site twice; a finding
    # is identified by (code, anchor, message).
    unique: Dict[tuple, Diagnostic] = {}
    for diagnostic in out:
        key = (
            diagnostic.code,
            diagnostic.location.file,
            diagnostic.location.line,
            diagnostic.location.column,
            diagnostic.message,
        )
        unique.setdefault(key, diagnostic)
    return list(unique.values()), entry_points
