"""Cross-module flow analysis: call graph + dataflow behind REP101–REP104.

The third pass family of :mod:`repro.analysis` (after the per-file AST
linter and the IR verifier).  Where the linter judges one file at a time,
the flow pass builds a whole-program view — which callables cross the
:class:`~repro.parallel.ShardExecutor` fan-out boundary, and what they can
reach — and checks the concurrency/determinism contracts that only exist
*between* modules:

* :func:`~repro.analysis.flow.analyzers.check_shared_state` — REP101, the
  race detector over shard-reachable writes;
* :func:`~repro.analysis.flow.analyzers.check_seed_aliasing` — REP102, one
  Generator flowing into many shard submissions (the defect class of the
  PR 4 trainer bug, caught statically);
* :func:`~repro.analysis.flow.analyzers.check_payload_picklability` —
  REP103, graph-based transitive picklability of shard payload classes;
* :func:`~repro.analysis.flow.analyzers.check_buffer_escape` — REP104,
  raw engine buffers escaping into cached values.

The engine modules are reusable on their own: :mod:`.graph` (project model,
call graph, reachability), :mod:`.entrypoints` (shard entry-point
detection), :mod:`.dataflow` (per-function facts).  Later rules build on
the same three primitives.

Findings honour the linter's ``# repro: noqa CODE -- why`` suppressions at
the flagged line, with the same required-justification contract.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, sort_diagnostics
from repro.analysis.flow.analyzers import (
    FLOW_CODES,
    check_buffer_escape,
    check_payload_picklability,
    check_seed_aliasing,
    check_shared_state,
    run_flow_analyzers,
)
from repro.analysis.flow.entrypoints import EntryPoint, find_entry_points
from repro.analysis.flow.graph import CallGraph, Project
from repro.analysis.lint import (
    apply_suppressions,
    iter_python_files,
    justified_suppression_index,
    merge_suppression_counts,
    normalize_path,
)

__all__ = [
    "FLOW_CODES",
    "FlowResult",
    "CallGraph",
    "EntryPoint",
    "Project",
    "analyze_paths",
    "analyze_sources",
    "check_buffer_escape",
    "check_payload_picklability",
    "check_seed_aliasing",
    "check_shared_state",
    "find_entry_points",
    "run_flow_analyzers",
]


@dataclasses.dataclass
class FlowResult:
    """Outcome of one flow-analysis run."""

    diagnostics: List[Diagnostic]
    files_checked: int
    suppressed: int
    suppressed_by_code: Dict[str, int]
    entry_points: List[EntryPoint]


def analyze_sources(
    sources: Sequence[Tuple[str, str]], codes: Optional[Sequence[str]] = None
) -> FlowResult:
    """Run the flow analyzers over ``(normalised_path, source)`` pairs."""
    project = Project.from_sources(sources)
    diagnostics, entry_points = run_flow_analyzers(project, codes)
    suppression_index_by_file = {
        path: justified_suppression_index(source) for path, source in sources
    }
    kept: List[Diagnostic] = []
    suppressed_by_code: Dict[str, int] = {}
    by_file: Dict[str, List[Diagnostic]] = {}
    for diagnostic in diagnostics:
        by_file.setdefault(diagnostic.location.file or "", []).append(diagnostic)
    for path, file_diagnostics in by_file.items():
        survivors, counts = apply_suppressions(
            file_diagnostics, suppression_index_by_file.get(path, {})
        )
        kept.extend(survivors)
        merge_suppression_counts(suppressed_by_code, counts)
    return FlowResult(
        diagnostics=sort_diagnostics(kept),
        files_checked=len(sources),
        suppressed=sum(suppressed_by_code.values()),
        suppressed_by_code=suppressed_by_code,
        entry_points=entry_points,
    )


def analyze_paths(
    paths: Sequence[str],
    codes: Optional[Sequence[str]] = None,
    *,
    root: Optional[str] = None,
) -> FlowResult:
    """Run the flow analyzers over every Python file under ``paths``."""
    sources: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            sources.append((normalize_path(path, root), handle.read()))
    return analyze_sources(sources, codes)
