"""Intraprocedural dataflow facts consumed by the flow analyzers.

One walk per function collects everything REP101/REP102/REP104 need:

* **shared-state writes** — augmented assignments to attributes
  (``self.hits += 1``), writes to ``global``-declared names, and
  augmented/subscript stores to module-level mutable containers — each
  tagged with whether it happens inside a ``with <lock>:`` region;
* **rng values** — local names bound to generator constructions
  (``ensure_rng``/``default_rng``), generator-annotated parameters, and
  ``*.rng`` attribute reads;
* **local objects** — names assigned from constructor-style calls inside
  the function (capitalised call targets), which a race detector must not
  flag: an object built inside the shard body is worker-local by
  construction.

The walk is syntactic and flow-insensitive within a function (no path
conditions), which is exactly the precision the REP1xx contracts need:
lock discipline in this codebase is lexical (``with self._lock:``), and
worker-local state is recognisable from the construction site.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import List, Optional, Set, Tuple

#: Names of sanctioned per-shard stream constructors: a generator passed
#: *into* one of these is being split, not shared (the REP102 fix pattern).
SPAWN_SINKS = frozenset({"spawn_rngs", "spawn_seed_sequences"})

#: Call names that produce a ``numpy.random.Generator``-like value.
RNG_CONSTRUCTORS = frozenset({"ensure_rng", "default_rng"})

#: Attribute names treated as generator-valued reads (``self.rng``, ...).
RNG_ATTRIBUTES = frozenset({"rng", "_rng", "random_state"})


def _expression_mentions_lock(node: ast.AST) -> bool:
    """Whether a ``with`` context expression names a lock (``*lock*``)."""
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and "lock" in name.lower():
            return True
    return False


def render(node: ast.AST) -> str:
    """Source rendering of an expression for messages (best effort)."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failures are cosmetic
        return "<expression>"


@dataclasses.dataclass(frozen=True)
class SharedWrite:
    """One potentially shared mutation found in a function body."""

    node: ast.AST
    target: str  #: rendered write target, e.g. ``self.hits``
    kind: str  #: ``attribute`` | ``global`` | ``module_global``
    lock_guarded: bool


@dataclasses.dataclass
class FunctionFacts:
    """Everything the analyzers need to know about one function body."""

    shared_writes: List[SharedWrite] = dataclasses.field(default_factory=list)
    rng_names: Set[str] = dataclasses.field(default_factory=set)
    #: names bound from sanctioned per-index spawns (``spawn_rngs(...)``)
    spawned_names: Set[str] = dataclasses.field(default_factory=set)
    #: names assigned from constructor-style calls — worker-local objects
    local_objects: Set[str] = dataclasses.field(default_factory=set)
    #: names assigned from engine-buffer attribute reads (REP104 taint)
    buffer_names: Set[str] = dataclasses.field(default_factory=set)
    global_names: Set[str] = dataclasses.field(default_factory=set)
    assigned_names: Set[str] = dataclasses.field(default_factory=set)


#: Private engine-buffer attributes whose escape REP104 tracks.
ENGINE_BUFFER_ATTRIBUTES = frozenset({"_amplitudes", "_matrices"})


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _is_buffer_read(node: ast.AST) -> bool:
    """Whether an expression reads a raw engine buffer without copying."""
    if isinstance(node, ast.Attribute) and node.attr in ENGINE_BUFFER_ATTRIBUTES:
        return True
    if isinstance(node, ast.Subscript):
        return _is_buffer_read(node.value)
    return False


class _FactsCollector(ast.NodeVisitor):
    def __init__(self, module_mutable_globals: Set[str]) -> None:
        self.facts = FunctionFacts()
        self.module_mutable_globals = module_mutable_globals
        self._lock_depth = 0

    # -- lock regions ---------------------------------------------------- #
    def visit_With(self, node: ast.With) -> None:
        guarded = any(
            _expression_mentions_lock(item.context_expr) for item in node.items
        )
        if guarded:
            self._lock_depth += 1
        self.generic_visit(node)
        if guarded:
            self._lock_depth -= 1

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    # -- declarations ---------------------------------------------------- #
    def visit_Global(self, node: ast.Global) -> None:
        self.facts.global_names.update(node.names)

    def _record_value_binding(self, name: str, value: ast.AST) -> None:
        self.facts.assigned_names.add(name)
        if isinstance(value, ast.Call):
            call_name = _call_name(value)
            if call_name in RNG_CONSTRUCTORS:
                self.facts.rng_names.add(name)
                return
            if call_name in SPAWN_SINKS:
                self.facts.spawned_names.add(name)
                return
            if call_name is not None and call_name[:1].isupper():
                self.facts.local_objects.add(name)
                return
        if isinstance(value, ast.Attribute) and value.attr in RNG_ATTRIBUTES:
            self.facts.rng_names.add(name)
        if _is_buffer_read(value):
            self.facts.buffer_names.add(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._record_value_binding(target.id, node.value)
            elif isinstance(target, ast.Subscript):
                self._check_subscript_store(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            self._record_value_binding(node.target.id, node.value)
        self.generic_visit(node)

    # -- shared-state writes --------------------------------------------- #
    def _add_write(self, node: ast.AST, target: str, kind: str) -> None:
        self.facts.shared_writes.append(
            SharedWrite(
                node=node,
                target=target,
                kind=kind,
                lock_guarded=self._lock_depth > 0,
            )
        )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Attribute):
            base = target.value
            base_name = base.id if isinstance(base, ast.Name) else None
            if base_name is None or base_name not in self.facts.local_objects:
                self._add_write(node, render(target), "attribute")
        elif isinstance(target, ast.Name):
            if target.id in self.facts.global_names:
                self._add_write(node, target.id, "global")
            elif (
                target.id in self.module_mutable_globals
                and target.id not in self.facts.assigned_names
            ):
                self._add_write(node, target.id, "module_global")
        elif isinstance(target, ast.Subscript):
            self._check_subscript_store(target, node)
        self.generic_visit(node)

    def _check_subscript_store(self, target: ast.Subscript, node: ast.AST) -> None:
        base = target.value
        if not isinstance(base, ast.Name):
            return
        if base.id in self.facts.global_names:
            self._add_write(node, render(target), "global")
        elif (
            base.id in self.module_mutable_globals
            and base.id not in self.facts.assigned_names
            and base.id not in self.facts.local_objects
        ):
            self._add_write(node, render(target), "module_global")


def function_facts(node: ast.AST, module_mutable_globals: Set[str]) -> FunctionFacts:
    """Collect :class:`FunctionFacts` for one function body."""
    collector = _FactsCollector(set(module_mutable_globals))
    arguments = getattr(node, "args", None)
    if arguments is not None:
        every_arg = (
            list(arguments.posonlyargs)
            + list(arguments.args)
            + list(arguments.kwonlyargs)
        )
        for arg in every_arg:
            collector.facts.assigned_names.add(arg.arg)
            names = [
                sub.attr if isinstance(sub, ast.Attribute) else getattr(sub, "id", "")
                for sub in ast.walk(arg.annotation)
            ] if arg.annotation is not None else []
            if "Generator" in names or arg.arg in RNG_ATTRIBUTES:
                collector.facts.rng_names.add(arg.arg)
    for statement in getattr(node, "body", []):
        collector.visit(statement)
    return collector.facts
