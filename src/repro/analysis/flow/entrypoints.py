"""Shard entry-point detection: which callables cross the fan-out boundary.

A *shard entry point* is a function that executes on a worker — the first
argument of a fan-out call.  Everything such a function can reach (per the
:class:`~repro.analysis.flow.graph.CallGraph`) runs concurrently under the
``thread`` strategy and in a separate interpreter under ``process``, which
is the region the REP101/REP104 analyzers patrol.

Recognised fan-out shapes, matching the stack's real submission seams:

* ``<obj>.map(fn, ...)`` — :meth:`repro.parallel.ShardExecutor.map`
  (``Trainer._fit_sharded`` submits ``_run_class_shard`` this way, and
  ``experiments.harness.run_cells`` submits ``_run_sweep_cell``);
* ``<obj>.submit(fn, ...)`` — raw executor submission;
* ``run_cells(cell_fn, ...)`` — the harness helper: the cell function runs
  on workers via the ``_run_sweep_cell`` trampoline, so the *cell function
  itself* is the entry point.

The first argument must statically resolve to a project function (a bare
name or a ``module.func`` attribute).  Lambdas and parameter-valued
callables are invisible here — a documented precision limit (see the
caveats section of ``docs/static_analysis.md``).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import List

from repro.analysis.flow.graph import FunctionInfo, Project

#: Attribute names that submit their first argument to a worker pool.
FANOUT_METHODS = frozenset({"map", "submit"})

#: Bare-name helpers whose first argument runs on workers.
FANOUT_HELPERS = frozenset({"run_cells"})


@dataclasses.dataclass(frozen=True)
class EntryPoint:
    """One callable that crosses the shard boundary."""

    qualname: str  #: the worker-side function
    submitted_at: str  #: qualname of the function containing the fan-out call
    file: str
    line: int
    reason: str  #: the recognised fan-out shape, e.g. ``executor.map``


def _fanout_reason(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        base = func.value
        base_name = base.id if isinstance(base, ast.Name) else "<expr>"
        return f"{base_name}.{func.attr}"
    if isinstance(func, ast.Name):
        return func.id
    return "<call>"


def _is_fanout_call(call: ast.Call, project: Project, module) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in FANOUT_METHODS:
        # ``.map``/``.submit`` on anything — the first-argument resolution
        # below filters out builtins like ``concurrent.futures`` internals
        # whose submitted callables are parameters, not project functions.
        return True
    if isinstance(func, ast.Name):
        if func.id in FANOUT_HELPERS:
            return True
        # ``from repro.experiments.harness import run_cells as rc``
        target = module.import_from.get(func.id, "")
        return target.rsplit(".", 1)[-1] in FANOUT_HELPERS
    return False


def find_entry_points(project: Project) -> List[EntryPoint]:
    """Every statically visible shard entry point in the project."""
    out: List[EntryPoint] = []
    seen = set()
    for function in project.functions.values():
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if not _is_fanout_call(node, project, function.module):
                continue
            for qualname in project.resolve_function_reference(
                function.module, node.args[0]
            ):
                key = (qualname, function.qualname, node.lineno)
                if key in seen:
                    continue
                seen.add(key)
                out.append(
                    EntryPoint(
                        qualname=qualname,
                        submitted_at=function.qualname,
                        file=function.module.path,
                        line=node.lineno,
                        reason=_fanout_reason(node),
                    )
                )
    return sorted(out, key=lambda e: (e.file, e.line, e.qualname))
