"""Project model and call graph of the flow analyzers.

The flow pass needs a *whole-program* view that the per-file linter rules do
not have: which functions exist, which module each lives in, and which
functions a given function can call.  :class:`Project` parses every file once
(AST only — nothing is imported or executed) and indexes top-level functions,
classes, and methods by qualified name; :class:`CallGraph` resolves call
sites with a deliberately cheap strategy:

* bare names resolve through module-local definitions and ``from``-import
  aliases;
* ``module.func(...)`` resolves through ``import``-as aliases;
* ``self.method(...)`` prefers a method of the enclosing class;
* any other ``obj.method(...)`` falls back to **every** project function or
  method of that name (class-hierarchy-analysis style), except for a
  denylist of ubiquitous container/ndarray method names whose fan-out would
  drown the graph.

The resolution is an *over*-approximation by construction — the analyzers
built on top (REP101–REP104) may reach more code than any concrete run, and
false positives are handled with justified ``# repro: noqa`` suppressions —
but it is never an under-approximation for the attribute-call patterns the
sharded stack actually uses (``executor.map``, ``estimator.fidelity_matrix``,
``backend.run_batch``, ...), which is what makes the race findings
trustworthy.  See ``docs/static_analysis.md`` for what the detector does and
does not prove.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Attribute/method names never fanned out on: ubiquitous container, string,
#: ndarray, and executor-internal methods whose global resolution would link
#: every function to every other.  Project methods sharing one of these
#: names are reached through their other (resolvable) callers instead.
ATTRIBUTE_FANOUT_SKIP = frozenset(
    {
        # containers / builtins
        "append", "extend", "insert", "remove", "pop", "popitem", "setdefault",
        "update", "keys", "values", "items", "copy", "sort", "reverse",
        "count", "index", "add", "discard", "union", "intersection",
        # strings
        "join", "split", "rsplit", "strip", "lstrip", "rstrip", "format",
        "startswith", "endswith", "lower", "upper", "replace", "encode",
        "decode", "title", "capitalize",
        # ndarray / numpy scalars
        "reshape", "astype", "flatten", "ravel", "tolist", "item", "mean",
        "sum", "dot", "std", "var", "squeeze", "transpose", "conj", "fill",
        "argmax", "argmin", "clip", "round", "take", "view",
        # RNG draws (never definitions in this codebase)
        "shuffle", "choice", "normal", "uniform", "standard_normal",
        "permutation", "integers", "multinomial", "random", "spawn",
        # io / misc plumbing
        "read", "write", "readline", "close", "flush", "get", "put",
        "result", "cancel", "shutdown", "done", "add_note",
    }
)


def module_name_for(path: str) -> str:
    """Dotted module name of a normalised ``/``-separated file path.

    ``src/repro/core/trainer.py`` maps to ``repro.core.trainer`` (everything
    up to and including the ``src`` segment is a root, ``__init__`` is
    elided); paths without a ``src`` segment keep their directories, so
    ``benchmarks/bench_x.py`` maps to ``benchmarks.bench_x``.
    """
    parts = path.split("/")
    if "src" in parts[:-1]:
        parts = parts[parts.index("src") + 1 :]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


@dataclasses.dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str  #: normalised ``/``-separated path
    name: str  #: dotted module name
    tree: ast.Module
    source: str
    #: bare name -> dotted target (``from x import y [as z]`` bindings)
    import_from: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: alias -> dotted module (``import x.y [as z]`` bindings)
    import_module: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: names of module-level mutable containers (dict/list/set literals)
    mutable_globals: Set[str] = dataclasses.field(default_factory=set)


@dataclasses.dataclass
class FunctionInfo:
    """One top-level function or method (nested defs stay inside their parent)."""

    qualname: str  #: ``module.func`` or ``module.Class.method``
    name: str
    node: ast.AST  #: FunctionDef | AsyncFunctionDef
    module: ModuleInfo
    class_name: Optional[str] = None

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclasses.dataclass
class ClassInfo:
    """One class definition with the field facts REP103 walks."""

    qualname: str
    name: str
    node: ast.ClassDef
    module: ModuleInfo
    #: field name -> (annotation type names, line) — dataclass fields,
    #: class-level annotated assignments, and ``self.x = Ctor(...)`` inits
    field_types: Dict[str, Tuple[Tuple[str, ...], int]] = dataclasses.field(
        default_factory=dict
    )
    #: whether ``__init__`` stores a ``threading.Lock``/``RLock``/... field
    holds_threading_primitive: bool = False
    #: whether the class defines ``__getstate__`` (controls its own pickling)
    defines_getstate: bool = False
    #: whether the class opts in as thread-safe (``__thread_safe__ = True``)
    thread_safe: bool = False
    base_names: Tuple[str, ...] = ()


_THREADING_PRIMITIVE_NAMES = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event",
    "Barrier", "local", "Thread",
}


def _annotation_names(annotation: Optional[ast.AST]) -> Tuple[str, ...]:
    """Every plain type name mentioned in an annotation expression."""
    if annotation is None:
        return ()
    names: List[str] = []
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotations ("BackendSpec") are forward references.
            names.append(node.value.strip().strip("'\""))
    return tuple(names)


def _is_threading_primitive_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _THREADING_PRIMITIVE_NAMES:
        base = func.value
        return isinstance(base, ast.Name) and base.id == "threading"
    if isinstance(func, ast.Name) and func.id in _THREADING_PRIMITIVE_NAMES:
        return func.id in {"Lock", "RLock", "Condition", "Semaphore"}
    return False


def _class_info(node: ast.ClassDef, module: ModuleInfo) -> ClassInfo:
    info = ClassInfo(
        qualname=f"{module.name}.{node.name}" if module.name else node.name,
        name=node.name,
        node=node,
        module=module,
        base_names=tuple(
            base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
            for base in node.bases
        ),
    )
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            info.field_types[statement.target.id] = (
                _annotation_names(statement.annotation),
                statement.lineno,
            )
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__thread_safe__":
                    if (
                        isinstance(statement.value, ast.Constant)
                        and statement.value.value is True
                    ):
                        info.thread_safe = True
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if statement.name == "__getstate__":
                info.defines_getstate = True
            if statement.name == "__init__":
                parameter_types = {
                    arg.arg: _annotation_names(arg.annotation)
                    for arg in (
                        statement.args.posonlyargs
                        + statement.args.args
                        + statement.args.kwonlyargs
                    )
                    if arg.annotation is not None
                }
                for sub in ast.walk(statement):
                    if (
                        isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1
                        and isinstance(sub.targets[0], ast.Attribute)
                        and isinstance(sub.targets[0].value, ast.Name)
                        and sub.targets[0].value.id == "self"
                    ):
                        field = sub.targets[0].attr
                        if _is_threading_primitive_call(sub.value):
                            info.holds_threading_primitive = True
                        if isinstance(sub.value, ast.Call):
                            ctor = sub.value.func
                            ctor_name = (
                                ctor.id
                                if isinstance(ctor, ast.Name)
                                else getattr(ctor, "attr", None)
                            )
                            if ctor_name:
                                info.field_types.setdefault(
                                    field, ((ctor_name,), sub.lineno)
                                )
                        elif (
                            isinstance(sub.value, ast.Name)
                            and sub.value.id in parameter_types
                        ):
                            # ``self.x = x`` — the field's type is the
                            # annotated constructor parameter's.
                            info.field_types.setdefault(
                                field,
                                (parameter_types[sub.value.id], sub.lineno),
                            )
                    elif isinstance(sub, ast.AnnAssign) and isinstance(
                        sub.target, ast.Attribute
                    ):
                        target = sub.target
                        if (
                            isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            info.field_types.setdefault(
                                target.attr,
                                (_annotation_names(sub.annotation), sub.lineno),
                            )
    return info


def _index_module(module: ModuleInfo) -> Tuple[List[FunctionInfo], List[ClassInfo]]:
    functions: List[FunctionInfo] = []
    classes: List[ClassInfo] = []
    prefix = f"{module.name}." if module.name else ""
    for statement in module.tree.body:
        if isinstance(statement, (ast.Import, ast.ImportFrom)):
            if isinstance(statement, ast.Import):
                for alias in statement.names:
                    module.import_module[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif statement.module is not None and statement.level == 0:
                for alias in statement.names:
                    module.import_from[alias.asname or alias.name] = (
                        f"{statement.module}.{alias.name}"
                    )
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(
                FunctionInfo(
                    qualname=f"{prefix}{statement.name}",
                    name=statement.name,
                    node=statement,
                    module=module,
                )
            )
        elif isinstance(statement, ast.ClassDef):
            info = _class_info(statement, module)
            classes.append(info)
            for member in statement.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.append(
                        FunctionInfo(
                            qualname=f"{prefix}{statement.name}.{member.name}",
                            name=member.name,
                            node=member,
                            module=module,
                            class_name=statement.name,
                        )
                    )
        elif isinstance(statement, ast.Assign):
            if isinstance(statement.value, (ast.Dict, ast.List, ast.Set)) or (
                isinstance(statement.value, ast.Call)
                and isinstance(statement.value.func, ast.Name)
                and statement.value.func.id in {"dict", "list", "set", "OrderedDict"}
            ):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        module.mutable_globals.add(target.id)
    return functions, classes


class Project:
    """Every parsed module of one analysis run, with cross-module indexes."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}  # by path
        self.functions: Dict[str, FunctionInfo] = {}  # by qualname
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self.classes: Dict[str, ClassInfo] = {}  # by qualname
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}

    @classmethod
    def from_sources(cls, sources: Sequence[Tuple[str, str]]) -> "Project":
        """Build a project from ``(normalised_path, source)`` pairs.

        Files that fail to parse are skipped — the linter already reports
        them as ``REP000`` — so one broken file cannot blind the whole pass.
        """
        project = cls()
        for path, source in sources:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
            module = ModuleInfo(
                path=path, name=module_name_for(path), tree=tree, source=source
            )
            project.modules[path] = module
            functions, classes = _index_module(module)
            for function in functions:
                project.functions[function.qualname] = function
                project.functions_by_name.setdefault(function.name, []).append(
                    function
                )
            for info in classes:
                project.classes[info.qualname] = info
                project.classes_by_name.setdefault(info.name, []).append(info)
        return project

    # ------------------------------------------------------------------ #
    def resolve_name(self, module: ModuleInfo, name: str) -> List[str]:
        """Qualnames a bare ``name(...)`` call in ``module`` may reach."""
        local = f"{module.name}.{name}" if module.name else name
        if local in self.functions:
            return [local]
        target = module.import_from.get(name)
        if target is not None:
            if target in self.functions:
                return [target]
            # ``from pkg import helper`` where the definition lives in
            # ``pkg.module`` — fall back to the simple-name index, filtered
            # to the imported package prefix.
            tail = target.rsplit(".", 1)[-1]
            prefix = target.rsplit(".", 1)[0]
            return [
                fn.qualname
                for fn in self.functions_by_name.get(tail, [])
                if fn.qualname.startswith(prefix.split(".")[0])
            ]
        return []

    def resolve_attribute(
        self, module: ModuleInfo, call: ast.Call, class_name: Optional[str]
    ) -> List[str]:
        """Qualnames an ``obj.method(...)`` call may reach."""
        func = call.func
        assert isinstance(func, ast.Attribute)
        method = func.attr
        base = func.value
        # module alias: ``np.foo`` / ``harness.run_cells``
        if isinstance(base, ast.Name):
            target_module = module.import_module.get(base.id)
            if target_module is not None:
                qualname = f"{target_module}.{method}"
                return [qualname] if qualname in self.functions else []
            if base.id == "self" and class_name is not None:
                own = (
                    f"{module.name}.{class_name}.{method}"
                    if module.name
                    else f"{class_name}.{method}"
                )
                if own in self.functions:
                    return [own]
        if method in ATTRIBUTE_FANOUT_SKIP:
            return []
        return [
            fn.qualname
            for fn in self.functions_by_name.get(method, [])
            if fn.class_name is not None
        ]

    def resolve_call(self, function: FunctionInfo, call: ast.Call) -> List[str]:
        """Every project function a call site may dispatch to."""
        func = call.func
        if isinstance(func, ast.Name):
            return self.resolve_name(function.module, func.id)
        if isinstance(func, ast.Attribute):
            return self.resolve_attribute(function.module, call, function.class_name)
        return []

    def resolve_function_reference(
        self, module: ModuleInfo, node: ast.AST
    ) -> List[str]:
        """Project functions a *reference* (not a call) may denote.

        Used for fan-out first arguments: ``executor.map(_run_cell, plan)``
        passes ``_run_cell`` as a value.  Bare names resolve like calls;
        ``module.func`` attribute references resolve through import aliases.
        """
        if isinstance(node, ast.Name):
            return self.resolve_name(module, node.id)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            target_module = module.import_module.get(node.value.id)
            if target_module is not None:
                qualname = f"{target_module}.{node.attr}"
                if qualname in self.functions:
                    return [qualname]
        return []


class CallGraph:
    """Resolved call edges over a :class:`Project`, plus BFS reachability."""

    def __init__(self, edges: Dict[str, Set[str]]) -> None:
        self.edges = edges

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        edges: Dict[str, Set[str]] = {}
        for qualname, function in project.functions.items():
            callees: Set[str] = set()
            for node in ast.walk(function.node):
                if isinstance(node, ast.Call):
                    callees.update(project.resolve_call(function, node))
            callees.discard(qualname)
            edges[qualname] = callees
        return cls(edges)

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Every function transitively callable from ``roots`` (inclusive)."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.edges]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()) - seen)
        return seen
