"""SARIF 2.1.0 output of the analysis CLI (``--format sarif``).

Emits the minimal profile of the `Static Analysis Results Interchange
Format <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
that code-review UIs ingest: one run, one tool driver carrying the rule
catalogue, one ``result`` per finding with the standard
``error``/``warning``/``note`` level mapping.  Findings without a file
location (the IR verifier's object-anchored diagnostics) emit without a
``locations`` array, which the profile permits.

:func:`validate_sarif_payload` schema-checks a payload the same way
:func:`repro.analysis.report.validate_findings_payload` checks the JSON
format, and the subprocess round-trip is asserted in
``tests/analysis/test_sarif.py``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity, sort_diagnostics

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_LEVEL_OF = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}
_LEVELS = set(_LEVEL_OF.values())


#: partialFingerprints key of the stable context hash; versioned so the hash
#: recipe can evolve without colliding with previously uploaded results.
FINGERPRINT_KEY = "reproContextHash/v1"


def rule_catalogue() -> Dict[str, str]:
    """code -> one-line description across every analysis family."""
    from repro.analysis.cost import COST_CODES
    from repro.analysis.equiv import EQUIV_CODES
    from repro.analysis.flow import FLOW_CODES
    from repro.analysis.rules import all_rules
    from repro.analysis.shapes import SHAPE_CODES
    from repro.analysis.verify import VERIFIER_CODES

    catalogue: Dict[str, str] = {
        "REP000": "file does not parse or carries a malformed suppression",
    }
    for rule in all_rules():
        catalogue[rule.code] = rule.description
    catalogue.update(FLOW_CODES)
    catalogue.update(VERIFIER_CODES)
    catalogue.update(COST_CODES)
    catalogue.update(SHAPE_CODES)
    catalogue.update(EQUIV_CODES)
    return catalogue


def _context_fingerprint(diagnostic: Diagnostic, occurrence: int) -> str:
    """Stable dedup hash: rule id + file/object anchor + message context.

    Deliberately excludes line/column so code-scanning dedup survives line
    drift from unrelated edits; ``occurrence`` disambiguates repeated
    identical findings in the same file (ordinal within the sorted run).
    """
    location = diagnostic.location
    context = "|".join(
        (
            diagnostic.code,
            location.file or "",
            location.obj or "",
            diagnostic.message,
            str(occurrence),
        )
    )
    return hashlib.sha256(context.encode("utf-8")).hexdigest()[:32]


def sarif_payload(diagnostics: Sequence[Diagnostic]) -> dict:
    """Render ``diagnostics`` as one SARIF 2.1.0 log with a single run."""
    ordered = sort_diagnostics(diagnostics)
    catalogue = rule_catalogue()
    used_codes = sorted({d.code for d in ordered})
    rules = [
        {
            "id": code,
            "shortDescription": {
                "text": catalogue.get(code, "unregistered diagnostic code")
            },
        }
        for code in used_codes
    ]
    results = []
    occurrences: Dict[tuple, int] = {}
    for diagnostic in ordered:
        message = diagnostic.message
        if diagnostic.hint:
            message = f"{message} (hint: {diagnostic.hint})"
        dedup_key = (
            diagnostic.code,
            diagnostic.location.file or "",
            diagnostic.location.obj or "",
            diagnostic.message,
        )
        occurrence = occurrences.get(dedup_key, 0)
        occurrences[dedup_key] = occurrence + 1
        result = {
            "ruleId": diagnostic.code,
            "level": _LEVEL_OF[diagnostic.severity],
            "message": {"text": message},
            "partialFingerprints": {
                FINGERPRINT_KEY: _context_fingerprint(diagnostic, occurrence)
            },
        }
        location = diagnostic.location
        if location.file:
            region = {}
            if location.line is not None:
                region["startLine"] = int(location.line)
            if location.column is not None:
                # SARIF columns are 1-based; internal diagnostics are too,
                # but an emitter passing a raw 0-based col_offset would
                # produce a schema-invalid startColumn of 0 — clamp here,
                # at the one Diagnostic -> SARIF boundary.
                region["startColumn"] = max(1, int(location.column))
            physical = {"artifactLocation": {"uri": location.file}}
            if region:
                physical["region"] = region
            result["locations"] = [{"physicalLocation": physical}]
        elif location.obj:
            # Object-anchored findings (IR / cost verifier) carry the logical
            # location instead of a file.
            result["locations"] = [
                {"logicalLocations": [{"fullyQualifiedName": location.obj}]}
            ]
        results.append(result)
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {"driver": {"name": "repro.analysis", "rules": rules}},
                "results": results,
            }
        ],
    }


def validate_sarif_payload(payload: dict) -> List[str]:
    """Schema-check one SARIF payload; returns problems (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    if payload.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}, got {payload.get('version')!r}")
    if payload.get("$schema") != SARIF_SCHEMA:
        problems.append("$schema must point at the SARIF 2.1.0 schema")
    runs = payload.get("runs")
    if not isinstance(runs, list) or len(runs) != 1:
        return problems + ["runs must be a one-element list"]
    run = runs[0]
    if not isinstance(run, dict):
        return problems + ["runs[0] must be an object"]
    driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
    if not isinstance(driver, dict) or driver.get("name") != "repro.analysis":
        problems.append("runs[0].tool.driver.name must be 'repro.analysis'")
        driver = driver if isinstance(driver, dict) else {}
    rule_ids = set()
    rules = driver.get("rules", [])
    if not isinstance(rules, list):
        problems.append("tool.driver.rules must be a list")
        rules = []
    for index, rule in enumerate(rules):
        if not isinstance(rule, dict) or not isinstance(rule.get("id"), str):
            problems.append(f"rules[{index}] must be an object with a string id")
            continue
        rule_ids.add(rule["id"])
        text = rule.get("shortDescription", {})
        if not isinstance(text, dict) or not isinstance(text.get("text"), str):
            problems.append(f"rules[{index}].shortDescription.text must be a string")
    results = run.get("results")
    if not isinstance(results, list):
        return problems + ["runs[0].results must be a list"]
    for index, result in enumerate(results):
        if not isinstance(result, dict):
            problems.append(f"results[{index}] must be an object")
            continue
        rule_id = result.get("ruleId")
        if not isinstance(rule_id, str) or not rule_id:
            problems.append(f"results[{index}].ruleId must be a non-empty string")
        elif rule_id not in rule_ids:
            problems.append(
                f"results[{index}].ruleId {rule_id!r} missing from the rule catalogue"
            )
        if result.get("level") not in _LEVELS:
            problems.append(
                f"results[{index}].level must be one of {sorted(_LEVELS)}"
            )
        message = result.get("message")
        if not isinstance(message, dict) or not isinstance(message.get("text"), str):
            problems.append(f"results[{index}].message.text must be a string")
        fingerprints = result.get("partialFingerprints")
        if not isinstance(fingerprints, dict) or not isinstance(
            fingerprints.get(FINGERPRINT_KEY), str
        ) or not fingerprints.get(FINGERPRINT_KEY):
            problems.append(
                f"results[{index}].partialFingerprints must carry a non-empty "
                f"{FINGERPRINT_KEY!r} hash"
            )
        for l_index, loc in enumerate(result.get("locations", [])):
            physical = loc.get("physicalLocation") if isinstance(loc, dict) else None
            if physical is None:
                continue
            artifact = physical.get("artifactLocation", {})
            if not isinstance(artifact.get("uri"), str) or not artifact.get("uri"):
                problems.append(
                    f"results[{index}].locations[{l_index}] physicalLocation "
                    "needs a non-empty artifactLocation.uri"
                )
            region = physical.get("region")
            if region is not None:
                line = region.get("startLine")
                if line is not None and (not isinstance(line, int) or line < 1):
                    problems.append(
                        f"results[{index}].locations[{l_index}].region.startLine "
                        "must be a positive integer"
                    )
                column = region.get("startColumn")
                if column is not None and (
                    not isinstance(column, int) or column < 1
                ):
                    problems.append(
                        f"results[{index}].locations[{l_index}].region."
                        "startColumn must be a positive integer (SARIF "
                        "columns are 1-based)"
                    )
    return problems
