"""Findings baseline: the ratchet that keeps the tree analysis-clean.

``analysis_baseline.json`` at the repository root records the accepted
findings of ``python -m repro.analysis src benchmarks`` (currently: none).
The CLI's ``--baseline`` flag subtracts baselined findings from a run, so
only *new* findings gate the exit code, and the tier-1 regression test
(``tests/analysis/test_baseline.py``) fails whenever the tree acquires a
finding the baseline does not carry — the baseline can only be ratcheted
down (or consciously regenerated with ``--write-baseline`` in a reviewed
change), never silently grown.

Baselined findings are keyed by ``(code, file)`` — line numbers churn with
unrelated edits, so pinning them would make the baseline rot; a *new
occurrence* of an accepted (code, file) pair is the one case this ratchet
intentionally tolerates.
"""

from __future__ import annotations

import json
from typing import List, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, sort_diagnostics

BASELINE_VERSION = 1
#: The repository's checked-in baseline (relative to the working directory).
DEFAULT_BASELINE_PATH = "analysis_baseline.json"

Key = Tuple[str, str]


def baseline_payload(diagnostics: Sequence[Diagnostic]) -> dict:
    """The on-disk baseline document for ``diagnostics``."""
    keys = sorted({_key(d) for d in sort_diagnostics(diagnostics)})
    return {
        "version": BASELINE_VERSION,
        "tool": "repro.analysis",
        "findings": [{"code": code, "file": file} for code, file in keys],
    }


def _key(diagnostic: Diagnostic) -> Key:
    return diagnostic.code, diagnostic.location.file or ""


def load_baseline(path: str) -> Set[Key]:
    """The ``(code, file)`` pairs accepted by the baseline at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    problems = validate_baseline_payload(payload)
    if problems:
        raise ValueError(f"invalid baseline {path}: {'; '.join(problems)}")
    return {
        (finding["code"], finding["file"]) for finding in payload["findings"]
    }


def write_baseline(
    path: str, diagnostics: Sequence[Diagnostic]
) -> Tuple[dict, int]:
    """Write the baseline for ``diagnostics`` to ``path``.

    Returns ``(payload, pruned)`` where ``pruned`` counts the stale
    ``(code, file)`` entries of the previous baseline at ``path`` whose
    findings no longer fire — rewriting always drops them, and reporting
    the count makes a silently shrinking baseline visible in review.  A
    missing or unreadable previous baseline prunes nothing.
    """
    payload = baseline_payload(diagnostics)
    current = {(f["code"], f["file"]) for f in payload["findings"]}
    try:
        stale = load_baseline(path) - current
    except (OSError, ValueError, json.JSONDecodeError):
        stale = set()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload, len(stale)


def split_by_baseline(
    diagnostics: Sequence[Diagnostic], accepted: Set[Key]
) -> Tuple[List[Diagnostic], int]:
    """(new findings, count of baselined findings dropped)."""
    fresh = [d for d in diagnostics if _key(d) not in accepted]
    return fresh, len(diagnostics) - len(fresh)


def validate_baseline_payload(payload: dict) -> List[str]:
    """Schema-check one baseline document; returns problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"baseline must be a JSON object, got {type(payload).__name__}"]
    if payload.get("version") != BASELINE_VERSION:
        problems.append(
            f"version must be {BASELINE_VERSION}, got {payload.get('version')!r}"
        )
    if payload.get("tool") != "repro.analysis":
        problems.append(f"tool must be 'repro.analysis', got {payload.get('tool')!r}")
    findings = payload.get("findings")
    if not isinstance(findings, list):
        return problems + ["findings must be a list"]
    for index, finding in enumerate(findings):
        if not isinstance(finding, dict):
            problems.append(f"findings[{index}] must be an object")
            continue
        for key in ("code", "file"):
            if not isinstance(finding.get(key), str):
                problems.append(f"findings[{index}].{key} must be a string")
    return problems
