"""The shared diagnostic record of the static-analysis layer.

Both analysis passes — the :mod:`~repro.analysis.verify` IR verifier over
compiled :class:`~repro.quantum.program.SweepProgram`s and the
:mod:`~repro.analysis.lint` AST contract linter over source files — report
through one :class:`Diagnostic` record so the CLI, the tests, and the JSON
output treat a plan-time IR defect and a codebase-contract violation
identically: a stable code, a severity, a location, a message, and a fix
hint.

Codes are namespaced by pass:

* ``REPxxx`` — codebase contracts enforced by the AST linter (``REP000`` is
  reserved for malformed suppression comments).
* ``VERxxx`` — IR invariants enforced by the program verifier.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, List, Optional, Sequence


class Severity(enum.Enum):
    """How serious a finding is; ``ERROR`` findings gate the CLI exit code."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.value


#: Rank used when sorting mixed-severity reports (most severe first).
_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclasses.dataclass(frozen=True)
class Location:
    """Where a finding points.

    Linter findings carry ``file``/``line``/``column``; verifier findings
    carry ``obj`` — a dotted IR path such as ``program 'sweep' step 3 (cx)``
    — and may leave the file coordinates unset.  Either way the location
    renders to one stable string so diagnostics sort and compare cleanly.
    """

    file: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None
    obj: Optional[str] = None

    def render(self) -> str:
        parts: List[str] = []
        if self.file is not None:
            coords = self.file
            if self.line is not None:
                coords += f":{self.line}"
                if self.column is not None:
                    coords += f":{self.column}"
            parts.append(coords)
        if self.obj is not None:
            parts.append(self.obj)
        return " ".join(parts) if parts else "<unknown>"

    def sort_key(self) -> tuple:
        return (
            self.file or "",
            self.line if self.line is not None else -1,
            self.column if self.column is not None else -1,
            self.obj or "",
        )


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding of either analysis pass."""

    code: str
    severity: Severity
    location: Location
    message: str
    hint: Optional[str] = None

    def format(self) -> str:
        """Render as ``location CODE severity: message (hint: ...)``."""
        text = f"{self.location.render()} {self.code} {self.severity.value}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        """JSON-ready mapping used by the CLI's ``--format json`` output."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "file": self.location.file,
            "line": self.location.line,
            "column": self.location.column,
            "object": self.location.obj,
            "message": self.message,
            "hint": self.hint,
        }


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable order: by location, then severity (errors first), then code."""
    return sorted(
        diagnostics,
        key=lambda d: (d.location.sort_key(), _SEVERITY_RANK[d.severity], d.code),
    )


def errors(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """The error-severity subset of ``diagnostics``."""
    return [d for d in diagnostics if d.severity is Severity.ERROR]


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """Whether any finding is error severity (the CLI's exit-code gate)."""
    return any(d.severity is Severity.ERROR for d in diagnostics)


def format_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    """One finding per line, in :func:`sort_diagnostics` order."""
    return "\n".join(d.format() for d in sort_diagnostics(diagnostics))
