"""Static analysis for the repro stack.

Five coordinated pass families share one
:class:`~repro.analysis.diagnostics.Diagnostic` record and one CLI
(``python -m repro.analysis``):

* :mod:`repro.analysis.verify` — a static IR verifier over compiled
  :class:`~repro.quantum.program.SweepProgram`s, circuits, tile plans, and
  precomposed noise superoperators (``VER1xx`` codes).  A cheap structural
  subset runs on every program compile; ``REPRO_VERIFY=1`` enables the full
  numerical level (unitarity, CPTP) at compile and plan time.
  :mod:`repro.analysis.cost` extends it with the static cost-model verifier
  (``VER2xx``): peak amplitudes/bytes and contraction counts predicted per
  tile plan and checked against the declared amplitude budget.
* :mod:`repro.analysis.lint` — an AST contract linter (``REP001``–``REP005``
  and ``REP106``) encoding the determinism, picklability, caching, timing,
  and reporting contracts the batched/sharded execution stack depends on.
* :mod:`repro.analysis.flow` — cross-module call-graph + dataflow analyzers
  (``REP101``–``REP104``): shard-reachable races, Generator seed aliasing
  across shard submissions, transitive payload picklability, and engine
  buffers escaping into caches.
* :mod:`repro.analysis.shapes` — a shape/dtype abstract interpreter over
  the engine modules and compiled program metadata (``VER301``–``VER304``):
  einsum subscript/operand agreement, amplitude-layout preservation,
  silent complex→real downcasts, and promotions that would break a
  configured ``complex64`` run.  Backed by the :mod:`repro.arrays` seam
  and its lint rules ``REP201``/``REP202``.
* :mod:`repro.analysis.equiv` — translation validation of the compile
  pipeline (``VER401``–``VER430``): the fusion legality oracle, per-rewrite
  certificates (fused unitary ≡ ordered source product, folded
  superoperator ≡ composed source channels with CPTP preserved,
  shared-prefix legality across shift rows), and the end-to-end witness
  that an optimised :class:`~repro.quantum.program.SweepProgram` faithfully
  translates its source.  The plan-time fusion pass
  (:meth:`~repro.quantum.program.SweepProgram.optimized`) only ships
  rewrites this family certifies.

Findings flow through the shared report formats (:mod:`.report` for
text/JSON, :mod:`.sarif` for SARIF 2.1.0) and the :mod:`.baseline` ratchet.
See ``docs/static_analysis.md`` for the rule catalogue, verifier check
list, CLI usage, and the inline-suppression syntax.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    baseline_payload,
    load_baseline,
    split_by_baseline,
    validate_baseline_payload,
    write_baseline,
)
from repro.analysis.cost import (
    COST_CODES,
    CostReport,
    estimate_cost,
    reference_cost_reports,
    verify_cost,
    verify_reference_costs,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    errors,
    format_diagnostics,
    has_errors,
    sort_diagnostics,
)
from repro.analysis.equiv import (
    EQUIV_CODES,
    can_extend_fusion,
    shared_prefix_length,
    verify_fused_step,
    verify_fused_superoperator_plan,
    verify_reference_equivalence,
    verify_shared_prefix,
    verify_translation,
)
from repro.analysis.flow import (
    FLOW_CODES,
    FlowResult,
    analyze_paths,
    analyze_sources,
    find_entry_points,
)
from repro.analysis.lint import LintResult, lint_paths, lint_source
from repro.analysis.report import (
    findings_payload,
    format_text_report,
    validate_findings_payload,
)
from repro.analysis.rules import LintContext, Rule, all_rules, select_rules
from repro.analysis.sarif import sarif_payload, validate_sarif_payload
from repro.analysis.shapes import (
    SHAPE_CODES,
    ShapeResult,
    verify_program_shapes,
    verify_reference_shapes,
)
from repro.analysis.verify import (
    REPRO_VERIFY_ENV,
    VERIFIER_CODES,
    full_verification_enabled,
    verify_channel,
    verify_circuit,
    verify_program,
    verify_reference_suite,
    verify_superoperator,
    verify_tile_plan,
)

__all__ = [
    "Diagnostic",
    "Location",
    "Severity",
    "errors",
    "format_diagnostics",
    "has_errors",
    "sort_diagnostics",
    "LintResult",
    "lint_paths",
    "lint_source",
    "FLOW_CODES",
    "FlowResult",
    "analyze_paths",
    "analyze_sources",
    "find_entry_points",
    "findings_payload",
    "format_text_report",
    "validate_findings_payload",
    "sarif_payload",
    "validate_sarif_payload",
    "DEFAULT_BASELINE_PATH",
    "baseline_payload",
    "load_baseline",
    "split_by_baseline",
    "validate_baseline_payload",
    "write_baseline",
    "LintContext",
    "Rule",
    "all_rules",
    "select_rules",
    "REPRO_VERIFY_ENV",
    "VERIFIER_CODES",
    "COST_CODES",
    "EQUIV_CODES",
    "can_extend_fusion",
    "shared_prefix_length",
    "verify_fused_step",
    "verify_fused_superoperator_plan",
    "verify_reference_equivalence",
    "verify_shared_prefix",
    "verify_translation",
    "SHAPE_CODES",
    "ShapeResult",
    "verify_program_shapes",
    "verify_reference_shapes",
    "CostReport",
    "estimate_cost",
    "reference_cost_reports",
    "verify_cost",
    "verify_reference_costs",
    "full_verification_enabled",
    "verify_channel",
    "verify_circuit",
    "verify_program",
    "verify_reference_suite",
    "verify_superoperator",
    "verify_tile_plan",
]
