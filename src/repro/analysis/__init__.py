"""Static analysis for the repro stack.

Two coordinated passes share one :class:`~repro.analysis.diagnostics.Diagnostic`
record and one CLI (``python -m repro.analysis``):

* :mod:`repro.analysis.verify` — a static IR verifier over compiled
  :class:`~repro.quantum.program.SweepProgram`s, circuits, tile plans, and
  precomposed noise superoperators (``VERxxx`` codes).  A cheap structural
  subset runs on every program compile; ``REPRO_VERIFY=1`` enables the full
  numerical level (unitarity, CPTP) at compile and plan time.
* :mod:`repro.analysis.lint` — an AST contract linter
  (``REP001``–``REP005``) encoding the determinism, picklability, caching,
  and reporting contracts the batched/sharded execution stack depends on.

See ``docs/static_analysis.md`` for the rule catalogue, verifier check
list, CLI usage, and the inline-suppression syntax.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    errors,
    format_diagnostics,
    has_errors,
    sort_diagnostics,
)
from repro.analysis.lint import LintResult, lint_paths, lint_source
from repro.analysis.report import (
    findings_payload,
    format_text_report,
    validate_findings_payload,
)
from repro.analysis.rules import LintContext, Rule, all_rules, select_rules
from repro.analysis.verify import (
    REPRO_VERIFY_ENV,
    VERIFIER_CODES,
    full_verification_enabled,
    verify_channel,
    verify_circuit,
    verify_program,
    verify_reference_suite,
    verify_superoperator,
    verify_tile_plan,
)

__all__ = [
    "Diagnostic",
    "Location",
    "Severity",
    "errors",
    "format_diagnostics",
    "has_errors",
    "sort_diagnostics",
    "LintResult",
    "lint_paths",
    "lint_source",
    "findings_payload",
    "format_text_report",
    "validate_findings_payload",
    "LintContext",
    "Rule",
    "all_rules",
    "select_rules",
    "REPRO_VERIFY_ENV",
    "VERIFIER_CODES",
    "full_verification_enabled",
    "verify_channel",
    "verify_circuit",
    "verify_program",
    "verify_reference_suite",
    "verify_superoperator",
    "verify_tile_plan",
]
