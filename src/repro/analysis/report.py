"""Output formats of the analysis CLI: text report and JSON payload.

The JSON payload is the machine-readable twin of the text report — the
bench-smoke suite schema-checks it with :func:`validate_findings_payload`
the same way ``BENCH_*.json`` perf points are checked by
:func:`repro.experiments.reporting.validate_perf_payload`, so the CLI's
output contract cannot rot unnoticed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity, sort_diagnostics

#: Schema version of the JSON payload.  Version 2 added the per-rule-code
#: ``summary.suppressed_by_code`` accounting and the optional machine-readable
#: ``cost`` section (static cost-model reports, emitted under ``--verify``).
#: Version 3 added the optional ``timings`` section: per-analyzer wall-clock
#: seconds plus the ``--jobs`` fan-out width the run used.
PAYLOAD_VERSION = 3

_REQUIRED_FINDING_KEYS = ("code", "severity", "message")
_SEVERITIES = {severity.value for severity in Severity}
#: Integer fields every ``cost`` entry must carry.
_COST_INT_KEYS = (
    "num_qubits",
    "element_amplitudes",
    "tile_elements",
    "peak_amplitudes",
    "peak_bytes",
    "num_tiles",
    "contractions",
)


def summarize(
    diagnostics: Sequence[Diagnostic],
    suppressed: int = 0,
    suppressed_by_code: Optional[Dict[str, int]] = None,
) -> dict:
    """Severity tallies of a finding list."""
    return {
        "errors": sum(1 for d in diagnostics if d.severity is Severity.ERROR),
        "warnings": sum(1 for d in diagnostics if d.severity is Severity.WARNING),
        "infos": sum(1 for d in diagnostics if d.severity is Severity.INFO),
        "suppressed": int(suppressed),
        "suppressed_by_code": dict(sorted((suppressed_by_code or {}).items())),
    }


def findings_payload(
    diagnostics: Sequence[Diagnostic],
    *,
    paths: Sequence[str],
    files_checked: int,
    suppressed: int = 0,
    suppressed_by_code: Optional[Dict[str, int]] = None,
    cost: Optional[Sequence[dict]] = None,
    timings: Optional[Dict[str, float]] = None,
) -> dict:
    """The ``--format json`` payload."""
    ordered = sort_diagnostics(diagnostics)
    payload = {
        "version": PAYLOAD_VERSION,
        "tool": "repro.analysis",
        "paths": list(paths),
        "files_checked": int(files_checked),
        "findings": [d.to_dict() for d in ordered],
        "summary": summarize(ordered, suppressed, suppressed_by_code),
    }
    if cost is not None:
        payload["cost"] = [dict(report) for report in cost]
    if timings is not None:
        payload["timings"] = {
            key: int(value) if key == "jobs" else float(value)
            for key, value in timings.items()
        }
    return payload


def validate_findings_payload(payload: dict) -> List[str]:
    """Schema-check one JSON payload; returns problems (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    if payload.get("version") != PAYLOAD_VERSION:
        problems.append(f"version must be {PAYLOAD_VERSION}, got {payload.get('version')!r}")
    if payload.get("tool") != "repro.analysis":
        problems.append(f"tool must be 'repro.analysis', got {payload.get('tool')!r}")
    if not isinstance(payload.get("paths"), list):
        problems.append("paths must be a list")
    if not isinstance(payload.get("files_checked"), int) or isinstance(
        payload.get("files_checked"), bool
    ):
        problems.append("files_checked must be an integer")
    findings = payload.get("findings")
    if not isinstance(findings, list):
        problems.append("findings must be a list")
        findings = []
    for index, finding in enumerate(findings):
        if not isinstance(finding, dict):
            problems.append(f"findings[{index}] must be an object")
            continue
        for key in _REQUIRED_FINDING_KEYS:
            value = finding.get(key)
            if not isinstance(value, str) or not value:
                problems.append(f"findings[{index}].{key} must be a non-empty string")
        severity = finding.get("severity")
        if isinstance(severity, str) and severity not in _SEVERITIES:
            problems.append(
                f"findings[{index}].severity must be one of {sorted(_SEVERITIES)}"
            )
        line = finding.get("line")
        if line is not None and (not isinstance(line, int) or isinstance(line, bool)):
            problems.append(f"findings[{index}].line must be an integer or null")
    summary = payload.get("summary")
    if not isinstance(summary, dict):
        problems.append("summary must be an object")
    else:
        for key in ("errors", "warnings", "infos", "suppressed"):
            value = summary.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                problems.append(f"summary.{key} must be a non-negative integer")
        by_code = summary.get("suppressed_by_code")
        if not isinstance(by_code, dict):
            problems.append("summary.suppressed_by_code must be an object")
        else:
            for code, count in by_code.items():
                if (
                    not isinstance(code, str)
                    or not isinstance(count, int)
                    or isinstance(count, bool)
                    or count <= 0
                ):
                    problems.append(
                        "summary.suppressed_by_code entries must map rule codes "
                        "to positive integers"
                    )
                    break
            if isinstance(summary.get("suppressed"), int) and sum(
                count for count in by_code.values() if isinstance(count, int)
            ) != summary.get("suppressed"):
                problems.append(
                    "summary.suppressed_by_code totals must equal summary.suppressed"
                )
        if isinstance(findings, list) and all(
            isinstance(f, dict) for f in findings
        ):
            counted = sum(
                1 for f in findings if f.get("severity") == Severity.ERROR.value
            )
            if isinstance(summary.get("errors"), int) and summary["errors"] != counted:
                problems.append(
                    f"summary.errors is {summary['errors']} but findings contain "
                    f"{counted} error(s)"
                )
    cost = payload.get("cost")
    if cost is not None:
        if not isinstance(cost, list):
            problems.append("cost must be a list when present")
        else:
            for index, report in enumerate(cost):
                if not isinstance(report, dict):
                    problems.append(f"cost[{index}] must be an object")
                    continue
                for key in ("program", "engine", "mode"):
                    if not isinstance(report.get(key), str) or not report.get(key):
                        problems.append(
                            f"cost[{index}].{key} must be a non-empty string"
                        )
                for key in _COST_INT_KEYS:
                    value = report.get(key)
                    if (
                        not isinstance(value, int)
                        or isinstance(value, bool)
                        or value < 0
                    ):
                        problems.append(
                            f"cost[{index}].{key} must be a non-negative integer"
                        )
    timings = payload.get("timings")
    if timings is not None:
        if not isinstance(timings, dict):
            problems.append("timings must be an object when present")
        else:
            jobs = timings.get("jobs")
            if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
                problems.append("timings.jobs must be a positive integer")
            for key, value in timings.items():
                if key == "jobs":
                    continue
                if not key.endswith("_seconds"):
                    problems.append(
                        f"timings.{key} must be 'jobs' or end with '_seconds'"
                    )
                elif (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool)
                    or value < 0
                ):
                    problems.append(
                        f"timings.{key} must be a non-negative number"
                    )
    return problems


def format_text_report(
    diagnostics: Sequence[Diagnostic], *, files_checked: int, suppressed: int = 0
) -> str:
    """Human-readable report: one finding per line plus a summary tail."""
    ordered = sort_diagnostics(diagnostics)
    lines = [d.format() for d in ordered]
    tallies = summarize(ordered, suppressed)
    lines.append(
        f"checked {files_checked} file(s): {tallies['errors']} error(s), "
        f"{tallies['warnings']} warning(s), {tallies['suppressed']} suppressed"
    )
    return "\n".join(lines)
