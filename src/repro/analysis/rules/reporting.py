"""REP005 — every benchmark must leave a machine-readable perf point.

The ROADMAP tracks each workload's perf trajectory across PRs through the
``BENCH_<name>.json`` files that the shared
:mod:`repro.experiments.reporting` writer emits.  A benchmark that prints
its numbers without recording a perf point silently drops out of that
trajectory — the regression it would have caught shows up only as a vague
"this used to be faster".
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import LintContext, Rule

#: Accepted entry points into the shared perf-point writer: the writer
#: itself, the benchmark conftest wrappers, and the fixtures exposing them.
_REPORTING_NAMES = {
    "write_perf_point",
    "record_bench_report",
    "run_experiment",
    "experiment_runner",
    "bench_reporter",
}


def _mentioned_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.arg):
            names.add(node.arg)
        elif isinstance(node, ast.alias):
            names.add(node.asname or node.name.split(".")[-1])
    return names


class BenchReportingRule(Rule):
    """REP005 — ``bench_*.py`` must call the shared perf-point writer.

    Satisfied by any reference to the :mod:`repro.experiments.reporting`
    writer (``write_perf_point``), the benchmark conftest wrappers
    (``record_bench_report``, ``run_experiment``), or the fixtures that
    expose them (``experiment_runner``, ``bench_reporter``) — including as a
    test-function fixture argument, which is how the figure benches consume
    them.
    """

    code = "REP005"
    name = "bench-emits-perf-point"
    description = "benchmarks must record BENCH_<name>.json via experiments.reporting"

    def applies(self, context: LintContext) -> bool:
        return context.is_bench

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        out: List[Diagnostic] = []
        if not _mentioned_names(context.tree) & _REPORTING_NAMES:
            out.append(
                self.diagnostic(
                    context,
                    None,
                    "benchmark never records a perf point; its results are "
                    "invisible to the cross-PR perf trajectory",
                    hint="use the experiment_runner/bench_reporter fixtures or "
                    "call repro.experiments.reporting.write_perf_point",
                )
            )
        return out
