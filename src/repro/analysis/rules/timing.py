"""REP106: no ``time.sleep`` in library code outside the queue-latency path.

The serving layer and persistent worker fleet on the roadmap will run
library code in latency-sensitive hot loops; a stray ``time.sleep`` — left
over from debugging, or smuggled in as a cheap backoff — stalls a whole
worker.  The one sanctioned sleep is the simulated hardware queue wait in
:meth:`repro.quantum.backend.QuantumBackend._queue_wait`, which is (a)
off by default and (b) lexically guarded by the documented
``simulate_queue_latency`` switch.  The rule encodes exactly that shape:
a sleep is allowed only inside a function whose body references
``simulate_queue_latency``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import LintContext, Rule

_GUARD_NAME = "simulate_queue_latency"


def _mentions_guard(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == _GUARD_NAME:
            return True
        if isinstance(sub, ast.Name) and sub.id == _GUARD_NAME:
            return True
    return False


class SleepRule(Rule):
    """Library code must not block on ``time.sleep``."""

    code = "REP106"
    name = "no-sleep-in-library"
    description = (
        "time.sleep stalls serving/worker hot loops; only the documented "
        "simulate_queue_latency path may sleep"
    )

    def applies(self, context: LintContext) -> bool:
        return context.is_library and not context.is_test

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        sleep_aliases: Set[str] = set()
        time_aliases: Set[str] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name == "sleep":
                            sleep_aliases.add(alias.asname or "sleep")

        out: List[Diagnostic] = []
        guarded_spans: List[tuple] = []
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _mentions_guard(node):
                    guarded_spans.append((node.lineno, node.end_lineno or node.lineno))

        def is_guarded(lineno: int) -> bool:
            return any(start <= lineno <= stop for start, stop in guarded_spans)

        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_sleep = (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id in time_aliases
            ) or (isinstance(func, ast.Name) and func.id in sleep_aliases)
            if not is_sleep or is_guarded(node.lineno):
                continue
            out.append(
                self.diagnostic(
                    context,
                    node,
                    "time.sleep in library code blocks serving/worker hot "
                    "loops; only the simulate_queue_latency path may sleep",
                    hint="poll without blocking, or gate the wait behind the "
                    "documented simulate_queue_latency switch",
                )
            )
        return out
