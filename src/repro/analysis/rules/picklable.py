"""REP002 — ``*Spec`` classes must stay picklable.

The sharded executor's whole safety story is that live backends (open job
ledgers, caches, RNG state) are never shipped to workers — only ``*Spec``
factories cross the process boundary.  That guarantee dies quietly the day
someone adds a ``field(default_factory=lambda: ...)``, a ``threading.Lock``,
or a live ``backend:`` field to a spec: pickling fails only on the process
strategy, only at fan-out time, deep inside ``concurrent.futures``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import LintContext, Rule

#: threading primitives that cannot cross a pickle boundary.
_THREADING_PRIMITIVES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Event",
    "Barrier",
}

#: Type-name suffixes that denote live (unpicklable or state-carrying)
#: execution objects; ``*Spec`` names themselves are exempt.
_LIVE_OBJECT_SUFFIXES = ("Backend", "Simulator", "Estimator", "Executor")


def _annotation_names(node: ast.AST) -> Iterable[str]:
    """Every plain identifier mentioned inside a type annotation."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


def _is_threading_call(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _THREADING_PRIMITIVES:
        if isinstance(func.value, ast.Name) and func.value.id == "threading":
            return f"threading.{func.attr}"
    if isinstance(func, ast.Name) and func.id in _THREADING_PRIMITIVES:
        return func.id
    return None


class SpecPicklableRule(Rule):
    """REP002 — keep worker-bound spec factories picklable by construction.

    Inspects the *class-level* statements (field declarations and defaults)
    of every class whose name ends in ``Spec``:

    * lambdas anywhere in a field default (unpicklable);
    * threading primitives in a field default (unpicklable);
    * field annotations naming live execution objects (``*Backend``,
      ``*Simulator``, ``*Estimator``, ``*Executor``) — the exact objects the
      spec pattern exists to keep out of workers.  ``*Spec`` type names are
      exempt (specs may nest specs).

    Method bodies are deliberately out of scope: ``from_backend(cls,
    backend)`` legitimately touches live objects to *derive* a spec.
    """

    code = "REP002"
    name = "spec-picklable"
    description = "*Spec classes must stay picklable (they cross process boundaries)"

    def applies(self, context: LintContext) -> bool:
        return context.is_library

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        out: List[Diagnostic] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef) or not node.name.endswith("Spec"):
                continue
            for statement in node.body:
                if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
                    continue
                out.extend(self._check_field(context, node.name, statement))
        return out

    def _check_field(
        self, context: LintContext, class_name: str, statement
    ) -> Iterable[Diagnostic]:
        out: List[Diagnostic] = []
        value = statement.value
        if value is not None:
            for child in ast.walk(value):
                if isinstance(child, ast.Lambda):
                    out.append(
                        self.diagnostic(
                            context,
                            child,
                            f"{class_name}: lambda in a field default cannot be "
                            "pickled to worker processes",
                            hint="use a module-level function (or a dataclasses."
                            "field default_factory referencing one)",
                        )
                    )
                elif isinstance(child, ast.Call):
                    primitive = _is_threading_call(child)
                    if primitive is not None:
                        out.append(
                            self.diagnostic(
                                context,
                                child,
                                f"{class_name}: {primitive}() in a field default "
                                "cannot be pickled to worker processes",
                                hint="create locks lazily in __setstate__ like "
                                "repro.utils.cache.LRUCache does",
                            )
                        )
        annotation = getattr(statement, "annotation", None)
        if annotation is not None:
            for name in _annotation_names(annotation):
                if name.endswith(_LIVE_OBJECT_SUFFIXES) and not name.endswith("Spec"):
                    out.append(
                        self.diagnostic(
                            context,
                            annotation,
                            f"{class_name}: field typed as live object "
                            f"'{name}'; specs must carry construction recipes, "
                            "not live execution state",
                            hint="store a nested *Spec (e.g. BackendSpec) and "
                            "rebuild the live object in the worker",
                        )
                    )
        return out
