"""RNG discipline rules: REP001 (library code) and REP004 (engines).

The whole determinism story of the stack — seed-identical batched vs loop
execution, bit-identical serial/thread/process sharding, reproducible figure
sweeps — rests on *every* random draw flowing from an injected seed or a
``SeedSequence`` child stream.  One seedless ``default_rng()`` buried in a
fallback path (the bug this PR fixes in ``repro.quantum.measurement``)
silently re-introduces OS entropy and breaks reproducibility without
failing a single test.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import LintContext, Rule

#: ``np.random`` attributes that are *constructions*, not global draws.
_ALLOWED_RANDOM_ATTRS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}


class _NumpyAliasTracker(ast.NodeVisitor):
    """Resolve which local names refer to numpy / numpy.random / default_rng."""

    def __init__(self) -> None:
        self.numpy_names: Set[str] = set()
        self.random_module_names: Set[str] = set()
        #: direct name -> original numpy.random attribute (from-imports)
        self.random_attr_names: dict = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                if alias.asname is None:
                    self.numpy_names.add("numpy")
                elif alias.name == "numpy":
                    self.numpy_names.add(local)
                elif alias.name == "numpy.random":
                    self.random_module_names.add(local)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.random_module_names.add(alias.asname or "random")
        elif node.module == "numpy.random":
            for alias in node.names:
                self.random_attr_names[alias.asname or alias.name] = alias.name


def _random_call_attr(call: ast.Call, aliases: _NumpyAliasTracker) -> Optional[str]:
    """The ``np.random.<attr>`` attribute a call resolves to, if any."""
    func = call.func
    if isinstance(func, ast.Attribute):
        base = func.value
        # <numpy>.random.<attr>(...)
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in aliases.numpy_names
        ):
            return func.attr
        # <random module>.<attr>(...)
        if isinstance(base, ast.Name) and base.id in aliases.random_module_names:
            return func.attr
    if isinstance(func, ast.Name) and func.id in aliases.random_attr_names:
        return aliases.random_attr_names[func.id]
    return None


def _is_seedless(call: ast.Call) -> bool:
    """Whether a ``default_rng`` call draws OS entropy (no seed / ``None``)."""
    if call.keywords:
        for keyword in call.keywords:
            if keyword.arg in (None, "seed"):
                return isinstance(keyword.value, ast.Constant) and keyword.value.value is None
    if not call.args:
        return not call.keywords
    first = call.args[0]
    return isinstance(first, ast.Constant) and first.value is None


def _find_rng_calls(
    context: LintContext,
) -> Iterable[Tuple[ast.Call, str, bool]]:
    """Yield ``(call, attribute, is_seedless_default_rng)`` for numpy RNG calls."""
    aliases = _NumpyAliasTracker()
    aliases.visit(context.tree)
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        attr = _random_call_attr(node, aliases)
        if attr is None:
            continue
        yield node, attr, attr == "default_rng" and _is_seedless(node)


class SeedlessRngRule(Rule):
    """REP001 — no OS entropy in library code.

    Flags, in files under ``src/``:

    * ``np.random.default_rng()`` with no seed (or an explicit ``None``) —
      a silent OS-entropy draw; and
    * calls to the global/legacy ``np.random.*`` API (``np.random.seed``,
      ``np.random.uniform``, ...) whose hidden global state leaks across
      shards and threads.

    Constructions (``np.random.Generator``, ``SeedSequence``, seeded
    ``default_rng(seed)``) are allowed — they are exactly how randomness is
    supposed to be injected.
    """

    code = "REP001"
    name = "no-seedless-rng"
    description = (
        "library code must not draw OS entropy or use global numpy RNG state"
    )

    def applies(self, context: LintContext) -> bool:
        return context.is_library

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        out: List[Diagnostic] = []
        for call, attr, seedless in _find_rng_calls(context):
            if seedless:
                out.append(
                    self.diagnostic(
                        context,
                        call,
                        "seedless np.random.default_rng() draws OS entropy; "
                        "results become irreproducible",
                        hint="accept an injected rng/seed (repro.utils.rng."
                        "ensure_rng) or derive one from a documented default "
                        "seed",
                    )
                )
            elif attr not in _ALLOWED_RANDOM_ATTRS:
                out.append(
                    self.diagnostic(
                        context,
                        call,
                        f"global np.random.{attr}() uses hidden module state "
                        "shared across shards and threads",
                        hint="draw from an injected np.random.Generator (see "
                        "repro.utils.rng.spawn_rngs for independent streams)",
                    )
                )
        return out


class EngineRngRule(Rule):
    """REP004 — execution engines must not construct RNGs internally.

    The batched/compiled engines (``quantum/batched.py``,
    ``quantum/batched_density.py``, ``quantum/program.py``) are pure linear
    algebra: the "seed-identical at any tiling / batching" guarantees hold
    because every random draw happens *outside* them, in simulator read-out
    code fed by one injected generator.  An engine-internal RNG — even a
    seeded one — would consume draws in a batch-shape-dependent order and
    silently break draw-for-draw equivalence.
    """

    code = "REP004"
    name = "engines-no-internal-rng"
    description = "execution engines must receive randomness from callers"

    #: Path suffixes of the engine modules the contract covers.
    ENGINE_MODULES = (
        "quantum/batched.py",
        "quantum/batched_density.py",
        "quantum/program.py",
    )

    #: Helper constructors that would smuggle an RNG into an engine.
    _WRAPPER_CONSTRUCTORS = {"ensure_rng", "spawn_rngs", "spawn_seed_sequences"}

    def applies(self, context: LintContext) -> bool:
        return context.is_library and context.path.endswith(self.ENGINE_MODULES)

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        out: List[Diagnostic] = []
        for call, attr, _ in _find_rng_calls(context):
            out.append(
                self.diagnostic(
                    context,
                    call,
                    f"engine module constructs an RNG via np.random.{attr}; "
                    "engines must stay deterministic and draw-free",
                    hint="sample in the simulator read-out layer and pass "
                    "results (or a generator) into the engine",
                )
            )
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, (ast.Name, ast.Attribute))
            ):
                name = (
                    node.func.id
                    if isinstance(node.func, ast.Name)
                    else node.func.attr
                )
                if name in self._WRAPPER_CONSTRUCTORS:
                    out.append(
                        self.diagnostic(
                            context,
                            node,
                            f"engine module constructs an RNG via {name}(); "
                            "engines must stay deterministic and draw-free",
                            hint="inject the generator from the simulator layer "
                            "instead",
                        )
                    )
        return out
