"""Rule registry of the AST contract linter.

Each rule encodes one contract the batched/sharded execution stack depends
on (see ``docs/static_analysis.md`` for the full catalogue with rationale):

====== ====================================================================
code   contract
====== ====================================================================
REP001 library code never draws OS entropy: no seedless
       ``np.random.default_rng()`` and no global ``np.random.*`` calls
REP002 ``*Spec`` classes stay picklable: no lambdas, locks, or live
       backend/estimator references in their fields
REP003 shared caches route through the locked ``repro.utils.cache.LRUCache``
       instead of ad-hoc module/class-level dicts
REP004 execution engines never construct RNGs internally — randomness is
       injected by callers
REP005 every ``bench_*.py`` records a perf point through the shared
       ``experiments.reporting`` writer
REP106 library code never blocks on ``time.sleep`` outside the documented
       ``simulate_queue_latency`` queue-wait path
REP201 complex dtypes are named only inside the ``repro.arrays`` seam —
       literal ``dtype=complex``/``np.complex128`` bypasses the precision
       config
REP202 engine modules route dense kernels (einsum/matmul/kron/linalg/
       multinomial, ...) through ``repro.arrays``, never ``np.`` directly
====== ====================================================================

``REP000`` is reserved by the driver for malformed suppression comments.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterable, List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, Location, Severity


@dataclasses.dataclass(frozen=True)
class LintContext:
    """One parsed file handed to every applicable rule."""

    path: str  #: normalised, ``/``-separated path (relative when possible)
    source: str
    tree: ast.Module

    @property
    def parts(self) -> tuple:
        return tuple(self.path.split("/"))

    @property
    def basename(self) -> str:
        return self.parts[-1]

    @property
    def is_library(self) -> bool:
        """Whether the file is library code (lives under a ``src`` root)."""
        return "src" in self.parts[:-1]

    @property
    def is_bench(self) -> bool:
        """Whether the file is a benchmark entry point (``bench_*.py``)."""
        return self.basename.startswith("bench_") and self.basename.endswith(".py")

    @property
    def is_test(self) -> bool:
        return "tests" in self.parts[:-1] or self.basename.startswith("test_")


class Rule:
    """Base class: one contract, one stable code."""

    code: str = "REP999"
    name: str = "unnamed"
    description: str = ""
    severity: Severity = Severity.ERROR

    def applies(self, context: LintContext) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def check(self, context: LintContext) -> Iterable[Diagnostic]:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def diagnostic(
        self,
        context: LintContext,
        node: Optional[ast.AST],
        message: str,
        hint: Optional[str] = None,
    ) -> Diagnostic:
        """Build a finding anchored at ``node`` (or the file head)."""
        return Diagnostic(
            code=self.code,
            severity=self.severity,
            location=Location(
                file=context.path,
                line=getattr(node, "lineno", 1) if node is not None else 1,
                column=(getattr(node, "col_offset", 0) + 1) if node is not None else 1,
            ),
            message=message,
            hint=hint,
        )


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    from repro.analysis.rules.arrays import ArraySeamRule, ComplexDtypeLiteralRule
    from repro.analysis.rules.caches import AdHocCacheRule
    from repro.analysis.rules.picklable import SpecPicklableRule
    from repro.analysis.rules.reporting import BenchReportingRule
    from repro.analysis.rules.rng import EngineRngRule, SeedlessRngRule
    from repro.analysis.rules.timing import SleepRule

    return [
        SeedlessRngRule(),
        SpecPicklableRule(),
        AdHocCacheRule(),
        EngineRngRule(),
        BenchReportingRule(),
        SleepRule(),
        ComplexDtypeLiteralRule(),
        ArraySeamRule(),
    ]


def select_rules(codes: Optional[Sequence[str]] = None) -> List[Rule]:
    """The registered rules, optionally filtered to ``codes``."""
    rules = all_rules()
    if codes is None:
        return rules
    wanted = {code.strip().upper() for code in codes if code.strip()}
    unknown = wanted - {rule.code for rule in rules}
    if unknown:
        raise ValueError(
            f"unknown rule code(s) {sorted(unknown)}; "
            f"known: {sorted(rule.code for rule in rules)}"
        )
    return [rule for rule in rules if rule.code in wanted]
