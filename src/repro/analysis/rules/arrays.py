"""Array-API seam rules: REP201 (dtype literals) and REP202 (kernel calls).

PR 8 landed the :mod:`repro.arrays` namespace seam (ROADMAP item 4): one
module owns the canonical ``COMPLEX_DTYPE``/``REAL_DTYPE`` constants, the
configured-precision accessors, and the thin kernel wrappers a CuPy/torch
backend would replace.  The seam only stays a seam if nothing routes around
it — a single literal ``dtype=complex`` allocates a ``complex128`` buffer
that ignores the precision knob, and a single direct ``np.einsum`` in an
engine is a kernel a swapped backend would silently not execute.  These two
rules make the contract machine-checked instead of grep-audited.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import LintContext, Rule
from repro.analysis.rules.rng import _NumpyAliasTracker

#: numpy attribute names that hard-code a complex width.
_COMPLEX_DTYPE_ATTRS = {"complex128", "complex64", "cdouble", "csingle"}

#: Dense kernels that must flow through the ``repro.arrays`` wrappers.
_KERNEL_ATTRS = {
    "einsum",
    "matmul",
    "kron",
    "tensordot",
    "outer",
    "vdot",
    "dot",
    "inner",
    "trace",
}


def _seam_aliases(tree: ast.AST) -> Set[str]:
    """Local names bound to the ``repro.arrays`` module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.arrays":
                    names.add(alias.asname or "repro")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "repro":
                for alias in node.names:
                    if alias.name == "arrays":
                        names.add(alias.asname or "arrays")
    return names


def _complex_literal(node: ast.AST, aliases: _NumpyAliasTracker) -> Optional[str]:
    """A source-level description if ``node`` names a literal complex dtype."""
    if isinstance(node, ast.Name) and node.id == "complex":
        return "complex"
    if (
        isinstance(node, ast.Attribute)
        and node.attr in _COMPLEX_DTYPE_ATTRS
        and isinstance(node.value, ast.Name)
        and node.value.id in aliases.numpy_names
    ):
        return f"{node.value.id}.{node.attr}"
    return None


class ComplexDtypeLiteralRule(Rule):
    """REP201 — complex dtypes are named only inside ``repro.arrays``.

    Flags, in library code outside the seam package:

    * ``dtype=complex`` / ``dtype=np.complex128`` / ``dtype=np.complex64``
      keyword arguments, and
    * ``.astype(complex)`` / ``.astype(np.complex64)`` casts.

    Every such literal pins a width the precision config cannot reach.
    Canonical-width operator constructors import
    :data:`repro.arrays.COMPLEX_DTYPE`; state buffers and application-time
    casts go through ``arrays.zeros``/``arrays.as_complex``.
    """

    code = "REP201"
    name = "no-literal-complex-dtype"
    description = (
        "literal complex dtypes outside repro.arrays bypass the precision "
        "config"
    )

    def applies(self, context: LintContext) -> bool:
        return context.is_library and "arrays" not in context.path.split("/")

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        aliases = _NumpyAliasTracker()
        aliases.visit(context.tree)
        out: List[Diagnostic] = []

        def flag(node: ast.AST, literal: str, via: str) -> None:
            out.append(
                self.diagnostic(
                    context,
                    node,
                    f"literal complex dtype {literal!r} in {via} pins a "
                    "width the repro.arrays precision config cannot change",
                    hint="import COMPLEX_DTYPE (canonical operators) or use "
                    "arrays.zeros/arrays.as_complex (configured state "
                    "buffers) from repro.arrays",
                )
            )

        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "dtype":
                        literal = _complex_literal(keyword.value, aliases)
                        if literal is not None:
                            flag(keyword.value, literal, "a dtype= argument")
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype"
                    and node.args
                ):
                    literal = _complex_literal(node.args[0], aliases)
                    if literal is not None:
                        flag(node, literal, "an .astype() cast")
        return out


class ArraySeamRule(Rule):
    """REP202 — engine modules call kernels through ``repro.arrays`` only.

    In the engine modules (the batched/compiled executors plus the
    per-state simulators and the sampling boundary), flags:

    * direct ``np.<kernel>`` calls for the dense kernels the seam wraps
      (``einsum``, ``matmul``, ``kron``, ``tensordot``, ``outer``,
      ``vdot``, ``dot``, ``inner``, ``trace``),
    * any ``np.linalg.*`` call, and
    * ``.multinomial(...)`` drawn directly on a generator instead of
      through :func:`repro.arrays.multinomial` (which owns the float64
      upcast of the probability vector).

    Structural helpers (``np.asarray``, ``np.zeros``, ``np.moveaxis``,
    ``np.clip``, ...) are allowed: they shape and validate, they do not
    contract.
    """

    code = "REP202"
    name = "engines-use-array-seam"
    description = (
        "engine modules must route dense kernels through repro.arrays"
    )

    #: Path suffixes of the engine modules the seam contract covers.
    ENGINE_MODULES = (
        "quantum/batched.py",
        "quantum/batched_density.py",
        "quantum/program.py",
        "quantum/statevector.py",
        "quantum/density_matrix.py",
        "quantum/measurement.py",
    )

    def applies(self, context: LintContext) -> bool:
        return context.is_library and context.path.endswith(self.ENGINE_MODULES)

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        aliases = _NumpyAliasTracker()
        aliases.visit(context.tree)
        seam = _seam_aliases(context.tree)
        out: List[Diagnostic] = []
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            base = func.value
            if isinstance(base, ast.Name) and base.id in aliases.numpy_names:
                if func.attr in _KERNEL_ATTRS:
                    out.append(
                        self.diagnostic(
                            context,
                            node,
                            f"direct np.{func.attr} call in an engine module "
                            "bypasses the repro.arrays kernel seam",
                            hint=f"call arrays.{func.attr} so an alternative "
                            "backend can intercept the kernel",
                        )
                    )
            elif (
                isinstance(base, ast.Attribute)
                and base.attr == "linalg"
                and isinstance(base.value, ast.Name)
                and base.value.id in aliases.numpy_names
            ):
                out.append(
                    self.diagnostic(
                        context,
                        node,
                        f"direct np.linalg.{func.attr} call in an engine "
                        "module bypasses the repro.arrays kernel seam",
                        hint="route through the repro.arrays wrappers "
                        "(arrays.norm, ...) instead",
                    )
                )
            elif func.attr == "multinomial" and not (
                isinstance(base, ast.Name) and base.id in seam
            ):
                out.append(
                    self.diagnostic(
                        context,
                        node,
                        "direct generator.multinomial call skips the seam's "
                        "float64 upcast of the probability vector",
                        hint="call arrays.multinomial(generator, shots, "
                        "pvals) instead",
                    )
                )
        return out
