"""REP003 — shared caches must route through ``repro.utils.cache.LRUCache``.

PR 2 unified the memoisation caches behind one bounded, locked LRU after
unbounded ad-hoc dicts leaked memory across sweeps, and PR 4 made it
thread-safe because thread-strategy shard workers share builder/estimator
caches.  A new module- or class-level ``_SOMETHING_CACHE = {}`` silently
reopens both holes: it is unbounded, unlocked, and — at class level —
shared across every instance and thread.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import LintContext, Rule

_CACHE_NAME = re.compile(r"cache|memo", re.IGNORECASE)

#: Constructors that build an ad-hoc shared mapping.
_DICT_CONSTRUCTORS = {
    "dict",
    "OrderedDict",
    "defaultdict",
    "WeakKeyDictionary",
    "WeakValueDictionary",
}


def _is_adhoc_mapping(value: Optional[ast.AST]) -> Optional[str]:
    """The constructor name if ``value`` builds a bare mapping, else ``None``."""
    if isinstance(value, ast.Dict):
        return "{}" if not value.keys else None  # a populated literal is a table
    if isinstance(value, ast.Call):
        func = value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in _DICT_CONSTRUCTORS:
            return f"{name}()"
    return None


def _target_names(statement) -> Iterable[str]:
    if isinstance(statement, ast.AnnAssign):
        if isinstance(statement.target, ast.Name):
            yield statement.target.id
        return
    for target in statement.targets:
        if isinstance(target, ast.Name):
            yield target.id


class AdHocCacheRule(Rule):
    """REP003 — no module- or class-level dict caches in library code.

    Flags module-level and class-level assignments of ``{}`` (or
    ``dict()``/``OrderedDict()``/``defaultdict()``/weak dicts) to names
    containing ``cache``/``memo``.  Instance-level caches created in
    ``__init__`` are out of scope — per-instance state is bounded by the
    instance's lifetime — and populated dict literals are lookup tables, not
    caches.  ``repro/utils/cache.py`` itself is exempt (it *implements* the
    sanctioned cache).
    """

    code = "REP003"
    name = "shared-caches-use-lru"
    description = "shared caches must be bounded + locked (utils.cache.LRUCache)"

    def applies(self, context: LintContext) -> bool:
        return context.is_library and not context.path.endswith("utils/cache.py")

    def check(self, context: LintContext) -> Iterable[Diagnostic]:
        out: List[Diagnostic] = []
        scopes = [("module", self._statements(context.tree))]
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                scopes.append((f"class {node.name}", self._statements(node)))
        for scope, statements in scopes:
            for statement in statements:
                constructor = _is_adhoc_mapping(statement.value)
                if constructor is None:
                    continue
                for name in _target_names(statement):
                    if _CACHE_NAME.search(name):
                        out.append(
                            self.diagnostic(
                                context,
                                statement,
                                f"{scope}-level cache '{name} = {constructor}' "
                                "is unbounded, unlocked, and shared across "
                                "threads/instances",
                                hint="use repro.utils.cache.LRUCache (bounded, "
                                "thread-safe, pickle-aware)",
                            )
                        )
        return out

    @staticmethod
    def _statements(node) -> List:
        return [
            statement
            for statement in node.body
            if isinstance(statement, (ast.Assign, ast.AnnAssign))
        ]
