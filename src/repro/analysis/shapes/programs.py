"""VER302 — compiled-program shape consistency with the amplitude layout.

Where :mod:`repro.analysis.shapes.interp` abstracts over *source*, this
module checks the other half of the kernel contract: the **compiled
metadata** of a :class:`~repro.quantum.program.SweepProgram` and (for
density engines) the precomposed step-plan superoperators, against the
amplitude layout the chosen engine declares:

* a statevector engine holds each element as ``2**n`` amplitudes and
  contracts every step through a ``(2**k, 2**k)`` gate matrix;
* a density engine holds ``4**n`` amplitudes (a flattened density matrix)
  and contracts every step through a ``(4**k, 4**k)`` superoperator.

A fixed step whose matrix is non-square, of the wrong power-of-two extent,
or of the wrong rank contracts to an output that no longer re-flattens
into the declared layout — the engines would either raise deep inside an
einsum or, worse, broadcast.  The same applies to a precomposed
superoperator of the wrong block size, and to a read-out wider than the
register it marginalises.  The IR verifier (VER110/VER111/VER120) judges
the *program* in isolation; VER302 judges the *(program, engine)* pair.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, Location, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.quantum.program import SweepProgram

_ENGINE_BASES = {"statevector": 2, "density": 4}


def _diag(message: str, obj: str, hint: Optional[str] = None) -> Diagnostic:
    return Diagnostic(
        code="VER302",
        severity=Severity.ERROR,
        location=Location(obj=obj),
        message=message,
        hint=hint,
    )


def verify_program_shapes(
    program: "SweepProgram",
    *,
    engine: str = "statevector",
    step_plans: Optional[Sequence] = None,
) -> List[Diagnostic]:
    """Check ``program``'s contractions against ``engine``'s amplitude layout.

    ``step_plans`` — when given, the tuple returned by a density engine's
    ``step_plans(program)`` — lets the precomposed superoperators be
    checked against their ``(4**k, 4**k)`` block contract; fixed gate
    matrices on the program itself are always checked against
    ``(2**k, 2**k)``.
    """
    import numpy as np

    if engine not in _ENGINE_BASES:
        raise ValueError(
            f"engine must be one of {sorted(_ENGINE_BASES)}, got {engine!r}"
        )
    base = _ENGINE_BASES[engine]
    out: List[Diagnostic] = []
    n = program.num_qubits
    obj_prefix = f"{program.name}[{engine}]"

    for position, step in enumerate(program.steps):
        obj = f"{obj_prefix}.steps[{position}]({step.name})"
        k = len(step.qubits)
        if step.is_fixed:
            matrix = np.asarray(step.matrix)
            expected = 2**k
            if matrix.ndim != 2 or matrix.shape != (expected, expected):
                out.append(
                    _diag(
                        f"fixed gate matrix has shape {matrix.shape}, but the "
                        f"{k}-qubit contraction must be ({expected}, "
                        f"{expected}) to preserve the {base}**{n} amplitude "
                        "layout",
                        obj,
                        hint="the contraction output would not re-flatten "
                        "into the engine's element layout",
                    )
                )
        if step_plans is not None and position < len(step_plans):
            plan = step_plans[position]
            superop = None
            if isinstance(plan, tuple) and len(plan) == 2:
                candidate = plan[1]
                if hasattr(candidate, "shape"):
                    superop = np.asarray(candidate)
            if superop is not None:
                expected = 4**k
                if superop.ndim != 2 or superop.shape != (expected, expected):
                    out.append(
                        _diag(
                            f"precomposed step superoperator has shape "
                            f"{superop.shape}, but the {k}-qubit density "
                            f"contraction must be ({expected}, {expected}) "
                            f"to preserve the 4**{n} amplitude layout",
                            obj,
                            hint="rebuild the plan; a foreign-block "
                            "superoperator silently breaks the flattened "
                            "density layout",
                        )
                    )
                elif superop.dtype.kind != "c":
                    out.append(
                        _diag(
                            f"precomposed step superoperator has real dtype "
                            f"{superop.dtype}; density contraction operands "
                            "must be complex",
                            obj,
                        )
                    )

    measured = tuple(program.measured_qubits)
    if len(measured) > n:
        out.append(
            _diag(
                f"read-out marginalises {len(measured)} qubits but the "
                f"program register holds {n}; the (elements, 2**"
                f"{len(measured)}) joint-probability buffer cannot be "
                f"produced from a {base}**{n} element layout",
                f"{obj_prefix}.measured_qubits",
            )
        )
    return out


def verify_reference_shapes() -> List[Diagnostic]:
    """Shape-verify the figure suite's representative compiled programs.

    Compiles the same QuClassi discriminator programs as the IR and cost
    reference passes (Iris QC-S/QC-D/QC-E at 4 features, binary-MNIST QC-S
    at 8) and checks each against *both* engine layouts — the density pass
    with the engine's actual precomposed step-plan superoperators, so a
    regression in the superoperator precomposition surfaces as a VER302
    here before any sweep executes.
    """
    import numpy as np

    from repro.core.model import QuClassi
    from repro.quantum.program import DensitySuperoperatorEngine, SweepProgram
    from repro.utils.rng import ensure_rng

    rng = ensure_rng(2022)
    out: List[Diagnostic] = []
    for dataset, num_features, architecture in [
        ("iris", 4, "s"),
        ("iris", 4, "d"),
        ("iris", 4, "e"),
        ("mnist", 8, "s"),
    ]:
        builder = QuClassi(
            num_features=num_features,
            num_classes=2,
            architecture=architecture,
            seed=2022,
        ).builder
        values = rng.uniform(0.0, np.pi, size=len(builder.parameters))
        features = rng.uniform(0.05, 1.0, size=num_features)
        program = SweepProgram.compile(
            builder.build(features, values),
            bind_floats=True,
            name=f"{dataset}-{architecture}:discriminator",
        )
        out.extend(verify_program_shapes(program, engine="statevector"))
        engine = DensitySuperoperatorEngine()
        out.extend(
            verify_program_shapes(
                program, engine="density", step_plans=engine.step_plans(program)
            )
        )
    return out
