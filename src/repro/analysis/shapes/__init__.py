"""Shape/dtype abstract interpretation over engine kernels (VER3xx).

The fourth analysis family of :mod:`repro.analysis` (after the AST
linter, the flow analyzers, and the IR/cost verifiers).  It tracks
symbolic shapes (``batch``, ``2**n``, ``4**n``, tile ``rows x samples``)
and a dtype lattice (``float64 -> complex64 -> complex128`` plus the
*configured* precision of :mod:`repro.arrays`) through the engines'
``einsum``/``matmul``/``kron``/``reshape`` chains:

====== ====================================================================
code   contract
====== ====================================================================
VER301 literal einsum subscripts agree with their operands: group count vs
       operand count, per-group label count vs known operand rank, output
       labels drawn from the inputs, one extent per label
VER302 compiled-program contractions preserve the engine's declared
       amplitude layout: ``(2**k, 2**k)`` gate blocks on statevector
       engines, ``(4**k, 4**k)`` superoperator blocks on density engines,
       read-outs no wider than the register
VER303 no silent complex→real downcast: ``.astype``/``np.asarray`` to a
       real dtype, ``float(...)``, or stores into real buffers applied to
       abstractly complex values (``.real``/``np.abs`` are the sanctioned
       spellings)
VER304 no dtype promotion that breaks a configured ``complex64`` run: a
       kernel mixing a configured-precision operand with a hard 64-bit one
       silently widens single-precision sweeps back to ``complex128``
       (warning)
====== ====================================================================

The AST checks (301/303/304) run over the engine modules the
:mod:`repro.arrays` seam covers — the same module set lint rule REP202
gates — because that is where the interpreter's abstract domain is
precise; elsewhere it would only ever say "unknown".  VER302 runs over
compiled :class:`~repro.quantum.program.SweepProgram` metadata under the
CLI's ``--verify`` flag.  Findings honour the linter's
``# repro: noqa CODE -- why`` suppressions.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, sort_diagnostics
from repro.analysis.lint import (
    apply_suppressions,
    iter_python_files,
    justified_suppression_index,
    merge_suppression_counts,
    normalize_path,
)
from repro.analysis.shapes.interp import AbstractValue, interpret_module
from repro.analysis.shapes.lattice import (
    DType,
    breaks_configured_run,
    promote,
    promote_all,
)
from repro.analysis.shapes.programs import (
    verify_program_shapes,
    verify_reference_shapes,
)

#: Code -> one-line description, mirrored in ``docs/static_analysis.md``.
SHAPE_CODES = {
    "VER301": "einsum subscripts disagree with their operands",
    "VER302": "compiled contraction breaks the declared amplitude layout",
    "VER303": "silent complex-to-real downcast discards imaginary parts",
    "VER304": "promotion breaks a configured single-precision run",
}

#: Path suffixes the AST interpreter covers — the repro.arrays seam's
#: engine modules (kept in sync with lint rule REP202's module set).
ENGINE_MODULE_SUFFIXES = (
    "quantum/batched.py",
    "quantum/batched_density.py",
    "quantum/program.py",
    "quantum/statevector.py",
    "quantum/density_matrix.py",
    "quantum/measurement.py",
)

__all__ = [
    "SHAPE_CODES",
    "ENGINE_MODULE_SUFFIXES",
    "AbstractValue",
    "DType",
    "ShapeResult",
    "analyze_paths",
    "analyze_source",
    "analyze_sources",
    "breaks_configured_run",
    "interpret_module",
    "promote",
    "promote_all",
    "verify_program_shapes",
    "verify_reference_shapes",
]


@dataclasses.dataclass
class ShapeResult:
    """Outcome of one shape-analysis run."""

    diagnostics: List[Diagnostic]
    files_checked: int
    suppressed: int
    suppressed_by_code: Dict[str, int]


def _filter_codes(
    diagnostics: List[Diagnostic], codes: Optional[Sequence[str]]
) -> List[Diagnostic]:
    if codes is None:
        return diagnostics
    wanted = {code.strip().upper() for code in codes if code.strip()}
    unknown = wanted - set(SHAPE_CODES)
    if unknown:
        raise ValueError(
            f"unknown shape analyzer code(s) {sorted(unknown)}; "
            f"known: {sorted(SHAPE_CODES)}"
        )
    return [diag for diag in diagnostics if diag.code in wanted]


def analyze_source(
    source: str,
    path: str,
    codes: Optional[Sequence[str]] = None,
    *,
    root: Optional[str] = None,
) -> Tuple[List[Diagnostic], Dict[str, int]]:
    """Interpret one in-memory module; returns ``(findings, suppressed)``.

    Ungated by path — the corpus tests feed synthetic modules directly.
    A file that does not parse yields no VER3xx findings (the linter
    already reports it as ``REP000``).
    """
    normalized = normalize_path(path, root)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return [], {}
    diagnostics = _filter_codes(interpret_module(tree, normalized), codes)
    kept, suppressed_by_code = apply_suppressions(
        diagnostics, justified_suppression_index(source)
    )
    return kept, suppressed_by_code


def analyze_sources(
    sources: Sequence[Tuple[str, str]], codes: Optional[Sequence[str]] = None
) -> ShapeResult:
    """Run the interpreter over ``(normalised_path, source)`` pairs.

    Only files under :data:`ENGINE_MODULE_SUFFIXES` are interpreted; the
    rest count as checked but produce no findings.
    """
    diagnostics: List[Diagnostic] = []
    suppressed_by_code: Dict[str, int] = {}
    for path, source in sources:
        if not path.endswith(ENGINE_MODULE_SUFFIXES):
            continue
        found, hidden = analyze_source(source, path, codes)
        diagnostics.extend(found)
        merge_suppression_counts(suppressed_by_code, hidden)
    return ShapeResult(
        diagnostics=sort_diagnostics(diagnostics),
        files_checked=len(sources),
        suppressed=sum(suppressed_by_code.values()),
        suppressed_by_code=suppressed_by_code,
    )


def analyze_paths(
    paths: Sequence[str],
    codes: Optional[Sequence[str]] = None,
    *,
    root: Optional[str] = None,
) -> ShapeResult:
    """Run the shape interpreter over every Python file under ``paths``."""
    sources: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            sources.append((normalize_path(path, root), handle.read()))
    return analyze_sources(sources, codes)
