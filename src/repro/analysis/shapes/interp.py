"""Abstract interpreter over engine ASTs: VER301, VER303, VER304.

The interpreter executes a module's functions and methods abstractly,
tracking an :class:`AbstractValue` — a symbolic shape (tuple of dims:
concrete ints, symbolic atoms like ``"batch_size"`` or ``"2 ** n"``, or
``None`` for an unknown extent) and a point of the
:mod:`~repro.analysis.shapes.lattice` dtype lattice — through
``einsum``/``matmul``/``kron``/``reshape`` chains, both the direct ``np.``
spellings and the :mod:`repro.arrays` seam wrappers.

It is deliberately *conservative*: anything it cannot prove — a call into
another module, a runtime-built f-string einsum subscript, a reshape to a
computed tuple — degrades to "unknown" and produces **no** finding.  The
three AST-level checks therefore only fire on statically evident
contract violations:

* **VER301** — a literal einsum subscript whose comma groups disagree
  with the operand count, whose per-operand labels disagree with a known
  operand rank, whose output names a label absent from the inputs, or
  whose repeated label binds two different concrete extents.
* **VER303** — a silent complex→real downcast: ``.astype``/``np.asarray``
  to a real dtype, ``float(...)``, or a store into a known-real buffer,
  applied to an abstractly complex value.  (``.real``/``np.real``/
  ``np.abs`` are the sanctioned spellings and simply produce real
  values.)
* **VER304** — a kernel mixing a *configured*-precision operand
  (``arrays.zeros``/``as_complex``/``complex_dtype()``) with a hard
  64-bit one: invisible under double precision, but it silently widens a
  ``set_precision("single")`` run back to ``complex128``
  (:func:`~repro.analysis.shapes.lattice.breaks_configured_run`).

Class bodies get a light field analysis: ``self.X`` assignments in
``__init__`` seed per-class field values, so methods interpret
``self._amplitudes`` / ``self._matrices`` with the shapes and dtypes
their constructors establish.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Location, Severity
from repro.analysis.shapes.lattice import (
    BOOL,
    COMPLEX64,
    COMPLEX128,
    CONFIG_COMPLEX,
    CONFIG_REAL,
    FLOAT32,
    FLOAT64,
    INT64,
    WEAK_COMPLEX,
    WEAK_FLOAT,
    WEAK_INT,
    DType,
    breaks_configured_run,
    promote_all,
)

#: One shape dimension: a concrete int, a symbolic atom, or unknown.
Dim = Optional[object]


@dataclasses.dataclass(frozen=True)
class AbstractValue:
    """What the interpreter knows about one runtime value."""

    shape: Optional[Tuple[Dim, ...]] = None  #: ``None`` = unknown rank
    dtype: Optional[DType] = None

    @property
    def rank(self) -> Optional[int]:
        return None if self.shape is None else len(self.shape)


UNKNOWN = AbstractValue()

#: Kernels the VER304 promotion check covers (np.* and arrays.* alike).
_KERNEL_NAMES = {
    "einsum",
    "matmul",
    "kron",
    "tensordot",
    "outer",
    "vdot",
    "dot",
    "inner",
}

#: dtype-name → lattice point for literal dtype expressions.
_DTYPE_NAMES = {
    "complex": COMPLEX128,
    "complex128": COMPLEX128,
    "cdouble": COMPLEX128,
    "complex64": COMPLEX64,
    "csingle": COMPLEX64,
    "float": FLOAT64,
    "float64": FLOAT64,
    "double": FLOAT64,
    "float32": FLOAT32,
    "single": FLOAT32,
    "int": INT64,
    "int64": INT64,
    "int32": INT64,
    "bool": BOOL,
    "bool_": BOOL,
    "COMPLEX_DTYPE": COMPLEX128,
    "REAL_DTYPE": FLOAT64,
}


class _Imports(ast.NodeVisitor):
    """Which local names mean numpy, and which mean the repro.arrays seam."""

    def __init__(self) -> None:
        self.numpy: Set[str] = set()
        self.seam: Set[str] = set()
        #: names imported directly from repro.arrays (``as_complex``, ...)
        self.seam_names: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy":
                self.numpy.add(alias.asname or "numpy")
            elif alias.name == "repro.arrays" and alias.asname:
                self.seam.add(alias.asname)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "repro":
            for alias in node.names:
                if alias.name == "arrays":
                    self.seam.add(alias.asname or "arrays")
        elif node.module == "repro.arrays":
            for alias in node.names:
                self.seam_names[alias.asname or alias.name] = alias.name


def _dim_of(expr: ast.AST) -> Dim:
    """A dimension expression as an int, a symbolic atom, or unknown."""
    if isinstance(expr, ast.Constant):
        return expr.value if isinstance(expr.value, int) else None
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        inner = _dim_of(expr.operand)
        return -inner if isinstance(inner, int) else None
    if isinstance(expr, (ast.Name, ast.Attribute, ast.BinOp)):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                return None  # a computed extent, not a stable atom
        try:
            return ast.unparse(expr)
        except Exception:  # pragma: no cover - unparse is total on these
            return None
    return None


def _shape_of_arg(expr: ast.AST) -> Optional[Tuple[Dim, ...]]:
    """The shape a ``zeros``/``empty``-style size argument denotes."""
    if isinstance(expr, (ast.Tuple, ast.List)):
        return tuple(_dim_of(element) for element in expr.elts)
    dim = _dim_of(expr)
    return None if dim is None else (dim,)


def _dims_equal(a: Dim, b: Dim) -> Optional[bool]:
    """Tri-state dim comparison: True/False when provable, else None."""
    if a is None or b is None:
        return None
    if isinstance(a, int) != isinstance(b, int):
        return None  # an atom may or may not equal a concrete extent
    return a == b


class _ModuleInterpreter:
    """One module's abstract execution; collects VER301/303/304 findings."""

    def __init__(self, tree: ast.Module, path: str) -> None:
        self.tree = tree
        self.path = path
        self.imports = _Imports()
        self.imports.visit(tree)
        self.diagnostics: List[Diagnostic] = []

    # ------------------------------------------------------------------ #
    # Findings
    # ------------------------------------------------------------------ #
    def _diag(
        self, code: str, node: ast.AST, message: str, severity: Severity
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                code=code,
                severity=severity,
                location=Location(
                    file=self.path,
                    line=getattr(node, "lineno", 1),
                    column=getattr(node, "col_offset", 0) + 1,
                ),
                message=message,
            )
        )

    def _check_promotion(
        self, node: ast.AST, what: str, operands: Sequence[AbstractValue]
    ) -> None:
        dtypes = [value.dtype for value in operands]
        if any(dtype is None for dtype in dtypes):
            return
        if breaks_configured_run(dtypes):
            described = " and ".join(str(dtype) for dtype in dtypes)
            self._diag(
                "VER304",
                node,
                f"{what} mixes {described}: under set_precision('single') "
                "the result silently promotes to 64-bit and ignores the "
                "precision config",
                Severity.WARNING,
            )

    def _check_downcast(
        self, node: ast.AST, value: AbstractValue, target: Optional[DType], what: str
    ) -> None:
        if (
            target is not None
            and value.dtype is not None
            and value.dtype.is_complex
            and not target.is_complex
        ):
            self._diag(
                "VER303",
                node,
                f"{what} silently casts an abstractly complex value to "
                f"{target}, discarding imaginary parts; take .real/np.abs "
                "explicitly if intended",
                Severity.ERROR,
            )

    # ------------------------------------------------------------------ #
    # dtype / call-target resolution
    # ------------------------------------------------------------------ #
    def _dtype_literal(self, expr: Optional[ast.AST]) -> Optional[DType]:
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.imports.seam_names:
                return _DTYPE_NAMES.get(self.imports.seam_names[expr.id])
            return _DTYPE_NAMES.get(expr.id)
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            base = expr.value.id
            if base in self.imports.numpy or base in self.imports.seam:
                return _DTYPE_NAMES.get(expr.attr)
        if isinstance(expr, ast.Call):
            target = self._seam_call_name(expr)
            if target == "complex_dtype":
                return CONFIG_COMPLEX
            if target == "real_dtype":
                return CONFIG_REAL
        return None

    def _numpy_call_name(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.imports.numpy
        ):
            return func.attr
        return None

    def _linalg_call_name(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "linalg"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in self.imports.numpy
        ):
            return func.attr
        return None

    def _seam_call_name(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.imports.seam
        ):
            return func.attr
        if isinstance(func, ast.Name) and func.id in self.imports.seam_names:
            return self.imports.seam_names[func.id]
        return None

    def _keyword(self, call: ast.Call, name: str) -> Optional[ast.AST]:
        for keyword in call.keywords:
            if keyword.arg == name:
                return keyword.value
        return None

    # ------------------------------------------------------------------ #
    # Expression evaluation
    # ------------------------------------------------------------------ #
    def _eval(self, expr: ast.AST, env: Dict[str, AbstractValue]) -> AbstractValue:
        if isinstance(expr, ast.Constant):
            value = expr.value
            if isinstance(value, bool):
                return AbstractValue((), BOOL)
            if isinstance(value, int):
                return AbstractValue((), WEAK_INT)
            if isinstance(value, float):
                return AbstractValue((), WEAK_FLOAT)
            if isinstance(value, complex):
                return AbstractValue((), WEAK_COMPLEX)
            return UNKNOWN
        if isinstance(expr, ast.Name):
            return env.get(expr.id, UNKNOWN)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr, env)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand, env)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr, env)
        if isinstance(expr, ast.Compare):
            for side in [expr.left] + list(expr.comparators):
                self._eval(side, env)
            return AbstractValue(None, BOOL)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, env)
            a = self._eval(expr.body, env)
            b = self._eval(expr.orelse, env)
            return a if a == b else UNKNOWN
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                self._eval(value, env)
            return UNKNOWN
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                self._eval(element, env)
            return UNKNOWN
        if isinstance(expr, ast.JoinedStr):
            return UNKNOWN
        return UNKNOWN

    def _eval_attribute(
        self, expr: ast.Attribute, env: Dict[str, AbstractValue]
    ) -> AbstractValue:
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            fields = env.get("__fields__")
            if isinstance(fields, dict):
                return fields.get(expr.attr, UNKNOWN)
            return UNKNOWN
        base = self._eval(expr.value, env)
        if expr.attr == "T":
            shape = None if base.shape is None else tuple(reversed(base.shape))
            return AbstractValue(shape, base.dtype)
        if expr.attr in ("real", "imag"):
            dtype = base.dtype
            if dtype is not None and dtype.is_complex:
                dtype = DType("float", dtype.width)
            return AbstractValue(base.shape, dtype)
        return UNKNOWN

    def _eval_subscript(
        self, expr: ast.Subscript, env: Dict[str, AbstractValue]
    ) -> AbstractValue:
        base = self._eval(expr.value, env)
        index = expr.slice
        if base.shape is not None:
            if isinstance(index, ast.Slice):
                return base
            if isinstance(index, ast.Constant) and isinstance(index.value, int):
                return AbstractValue(base.shape[1:], base.dtype)
            if isinstance(index, ast.Tuple) and all(
                isinstance(element, ast.Slice) for element in index.elts
            ):
                return base
        return AbstractValue(None, base.dtype)

    def _eval_binop(
        self, expr: ast.BinOp, env: Dict[str, AbstractValue]
    ) -> AbstractValue:
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if isinstance(expr.op, ast.MatMult):
            self._check_promotion(expr, "matrix product (@)", (left, right))
            return self._matmul_result(left, right)
        if isinstance(expr.op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow)):
            if left.dtype is not None and right.dtype is not None:
                self._check_promotion(expr, "arithmetic", (left, right))
                dtype = promote_all((left.dtype, right.dtype))
                if isinstance(expr.op, ast.Div) and dtype is not None and not dtype.is_inexact:
                    dtype = FLOAT64 if dtype.width else WEAK_FLOAT
                shape = left.shape if left.shape == right.shape else None
                if left.shape == ():
                    shape = right.shape
                elif right.shape == ():
                    shape = left.shape
                return AbstractValue(shape, dtype)
        return UNKNOWN

    def _matmul_result(
        self, left: AbstractValue, right: AbstractValue
    ) -> AbstractValue:
        dtype = (
            promote_all((left.dtype, right.dtype))
            if left.dtype is not None and right.dtype is not None
            else None
        )
        if (
            left.shape is not None
            and right.shape is not None
            and len(left.shape) >= 2
            and len(right.shape) >= 2
        ):
            shape = left.shape[:-1] + right.shape[-1:]
            return AbstractValue(shape, dtype)
        return AbstractValue(None, dtype)

    # -------------------------- calls --------------------------------- #
    def _eval_call(
        self, call: ast.Call, env: Dict[str, AbstractValue]
    ) -> AbstractValue:
        args = [self._eval(arg, env) for arg in call.args]
        for keyword in call.keywords:
            self._eval(keyword.value, env)

        np_name = self._numpy_call_name(call)
        seam_name = self._seam_call_name(call)
        linalg_name = self._linalg_call_name(call)

        if isinstance(call.func, ast.Name):
            if call.func.id == "float" and args:
                self._check_downcast(call, args[0], FLOAT64, "float(...)")
                return AbstractValue((), WEAK_FLOAT)
            if call.func.id == "complex" and args:
                return AbstractValue((), WEAK_COMPLEX)
            if call.func.id in ("int", "len", "round"):
                return AbstractValue((), WEAK_INT)
            if call.func.id == "abs" and args:
                return self._abs_of(args[0])

        if linalg_name is not None:
            return self._norm_like(call, args)
        if np_name is not None and seam_name is None:
            return self._eval_numpy_call(call, np_name, args, env)
        if seam_name is not None:
            return self._eval_seam_call(call, seam_name, args, env)

        # Method calls on tracked values (x.reshape, x.astype, ...).
        if isinstance(call.func, ast.Attribute) and not (
            isinstance(call.func.value, ast.Name)
            and call.func.value.id == "self"
        ):
            receiver = self._eval(call.func.value, env)
            return self._eval_method_call(call, call.func.attr, receiver, env)
        return UNKNOWN

    def _abs_of(self, value: AbstractValue) -> AbstractValue:
        dtype = value.dtype
        if dtype is not None and dtype.is_complex:
            dtype = DType("float", dtype.width)
        return AbstractValue(value.shape, dtype)

    def _norm_like(self, call: ast.Call, args: List[AbstractValue]) -> AbstractValue:
        """``np.linalg.norm`` / ``arrays.norm``: real scalar (or reduced)."""
        operand = args[0] if args else UNKNOWN
        dtype = operand.dtype
        if dtype is not None and dtype.is_complex:
            dtype = DType("float", dtype.width)
        if self._keyword(call, "axis") is None and len(call.args) < 2:
            return AbstractValue((), dtype)
        return AbstractValue(None, dtype)

    def _conversion(
        self,
        call: ast.Call,
        operand: AbstractValue,
        dtype_expr: Optional[ast.AST],
        what: str,
    ) -> AbstractValue:
        target = self._dtype_literal(dtype_expr)
        if target is None and dtype_expr is not None:
            return AbstractValue(operand.shape, None)
        if target is None:
            return operand
        self._check_downcast(call, operand, target, what)
        return AbstractValue(operand.shape, target)

    def _eval_numpy_call(
        self,
        call: ast.Call,
        name: str,
        args: List[AbstractValue],
        env: Dict[str, AbstractValue],
    ) -> AbstractValue:
        dtype_expr = self._keyword(call, "dtype")
        if name in ("zeros", "ones", "empty", "full"):
            shape = _shape_of_arg(call.args[0]) if call.args else None
            dtype = self._dtype_literal(dtype_expr) if dtype_expr is not None else FLOAT64
            return AbstractValue(shape, dtype)
        if name in ("zeros_like", "empty_like", "ones_like"):
            operand = args[0] if args else UNKNOWN
            return AbstractValue(operand.shape, operand.dtype)
        if name == "eye":
            dim = _dim_of(call.args[0]) if call.args else None
            dtype = self._dtype_literal(dtype_expr) if dtype_expr is not None else FLOAT64
            return AbstractValue((dim, dim), dtype)
        if name in ("asarray", "array", "ascontiguousarray", "asanyarray"):
            operand = args[0] if args else UNKNOWN
            return self._conversion(call, operand, dtype_expr, f"np.{name}(dtype=...)")
        if name == "einsum":
            return self._eval_einsum(call, args, env)
        if name in _KERNEL_NAMES:
            return self._eval_kernel(call, name, args)
        if name in ("real", "imag"):
            operand = args[0] if args else UNKNOWN
            return self._abs_of(operand)
        if name in ("abs", "absolute"):
            return self._abs_of(args[0] if args else UNKNOWN)
        if name in ("conj", "conjugate", "clip", "sqrt", "moveaxis"):
            operand = args[0] if args else UNKNOWN
            if name == "moveaxis":
                return AbstractValue(None, operand.dtype) if operand.shape else operand
            return operand
        if name == "transpose":
            operand = args[0] if args else UNKNOWN
            if len(call.args) == 1 and self._keyword(call, "axes") is None:
                shape = None if operand.shape is None else tuple(reversed(operand.shape))
                return AbstractValue(shape, operand.dtype)
            shape = None if operand.shape is None else tuple([None] * len(operand.shape))
            return AbstractValue(shape, operand.dtype)
        if name in ("allclose", "isclose", "all", "any", "isfinite"):
            return AbstractValue(None, BOOL)
        if name in ("stack", "concatenate"):
            return UNKNOWN
        return UNKNOWN

    def _eval_seam_call(
        self,
        call: ast.Call,
        name: str,
        args: List[AbstractValue],
        env: Dict[str, AbstractValue],
    ) -> AbstractValue:
        if name == "zeros":
            shape = _shape_of_arg(call.args[0]) if call.args else None
            dtype_expr = self._keyword(call, "dtype")
            dtype = CONFIG_COMPLEX if dtype_expr is None else self._dtype_literal(dtype_expr)
            return AbstractValue(shape, dtype)
        if name == "eye":
            dim = _dim_of(call.args[0]) if call.args else None
            return AbstractValue((dim, dim), CONFIG_COMPLEX)
        if name == "as_complex":
            operand = args[0] if args else UNKNOWN
            return AbstractValue(operand.shape, CONFIG_COMPLEX)
        if name == "as_real":
            operand = args[0] if args else UNKNOWN
            return AbstractValue(operand.shape, CONFIG_REAL)
        if name == "einsum":
            return self._eval_einsum(call, args, env)
        if name in _KERNEL_NAMES:
            return self._eval_kernel(call, name, args)
        if name == "trace":
            operand = args[0] if args else UNKNOWN
            return AbstractValue((), operand.dtype)
        if name == "norm":
            return self._norm_like(call, args)
        if name == "multinomial":
            return AbstractValue(None, INT64)
        return UNKNOWN

    def _eval_method_call(
        self,
        call: ast.Call,
        name: str,
        receiver: AbstractValue,
        env: Dict[str, AbstractValue],
    ) -> AbstractValue:
        if name == "reshape":
            return AbstractValue(self._reshape_shape(call), receiver.dtype)
        if name == "astype" and call.args:
            return self._conversion(call, receiver, call.args[0], ".astype(...)")
        if name in ("conj", "conjugate", "copy"):
            return receiver
        if name == "ravel":
            return AbstractValue((None,), receiver.dtype)
        if name == "transpose":
            if not call.args:
                shape = (
                    None if receiver.shape is None else tuple(reversed(receiver.shape))
                )
                return AbstractValue(shape, receiver.dtype)
            shape = (
                None
                if receiver.shape is None
                else tuple([None] * len(receiver.shape))
            )
            return AbstractValue(shape, receiver.dtype)
        if name == "sum":
            axis = self._keyword(call, "axis")
            if axis is None and call.args:
                axis = call.args[0]
            if axis is None:
                return AbstractValue((), receiver.dtype)
            if (
                isinstance(axis, ast.Constant)
                and isinstance(axis.value, int)
                and receiver.shape is not None
            ):
                reduced = len(receiver.shape) - 1
                return AbstractValue(tuple([None] * reduced), receiver.dtype)
            return AbstractValue(None, receiver.dtype)
        if name == "item":
            return AbstractValue((), receiver.dtype)
        if name in ("mean", "max", "min"):
            return AbstractValue(None, receiver.dtype)
        return UNKNOWN

    def _reshape_shape(self, call: ast.Call) -> Optional[Tuple[Dim, ...]]:
        if not call.args:
            return None
        if len(call.args) == 1:
            arg = call.args[0]
            if isinstance(arg, (ast.Tuple, ast.List)):
                return tuple(_dim_of(element) for element in arg.elts)
            if isinstance(arg, ast.Constant) or (
                isinstance(arg, ast.UnaryOp) and isinstance(arg.op, ast.USub)
            ):
                dim = _dim_of(arg)
                return None if dim is None else (dim,)
            return None  # a computed shape tuple — rank unknown
        dims = tuple(_dim_of(arg) for arg in call.args)
        return dims

    # -------------------------- kernels -------------------------------- #
    def _eval_kernel(
        self, call: ast.Call, name: str, args: List[AbstractValue]
    ) -> AbstractValue:
        operands = args[:2] if name != "tensordot" else args[:2]
        self._check_promotion(call, f"{name} kernel", operands)
        dtype = (
            promote_all([operand.dtype for operand in operands])
            if operands and all(operand.dtype is not None for operand in operands)
            else None
        )
        if name == "matmul" and len(operands) == 2:
            return self._matmul_result(
                AbstractValue(operands[0].shape, dtype),
                AbstractValue(operands[1].shape, dtype),
            )
        if name == "kron" and len(operands) == 2:
            a, b = operands[0].shape, operands[1].shape
            if a is not None and b is not None and len(a) == 2 and len(b) == 2:
                return AbstractValue(
                    (self._dim_product(a[0], b[0]), self._dim_product(a[1], b[1])),
                    dtype,
                )
            return AbstractValue(None, dtype)
        if name == "outer" and len(operands) == 2:
            return AbstractValue((None, None), dtype)
        if name in ("vdot", "dot", "inner", "trace"):
            return AbstractValue((), dtype)
        return AbstractValue(None, dtype)

    @staticmethod
    def _dim_product(a: Dim, b: Dim) -> Dim:
        if a is None or b is None:
            return None
        if isinstance(a, int) and isinstance(b, int):
            return a * b
        return f"({a})*({b})"

    def _eval_einsum(
        self, call: ast.Call, args: List[AbstractValue], env: Dict[str, AbstractValue]
    ) -> AbstractValue:
        if not call.args:
            return UNKNOWN
        subscript_expr = call.args[0]
        operands = args[1:]
        operand_exprs = call.args[1:]
        self._check_promotion(call, "einsum kernel", operands) if operands and all(
            o.dtype is not None for o in operands
        ) else None
        dtype = (
            promote_all([operand.dtype for operand in operands])
            if operands and all(operand.dtype is not None for operand in operands)
            else None
        )
        if not (
            isinstance(subscript_expr, ast.Constant)
            and isinstance(subscript_expr.value, str)
        ):
            return AbstractValue(None, dtype)  # runtime-built subscripts: skip
        subscripts = subscript_expr.value.replace(" ", "")
        if "->" in subscripts:
            lhs, out = subscripts.split("->", 1)
        else:
            lhs, out = subscripts, None
        groups = lhs.split(",")
        if any(isinstance(expr, ast.Starred) for expr in operand_exprs):
            return AbstractValue(None, dtype)
        if len(groups) != len(operand_exprs):
            self._diag(
                "VER301",
                call,
                f"einsum subscript {subscripts!r} names {len(groups)} "
                f"operand(s) but the call passes {len(operand_exprs)}",
                Severity.ERROR,
            )
            return AbstractValue(None, dtype)
        label_dims: Dict[str, Dim] = {}
        for group, operand in zip(groups, operands):
            if "..." in group:
                continue
            if operand.shape is None:
                continue
            if len(group) != len(operand.shape):
                self._diag(
                    "VER301",
                    call,
                    f"einsum group {group!r} of {subscripts!r} has "
                    f"{len(group)} subscript(s) but its operand has rank "
                    f"{len(operand.shape)}",
                    Severity.ERROR,
                )
                continue
            for label, dim in zip(group, operand.shape):
                if dim is None:
                    continue
                known = label_dims.get(label)
                if known is None:
                    label_dims[label] = dim
                elif _dims_equal(known, dim) is False:
                    self._diag(
                        "VER301",
                        call,
                        f"einsum label {label!r} of {subscripts!r} binds "
                        f"extent {known} and extent {dim} at once",
                        Severity.ERROR,
                    )
        if out is not None:
            input_labels = set(lhs.replace(",", "").replace(".", ""))
            for label in out:
                if label != "." and label not in input_labels:
                    self._diag(
                        "VER301",
                        call,
                        f"einsum output label {label!r} of {subscripts!r} "
                        "does not appear in any input group",
                        Severity.ERROR,
                    )
            if "..." not in out and all(
                operand.shape is not None for operand in operands
            ):
                shape = tuple(label_dims.get(label) for label in out)
                return AbstractValue(shape, dtype)
        return AbstractValue(None, dtype)

    # ------------------------------------------------------------------ #
    # Statement execution
    # ------------------------------------------------------------------ #
    def _exec_block(
        self, statements: Sequence[ast.stmt], env: Dict[str, AbstractValue]
    ) -> None:
        for statement in statements:
            self._exec_statement(statement, env)

    def _exec_statement(self, statement: ast.stmt, env: Dict[str, AbstractValue]) -> None:
        if isinstance(statement, ast.Assign):
            value = self._eval(statement.value, env)
            for target in statement.targets:
                self._assign(target, value, env)
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                value = self._eval(statement.value, env)
                self._assign(statement.target, value, env)
        elif isinstance(statement, ast.AugAssign):
            current = self._eval(statement.target, env)
            value = self._eval(statement.value, env)
            merged = (
                AbstractValue(
                    current.shape if current.shape == value.shape else current.shape,
                    promote_all((current.dtype, value.dtype))
                    if current.dtype is not None and value.dtype is not None
                    else None,
                )
            )
            self._assign(statement.target, merged, env)
        elif isinstance(statement, (ast.Expr, ast.Return)):
            if getattr(statement, "value", None) is not None:
                self._eval(statement.value, env)
        elif isinstance(statement, ast.If):
            self._exec_branches(env, statement.body, statement.orelse)
        elif isinstance(statement, (ast.For, ast.While)):
            if isinstance(statement, ast.For):
                self._eval(statement.iter, env)
                self._assign(statement.target, UNKNOWN, env)
            else:
                self._eval(statement.test, env)
            self._exec_branches(env, statement.body, statement.orelse)
        elif isinstance(statement, ast.With):
            for item in statement.items:
                self._eval(item.context_expr, env)
            self._exec_block(statement.body, env)
        elif isinstance(statement, ast.Try):
            handler_bodies = [handler.body for handler in statement.handlers]
            self._exec_branches(env, statement.body, *handler_bodies)
            self._exec_block(statement.finalbody, env)
        elif isinstance(statement, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.expr):
                    self._eval(child, env)
        # nested defs/classes and imports are not executed

    def _exec_branches(
        self, env: Dict[str, AbstractValue], *branches: Sequence[ast.stmt]
    ) -> None:
        snapshots = []
        for body in branches:
            local = dict(env)
            self._exec_block(body, local)
            snapshots.append(local)
        keys = set()
        for snapshot in snapshots:
            keys.update(snapshot)
        keys.update(env)
        for key in keys:
            if key == "__fields__":
                continue
            values = [snapshot.get(key, env.get(key, UNKNOWN)) for snapshot in snapshots]
            first = values[0]
            if all(value == first for value in values):
                env[key] = first
            else:
                shapes = {value.shape for value in values}
                dtypes = {value.dtype for value in values}
                env[key] = AbstractValue(
                    shapes.pop() if len(shapes) == 1 else None,
                    dtypes.pop() if len(dtypes) == 1 else None,
                )

    def _assign(
        self, target: ast.AST, value: AbstractValue, env: Dict[str, AbstractValue]
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                fields = env.get("__fields__")
                if isinstance(fields, dict):
                    fields[target.attr] = value
        elif isinstance(target, ast.Subscript):
            buffer = self._eval(target.value, env)
            if (
                buffer.dtype is not None
                and value.dtype is not None
                and value.dtype.is_complex
                and not buffer.dtype.is_complex
            ):
                self._diag(
                    "VER303",
                    target,
                    f"storing an abstractly complex value into a {buffer.dtype} "
                    "buffer silently discards imaginary parts",
                    Severity.ERROR,
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, UNKNOWN, env)

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def _run_function(
        self, function: ast.FunctionDef, fields: Optional[Dict[str, AbstractValue]]
    ) -> None:
        env: Dict[str, AbstractValue] = {}
        if fields is not None:
            env["__fields__"] = fields  # type: ignore[assignment]
        self._exec_block(function.body, env)

    def run(self) -> List[Diagnostic]:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._run_function(node, None)
            elif isinstance(node, ast.ClassDef):
                self._run_class(node)
        return self.diagnostics

    def _run_class(self, klass: ast.ClassDef) -> None:
        methods = [
            node
            for node in klass.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        fields: Dict[str, AbstractValue] = {}
        for method in methods:
            if method.name == "__init__":
                # Seed per-class field knowledge from the constructor; a
                # throwaway diagnostics run would double-report, so record
                # into the same list (the constructor is executed once).
                self._run_function(method, fields)
        for method in methods:
            if method.name == "__init__":
                continue
            self._run_function(method, dict(fields))


def interpret_module(tree: ast.Module, path: str) -> List[Diagnostic]:
    """Run the abstract interpreter over one parsed module."""
    return _ModuleInterpreter(tree, path).run()
