"""Abstract dtype lattice for the VER3xx shape/dtype interpreter.

The lattice models the three distinctions the kernel-contract checks need:

* **kind** — ``bool < int < float < complex``, numpy's promotion order.
* **width** — ``32`` or ``64`` for a hard-coded dtype; ``None`` for a
  *configured* dtype (``repro.arrays.complex_dtype()``: 32 under the
  single-precision mode, 64 under double); ``0`` for a *weak* Python
  scalar, which adopts the other operand's width (NEP 50 semantics).
* the derived question VER304 asks: would this operation widen a
  configured single-precision run back to 64-bit?  That happens exactly
  when a configured-width operand meets a hard 64-bit one — under double
  the promotion is invisible, under single it silently doubles memory and
  discards the precision knob (:func:`breaks_configured_run`).

Integers promote like hard 64-bit values when mixed with inexact dtypes
(``int64 + float32 -> float64`` in numpy), so ``INT64`` carries width 64
and weak Python ints width 0.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

#: Promotion order of abstract kinds.
KIND_ORDER = ("bool", "int", "float", "complex")


@dataclasses.dataclass(frozen=True)
class DType:
    """One point of the abstract dtype lattice."""

    kind: str
    #: ``64``/``32`` hard widths, ``None`` = configured, ``0`` = weak scalar.
    width: Optional[int]

    @property
    def is_inexact(self) -> bool:
        return self.kind in ("float", "complex")

    @property
    def is_complex(self) -> bool:
        return self.kind == "complex"

    @property
    def is_configured(self) -> bool:
        return self.width is None

    def __str__(self) -> str:
        if self.width is None:
            return f"configured-{self.kind}"
        if self.width == 0:
            return f"weak-{self.kind}"
        bits = self.width * (2 if self.kind == "complex" else 1)
        return f"{self.kind}{bits}"


BOOL = DType("bool", 0)
WEAK_INT = DType("int", 0)
WEAK_FLOAT = DType("float", 0)
WEAK_COMPLEX = DType("complex", 0)
INT64 = DType("int", 64)
FLOAT32 = DType("float", 32)
FLOAT64 = DType("float", 64)
COMPLEX64 = DType("complex", 32)
COMPLEX128 = DType("complex", 64)
CONFIG_REAL = DType("float", None)
CONFIG_COMPLEX = DType("complex", None)


def _effective_width(dtype: DType) -> Optional[int]:
    """The width a dtype contributes to inexact promotion.

    Integer arrays promote to 64-bit inexact results regardless of the
    inexact operand's width (numpy: ``int64 + float32 -> float64``); weak
    scalars contribute nothing (width 0) and configured widths stay
    symbolic (``None``).
    """
    if dtype.kind in ("bool", "int"):
        return 64 if dtype.width else 0
    return dtype.width


def _combine_widths(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a == 0:
        return b
    if b == 0:
        return a
    if a is None:
        # configured ⊔ 32 stays configured (the configured width is >= 32
        # in both modes); configured ⊔ 64 is pinned to hard 64.
        return None if b in (None, 32) else 64
    if b is None:
        return None if a == 32 else 64
    return max(a, b)


def promote(a: DType, b: DType) -> DType:
    """The result dtype of a binary kernel over operands ``a`` and ``b``."""
    kind = KIND_ORDER[max(KIND_ORDER.index(a.kind), KIND_ORDER.index(b.kind))]
    width = _combine_widths(_effective_width(a), _effective_width(b))
    if kind in ("bool", "int"):
        return DType(kind, 64 if width else 0)
    return DType(kind, width)


def promote_all(dtypes: Iterable[DType]) -> Optional[DType]:
    """Fold :func:`promote` over ``dtypes`` (``None`` for an empty sequence)."""
    result: Optional[DType] = None
    for dtype in dtypes:
        result = dtype if result is None else promote(result, dtype)
    return result


def breaks_configured_run(dtypes: Iterable[DType]) -> bool:
    """Whether promoting ``dtypes`` widens a single-precision run to 64-bit.

    True exactly when a configured-width operand meets a hard 64-bit
    inexact (or integer-array) operand: under ``set_precision("single")``
    the configured side is 32-bit, so the promotion silently produces a
    ``float64``/``complex128`` result that no longer honours the knob.
    """
    dtypes = list(dtypes)
    widths = [_effective_width(dtype) for dtype in dtypes]
    return None in widths and 64 in widths
