"""Command-line entry point: ``python -m repro.analysis``.

Runs the AST contract linter over source trees (and, with ``--verify``, the
IR verifier over the figure suite's representative compiled programs) and
reports every finding through the shared diagnostic pipeline::

    python -m repro.analysis src benchmarks            # lint, text output
    python -m repro.analysis --format json             # default paths, JSON
    python -m repro.analysis src --select REP001,REP003
    python -m repro.analysis --verify                  # + IR verification

Exit codes: ``0`` when no error-severity findings survive suppression,
``1`` when at least one does, ``2`` on usage errors (unknown path or rule).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, has_errors
from repro.analysis.lint import lint_paths
from repro.analysis.report import findings_payload, format_text_report
from repro.analysis.rules import select_rules

#: Paths tried (if they exist) when the CLI is invoked without any.
DEFAULT_PATHS = ("src", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static analysis for the repro stack: AST contract linter "
            "(REP001-REP005) and SweepProgram IR verifier (VERxxx)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src benchmarks, "
        "whichever exist under the current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="additionally compile the figure suite's representative "
        "SweepPrograms and run the full IR verifier over them",
    )
    return parser


def _resolve_paths(requested: Sequence[str]) -> List[str]:
    if requested:
        return list(requested)
    present = [path for path in DEFAULT_PATHS if os.path.isdir(path)]
    if not present:
        raise FileNotFoundError(
            "no paths given and none of the default paths "
            f"{list(DEFAULT_PATHS)} exist under {os.getcwd()}"
        )
    return present


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        paths = _resolve_paths(args.paths)
        codes = args.select.split(",") if args.select else None
        rules = select_rules(codes)
        result = lint_paths(paths, rules)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2

    diagnostics: List[Diagnostic] = list(result.diagnostics)
    if args.verify:
        from repro.analysis.verify import verify_reference_suite

        diagnostics.extend(verify_reference_suite())

    if args.format == "json":
        payload = findings_payload(
            diagnostics,
            paths=paths,
            files_checked=result.files_checked,
            suppressed=result.suppressed,
        )
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            format_text_report(
                diagnostics,
                files_checked=result.files_checked,
                suppressed=result.suppressed,
            )
        )
    return 1 if has_errors(diagnostics) else 0
