"""Command-line entry point: ``python -m repro.analysis``.

Runs the AST contract linter, the cross-module flow analyzers, *and* the
shape/dtype abstract interpreter over source trees (and, with
``--verify``, the IR, cost-model, program-shape, and translation-validation
verifiers over the figure suite's representative compiled programs) and
reports every finding through the shared diagnostic pipeline::

    python -m repro.analysis src benchmarks            # lint + flow + shapes
    python -m repro.analysis --format json             # default paths, JSON
    python -m repro.analysis --format sarif            # SARIF 2.1.0 log
    python -m repro.analysis src --select REP001,REP102
    python -m repro.analysis --verify                  # + IR/cost/equiv checks
    python -m repro.analysis --jobs 4                  # shard per-file passes
    python -m repro.analysis --baseline analysis_baseline.json

Exit codes: ``0`` when no error-severity findings survive suppression (and
the baseline, when one is given), ``1`` when at least one does, ``2`` on
usage errors (unknown path or rule).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, has_errors, sort_diagnostics
from repro.analysis.lint import lint_paths, merge_suppression_counts
from repro.analysis.report import findings_payload, format_text_report
from repro.analysis.rules import select_rules

#: Paths tried (if they exist) when the CLI is invoked without any.
DEFAULT_PATHS = ("src", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static analysis for the repro stack: AST contract linter "
            "(REP0xx/REP106/REP2xx), cross-module concurrency & determinism "
            "flow analyzers (REP101-REP104), shape/dtype abstract "
            "interpreter (VER301-VER304), SweepProgram IR + cost-model "
            "verifiers (VER1xx/VER2xx), and compile-pipeline translation "
            "validation (VER401-VER430)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src benchmarks, "
        "whichever exist under the current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated codes to run: lint rule, flow analyzer, "
        "shape analyzer, and/or translation-validation codes (default: all)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="additionally compile the figure suite's representative "
        "SweepPrograms and run the full IR verifier, the static cost-model "
        "verifier, the program-shape verifier, and the VER4xx translation "
        "validator (fused vs source programs) over them (JSON output "
        "gains a 'cost' section)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=1,
        help="fan the per-file passes out over N ShardExecutor workers "
        "(default: 1, serial); finding order is deterministic either way",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="subtract the accepted findings recorded in this baseline file; "
        "only new findings gate the exit code",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write the current findings as a new baseline to PATH and exit 0",
    )
    return parser


def _resolve_paths(requested: Sequence[str]) -> List[str]:
    if requested:
        return list(requested)
    present = [path for path in DEFAULT_PATHS if os.path.isdir(path)]
    if not present:
        raise FileNotFoundError(
            "no paths given and none of the default paths "
            f"{list(DEFAULT_PATHS)} exist under {os.getcwd()}"
        )
    return present


def _split_select(selected: Optional[str]):
    """Partition ``--select`` into (lint, flow, shapes, equiv) code families.

    ``None`` in a slot means "run everything in that family"; an empty
    tuple means "run nothing".  Flow, shape, and translation-validation
    codes are carved out first; whatever remains must be lint rule codes,
    so unknown codes surface through :func:`select_rules`'s error.
    """
    from repro.analysis.equiv import EQUIV_CODES
    from repro.analysis.flow import FLOW_CODES
    from repro.analysis.shapes import SHAPE_CODES

    if selected is None:
        return None, None, None, None
    codes = [code.strip().upper() for code in selected.split(",") if code.strip()]
    flow = tuple(code for code in codes if code in FLOW_CODES)
    shapes = tuple(code for code in codes if code in SHAPE_CODES)
    equiv = tuple(code for code in codes if code in EQUIV_CODES)
    lint = tuple(
        code
        for code in codes
        if code not in FLOW_CODES
        and code not in SHAPE_CODES
        and code not in EQUIV_CODES
    )
    return lint, flow, shapes, equiv


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        paths = _resolve_paths(args.paths)
        if args.jobs < 1:
            raise ValueError(f"--jobs must be >= 1, got {args.jobs}")
        lint_codes, flow_codes, shape_codes, equiv_codes = _split_select(args.select)
        rules = select_rules(list(lint_codes)) if lint_codes else select_rules(None)
        run_lint = lint_codes is None or bool(lint_codes)
        run_flow = flow_codes is None or bool(flow_codes)
        run_shapes = shape_codes is None or bool(shape_codes)
        run_equiv = equiv_codes is None or bool(equiv_codes)

        diagnostics: List[Diagnostic] = []
        files_checked = 0
        suppressed_by_code: Dict[str, int] = {}
        timings: Dict[str, float] = {"jobs": args.jobs}
        if run_lint:
            started = time.perf_counter()
            lint_result = lint_paths(paths, rules, jobs=args.jobs)
            timings["lint_seconds"] = time.perf_counter() - started
            diagnostics.extend(lint_result.diagnostics)
            files_checked = lint_result.files_checked
            merge_suppression_counts(
                suppressed_by_code, lint_result.suppressed_by_code
            )
        if run_flow:
            from repro.analysis.flow import analyze_paths

            # The flow analyzers work on one cross-module graph, so they do
            # not shard per file; --jobs covers the per-file passes.
            started = time.perf_counter()
            flow_result = analyze_paths(paths, flow_codes)
            timings["flow_seconds"] = time.perf_counter() - started
            diagnostics.extend(flow_result.diagnostics)
            files_checked = max(files_checked, flow_result.files_checked)
            merge_suppression_counts(
                suppressed_by_code, flow_result.suppressed_by_code
            )
        if run_shapes:
            from repro.analysis.shapes import analyze_paths as analyze_shape_paths

            started = time.perf_counter()
            shape_result = analyze_shape_paths(paths, shape_codes)
            timings["shapes_seconds"] = time.perf_counter() - started
            diagnostics.extend(shape_result.diagnostics)
            files_checked = max(files_checked, shape_result.files_checked)
            merge_suppression_counts(
                suppressed_by_code, shape_result.suppressed_by_code
            )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2

    cost_reports: Optional[List[dict]] = None
    if args.verify:
        from repro.analysis.cost import reference_cost_reports, verify_reference_costs
        from repro.analysis.shapes import verify_reference_shapes
        from repro.analysis.verify import verify_reference_suite

        started = time.perf_counter()
        diagnostics.extend(verify_reference_suite())
        diagnostics.extend(verify_reference_costs())
        diagnostics.extend(verify_reference_shapes())
        if run_equiv:
            from repro.analysis.equiv import verify_reference_equivalence

            equiv_diagnostics = verify_reference_equivalence()
            if equiv_codes:
                equiv_diagnostics = [
                    diagnostic
                    for diagnostic in equiv_diagnostics
                    if diagnostic.code in equiv_codes
                ]
            diagnostics.extend(equiv_diagnostics)
        timings["verify_seconds"] = time.perf_counter() - started
        cost_reports = [report.to_dict() for report in reference_cost_reports()]

    if args.write_baseline:
        from repro.analysis.baseline import write_baseline

        payload, pruned = write_baseline(args.write_baseline, diagnostics)
        print(
            f"wrote baseline with {len(payload['findings'])} accepted "
            f"finding(s) to {args.write_baseline}"
            f" (pruned {pruned} stale entr{'y' if pruned == 1 else 'ies'})"
        )
        return 0

    baselined = 0
    if args.baseline:
        from repro.analysis.baseline import load_baseline, split_by_baseline

        try:
            accepted = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro.analysis: {exc}", file=sys.stderr)
            return 2
        diagnostics, baselined = split_by_baseline(diagnostics, accepted)

    diagnostics = sort_diagnostics(diagnostics)
    suppressed = sum(suppressed_by_code.values())
    if args.format == "json":
        payload = findings_payload(
            diagnostics,
            paths=paths,
            files_checked=files_checked,
            suppressed=suppressed,
            suppressed_by_code=suppressed_by_code,
            cost=cost_reports,
            timings=timings,
        )
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        from repro.analysis.sarif import sarif_payload

        print(json.dumps(sarif_payload(diagnostics), indent=2, sort_keys=True))
    else:
        report = format_text_report(
            diagnostics, files_checked=files_checked, suppressed=suppressed
        )
        if baselined:
            report += f"\n{baselined} baselined finding(s) ignored"
        print(report)
    return 1 if has_errors(diagnostics) else 0
