"""Argument validation helpers.

Centralising validation keeps error messages consistent across the public API
and keeps the numerical code paths free of repetitive checks.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_in_range(
    value: float,
    name: str,
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
    inclusive: bool = True,
) -> float:
    """Validate that a scalar lies within ``[minimum, maximum]``."""
    value = float(value)
    if minimum is not None:
        if inclusive and value < minimum:
            raise ValidationError(f"{name} must be >= {minimum}, got {value}")
        if not inclusive and value <= minimum:
            raise ValidationError(f"{name} must be > {minimum}, got {value}")
    if maximum is not None:
        if inclusive and value > maximum:
            raise ValidationError(f"{name} must be <= {maximum}, got {value}")
        if not inclusive and value >= maximum:
            raise ValidationError(f"{name} must be < {maximum}, got {value}")
    return value


def check_array(
    data,
    name: str,
    ndim: Optional[int] = None,
    shape: Optional[Tuple[Optional[int], ...]] = None,
    dtype=float,
) -> np.ndarray:
    """Convert ``data`` to an array and validate its dimensionality/shape.

    ``shape`` entries set to ``None`` are wildcards.
    """
    array = np.asarray(data, dtype=dtype)
    if ndim is not None and array.ndim != ndim:
        raise ValidationError(f"{name} must be {ndim}-D, got {array.ndim}-D")
    if shape is not None:
        if array.ndim != len(shape):
            raise ValidationError(
                f"{name} must have {len(shape)} dimensions, got {array.ndim}"
            )
        for axis, expected in enumerate(shape):
            if expected is not None and array.shape[axis] != expected:
                raise ValidationError(
                    f"{name} axis {axis} must have size {expected}, got {array.shape[axis]}"
                )
    if not np.all(np.isfinite(array)) and np.issubdtype(array.dtype, np.floating):
        raise ValidationError(f"{name} contains non-finite values")
    return array


def check_square_matrix(matrix, name: str) -> np.ndarray:
    """Validate that ``matrix`` is a square 2-D array."""
    array = np.asarray(matrix)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise ValidationError(f"{name} must be a square matrix, got shape {array.shape}")
    return array


def check_probability_vector(vector, name: str, atol: float = 1e-8) -> np.ndarray:
    """Validate a non-negative vector that sums to one."""
    array = np.asarray(vector, dtype=float)
    if array.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got {array.ndim}-D")
    if np.any(array < -atol):
        raise ValidationError(f"{name} must be non-negative")
    if not np.isclose(array.sum(), 1.0, atol=atol):
        raise ValidationError(f"{name} must sum to 1, sums to {array.sum()}")
    return array


def check_qubit_indices(qubits: Sequence[int], num_qubits: int, name: str = "qubits") -> Tuple[int, ...]:
    """Validate a sequence of distinct qubit indices for an ``num_qubits`` register."""
    indices = tuple(int(q) for q in qubits)
    for q in indices:
        if q < 0 or q >= num_qubits:
            raise ValidationError(
                f"{name} contains index {q}, valid range is [0, {num_qubits - 1}]"
            )
    if len(set(indices)) != len(indices):
        raise ValidationError(f"{name} must be distinct, got {indices}")
    return indices
