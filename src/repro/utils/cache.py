"""Bounded LRU mapping shared by the hot-path memoisation caches.

The training and sweep hot paths memoise several kinds of derived objects —
encoded data statevectors, stacked data-state matrices, data-bound
discriminator circuits, transpile templates — and all of them need the same
behaviour: lookups refresh recency, inserts evict the stalest entries once a
size bound is exceeded.  :class:`LRUCache` centralises that idiom so every
cache evicts identically.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``None`` is reserved as the miss sentinel: values stored in the cache
    must not be ``None`` (none of the memoised objects are).

    Thread-safe: thread-strategy shard executors share builder/estimator
    caches across workers, and the lookup's get-then-``move_to_end`` pair
    would otherwise race a concurrent eviction into a ``KeyError``.

    The ``__thread_safe__`` class annotation is read by the static flow
    analyzer (:mod:`repro.analysis.flow`): classes declaring it are exempt
    from the REP101 shared-write check, because every mutation is serialised
    behind ``_lock``.  Only declare it on classes that actually uphold that
    contract — the analyzer takes the annotation at its word.

    Parameters
    ----------
    max_entries:
        Maximum number of entries held; the least recently used entries are
        evicted beyond it.
    """

    #: Audited: every mutation below holds ``_lock``.  Read by REP101.
    __thread_safe__ = True

    def __init__(self, max_entries: int) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self._max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]  # locks cannot pickle; workers get a fresh one
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def max_entries(self) -> int:
        """The configured size bound."""
        return self._max_entries

    def get(self, key: Hashable) -> Any:
        """Return the cached value (refreshing recency) or ``None`` on a miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value`` under ``key``, evicting the stalest entries."""
        if value is None:
            raise ValueError("LRUCache values must not be None (miss sentinel)")
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()
