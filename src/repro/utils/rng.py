"""Random-number management.

Every stochastic component in the library (parameter initialisation, shot
sampling, noise channels, dataset generation) accepts either an integer seed,
``None``, or a :class:`numpy.random.Generator`.  :func:`ensure_rng` converts
any of those into a concrete generator so experiments are reproducible by
passing a single integer.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

#: Accepted seed-like type used across the public API.
RandomState = Union[None, int, np.random.Generator]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for a non-deterministic generator, an integer for a seeded
        generator, or an existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed: RandomState, count: int) -> List[np.random.SeedSequence]:
    """Spawn ``count`` independent ``SeedSequence`` children from any seed type.

    ``SeedSequence.spawn`` is the only construction NumPy guarantees to
    produce non-overlapping streams; drawing ad-hoc integers from a generator
    gives children whose streams can collide.  Spawning from an existing
    generator advances its seed sequence's spawn counter, so repeated calls
    yield fresh, still-independent children.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    seed_seq = root.bit_generator.seed_seq
    if not isinstance(seed_seq, np.random.SeedSequence):
        # A Generator built directly from entropy-less bit-generator state has
        # no SeedSequence; derive one from the stream so we can still spawn.
        seed_seq = np.random.SeedSequence(int(root.integers(0, 2**63 - 1)))
    return list(seed_seq.spawn(count))


def spawn_rngs(seed: RandomState, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Used when an experiment needs reproducible but independent streams, e.g.
    one stream per class-discriminator circuit or per backend job; see
    :func:`spawn_seed_sequences` for the spawning guarantees.
    """
    return [np.random.default_rng(child) for child in spawn_seed_sequences(seed, count)]


def seeds_from(seed: RandomState, count: int) -> List[int]:
    """Derive ``count`` integer seeds from a root seed."""
    rng = ensure_rng(seed)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=count)]


def shuffled_indices(n: int, rng: RandomState = None) -> np.ndarray:
    """Return a random permutation of ``range(n)``."""
    generator = ensure_rng(rng)
    return generator.permutation(n)


def sample_without_replacement(
    population: Iterable[int], k: int, rng: RandomState = None
) -> np.ndarray:
    """Sample ``k`` distinct items from ``population``."""
    generator = ensure_rng(rng)
    population = np.asarray(list(population))
    if k > population.size:
        raise ValueError(f"cannot sample {k} items from population of {population.size}")
    return generator.choice(population, size=k, replace=False)
