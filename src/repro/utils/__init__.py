"""Shared utilities: numerics, random-number management, caching, validation."""

from repro.utils.cache import LRUCache
from repro.utils.math import (
    binary_cross_entropy,
    clip_probability,
    cross_entropy,
    kl_divergence,
    log_loss,
    normalize_probabilities,
    one_hot,
    relu,
    sigmoid,
    softmax,
)
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_positive_int,
    check_probability_vector,
    check_square_matrix,
)

__all__ = [
    "LRUCache",
    "binary_cross_entropy",
    "clip_probability",
    "cross_entropy",
    "kl_divergence",
    "log_loss",
    "normalize_probabilities",
    "one_hot",
    "relu",
    "sigmoid",
    "softmax",
    "RandomState",
    "ensure_rng",
    "spawn_rngs",
    "check_array",
    "check_in_range",
    "check_positive_int",
    "check_probability_vector",
    "check_square_matrix",
]
