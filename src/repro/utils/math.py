"""Numerical helpers shared across the library.

These are small, vectorised NumPy routines used by the QuClassi core, the
classical baselines, and the experiment harness.  They favour numerical
stability (log-sum-exp softmax, clipped logs) over raw speed because every
call operates on vectors with at most a few hundred entries.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

#: Smallest probability used inside logarithms to avoid ``-inf``.
EPSILON = 1e-12


def clip_probability(p: np.ndarray | float, eps: float = EPSILON):
    """Clip probabilities into the open interval ``(eps, 1 - eps)``.

    Parameters
    ----------
    p:
        Scalar or array of probabilities.
    eps:
        Clipping margin.

    Returns
    -------
    numpy.ndarray or float
        Clipped probabilities with the same shape as the input.
    """
    return np.clip(p, eps, 1.0 - eps)


def sigmoid(x: np.ndarray | float):
    """Numerically stable logistic sigmoid."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    if out.ndim == 0:
        return float(out)
    return out


def relu(x: np.ndarray | float):
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    Uses the log-sum-exp shift so large fidelity values never overflow.
    """
    x = np.asarray(x, dtype=float)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int | None = None) -> np.ndarray:
    """One-hot encode integer labels.

    Parameters
    ----------
    labels:
        Integer array of shape ``(n,)``.
    num_classes:
        Total number of classes.  Inferred as ``labels.max() + 1`` when
        omitted.
    """
    labels = np.asarray(labels, dtype=int)
    if labels.ndim != 1:
        raise ValidationError(f"labels must be 1-D, got shape {labels.shape}")
    if num_classes is None:
        num_classes = int(labels.max()) + 1 if labels.size else 0
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValidationError(
            f"labels must lie in [0, {num_classes - 1}], got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=float)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def binary_cross_entropy(y_true: np.ndarray | float, p: np.ndarray | float) -> float:
    """Mean binary cross-entropy ``-y log p - (1 - y) log(1 - p)``.

    This is Equation (14) of the paper applied to SWAP-test fidelities.
    """
    y_true = np.asarray(y_true, dtype=float)
    p = clip_probability(np.asarray(p, dtype=float))
    losses = -(y_true * np.log(p) + (1.0 - y_true) * np.log(1.0 - p))
    return float(np.mean(losses))


def cross_entropy(y_true_one_hot: np.ndarray, probabilities: np.ndarray) -> float:
    """Mean categorical cross-entropy between one-hot targets and predictions."""
    y_true_one_hot = np.asarray(y_true_one_hot, dtype=float)
    probabilities = clip_probability(np.asarray(probabilities, dtype=float))
    if y_true_one_hot.shape != probabilities.shape:
        raise ValidationError(
            "shape mismatch between targets "
            f"{y_true_one_hot.shape} and predictions {probabilities.shape}"
        )
    per_sample = -np.sum(y_true_one_hot * np.log(probabilities), axis=-1)
    return float(np.mean(per_sample))


def log_loss(y_true: np.ndarray, p: np.ndarray) -> float:
    """Alias of :func:`binary_cross_entropy` for familiarity."""
    return binary_cross_entropy(y_true, p)


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Kullback-Leibler divergence ``KL(p || q)`` between distributions."""
    p = np.asarray(p, dtype=float)
    q = clip_probability(np.asarray(q, dtype=float))
    p_clipped = clip_probability(p)
    return float(np.sum(p * (np.log(p_clipped) - np.log(q))))


def normalize_probabilities(weights: np.ndarray) -> np.ndarray:
    """Normalise non-negative weights into a probability distribution."""
    weights = np.asarray(weights, dtype=float)
    if np.any(weights < 0):
        raise ValidationError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValidationError("weights must not all be zero")
    return weights / total
