"""Classical deep-neural-network baseline (the paper's ``DNN-kP`` models).

The paper compares QuClassi against fully classical multilayer perceptrons
named by their total parameter count (DNN-12, DNN-28, ..., DNN-1218) and
trained with the same SGD learning rate and the same normalised, PCA-reduced
inputs.  :class:`DNNClassifier` is a from-scratch NumPy MLP with one hidden
layer (sigmoid activation) and a softmax output, and
:func:`dnn_for_parameter_budget` picks the hidden width that brings the total
parameter count as close as possible to a requested budget, mirroring how the
paper sizes its comparison networks.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.optimizers import SGD
from repro.exceptions import TrainingError, ValidationError
from repro.utils.math import one_hot, sigmoid, softmax
from repro.utils.rng import RandomState, ensure_rng


@dataclasses.dataclass
class DNNHistory:
    """Per-epoch metrics of a classical baseline run."""

    losses: List[float] = dataclasses.field(default_factory=list)
    train_accuracies: List[float] = dataclasses.field(default_factory=list)
    validation_accuracies: List[Optional[float]] = dataclasses.field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("history is empty")
        return self.losses[-1]


class DNNClassifier:
    """One-hidden-layer MLP with sigmoid activation and softmax output.

    Parameters
    ----------
    num_features:
        Input dimensionality.
    num_classes:
        Number of output classes (softmax width).
    hidden_units:
        Width of the hidden layer.
    seed:
        Seed for weight initialisation.
    """

    def __init__(self, num_features: int, num_classes: int, hidden_units: int, seed: RandomState = None) -> None:
        if num_features <= 0 or num_classes < 2 or hidden_units <= 0:
            raise ValidationError(
                "num_features and hidden_units must be positive and num_classes >= 2 "
                f"(got {num_features}, {num_classes}, {hidden_units})"
            )
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        self.hidden_units = int(hidden_units)
        self._rng = ensure_rng(seed)
        rng = self._rng
        scale_hidden = 1.0 / np.sqrt(num_features)
        scale_output = 1.0 / np.sqrt(hidden_units)
        self.weights_hidden = rng.normal(0.0, scale_hidden, size=(num_features, hidden_units))
        self.bias_hidden = np.zeros(hidden_units)
        self.weights_output = rng.normal(0.0, scale_output, size=(hidden_units, num_classes))
        self.bias_output = np.zeros(num_classes)

    # ------------------------------------------------------------------ #
    @property
    def num_parameters(self) -> int:
        """Total trainable parameter count (the ``k`` in ``DNN-kP``)."""
        return int(
            self.weights_hidden.size
            + self.bias_hidden.size
            + self.weights_output.size
            + self.bias_output.size
        )

    # ------------------------------------------------------------------ #
    def _forward(self, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        hidden = sigmoid(features @ self.weights_hidden + self.bias_hidden)
        logits = hidden @ self.weights_output + self.bias_output
        return hidden, softmax(logits, axis=1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities, shape ``(n_samples, n_classes)``."""
        features = self._check_features(features)
        return self._forward(features)[1]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return np.argmax(self.predict_proba(features), axis=1)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy."""
        labels = np.asarray(labels, dtype=int)
        return float(np.mean(self.predict(features) == labels))

    def _check_features(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        if features.shape[1] != self.num_features:
            raise ValidationError(
                f"model expects {self.num_features} features, got {features.shape[1]}"
            )
        return features

    # ------------------------------------------------------------------ #
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 25,
        learning_rate: float = 0.01,
        batch_size: int = 8,
        momentum: float = 0.0,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        rng: RandomState = None,
    ) -> DNNHistory:
        """Train with minibatch SGD on the categorical cross-entropy."""
        features = self._check_features(features)
        labels = np.asarray(labels, dtype=int)
        if labels.shape != (features.shape[0],):
            raise TrainingError("labels must have one entry per sample")
        if labels.min() < 0 or labels.max() >= self.num_classes:
            raise TrainingError(
                f"labels must lie in [0, {self.num_classes - 1}], got "
                f"[{labels.min()}, {labels.max()}]"
            )
        if epochs <= 0 or batch_size <= 0:
            raise TrainingError("epochs and batch_size must be positive")
        targets = one_hot(labels, self.num_classes)
        optimizer = SGD(learning_rate=learning_rate, momentum=momentum)
        # Default to the constructor-seeded stream: a bare ``fit()`` must be
        # deterministic given the model seed, or figure sweeps (and their
        # sharded equivalents) cannot be reproduced bit-for-bit.
        generator = ensure_rng(rng) if rng is not None else self._rng
        history = DNNHistory()

        for _ in range(epochs):
            order = generator.permutation(features.shape[0])
            epoch_loss = 0.0
            batches = 0
            for start in range(0, features.shape[0], batch_size):
                batch_index = order[start : start + batch_size]
                x_batch = features[batch_index]
                y_batch = targets[batch_index]
                hidden, probabilities = self._forward(x_batch)
                batch_loss = -np.mean(
                    np.sum(y_batch * np.log(np.clip(probabilities, 1e-12, 1.0)), axis=1)
                )
                epoch_loss += float(batch_loss)
                batches += 1

                # Backpropagation for softmax + cross-entropy.
                delta_output = (probabilities - y_batch) / x_batch.shape[0]
                grad_weights_output = hidden.T @ delta_output
                grad_bias_output = delta_output.sum(axis=0)
                delta_hidden = (delta_output @ self.weights_output.T) * hidden * (1.0 - hidden)
                grad_weights_hidden = x_batch.T @ delta_hidden
                grad_bias_hidden = delta_hidden.sum(axis=0)

                optimizer.step(
                    [self.weights_hidden, self.bias_hidden, self.weights_output, self.bias_output],
                    [grad_weights_hidden, grad_bias_hidden, grad_weights_output, grad_bias_output],
                )
            optimizer.end_epoch()
            history.losses.append(epoch_loss / max(batches, 1))
            history.train_accuracies.append(self.score(features, labels))
            history.validation_accuracies.append(
                self.score(*validation_data) if validation_data is not None else None
            )
        return history


def hidden_units_for_budget(num_features: int, num_classes: int, parameter_budget: int) -> int:
    """Hidden width whose total parameter count best matches ``parameter_budget``.

    The total count of a one-hidden-layer MLP is
    ``h * (num_features + num_classes + 1) + num_classes``.
    """
    if parameter_budget <= num_classes:
        raise ValidationError(
            f"parameter_budget={parameter_budget} is too small for {num_classes} output biases"
        )
    per_unit = num_features + num_classes + 1
    exact = (parameter_budget - num_classes) / per_unit
    best = max(1, int(round(exact)))
    return best


def dnn_for_parameter_budget(
    num_features: int,
    num_classes: int,
    parameter_budget: int,
    seed: RandomState = None,
) -> DNNClassifier:
    """Build a ``DNN-kP``-style classifier with roughly ``parameter_budget`` parameters."""
    hidden = hidden_units_for_budget(num_features, num_classes, parameter_budget)
    return DNNClassifier(num_features, num_classes, hidden_units=hidden, seed=seed)
