"""TensorFlow-Quantum-style variational baseline.

The paper compares against the TensorFlow Quantum MNIST tutorial classifier:
a variational circuit whose single readout qubit is trained against a
classical loss on its Pauli-Z expectation.  This module reimplements that
*style* of model on the library's own simulator so the comparison runs
offline:

* every (normalised) feature is angle-encoded onto its own data qubit with
  ``RY(pi * x)``,
* each variational layer couples every data qubit to the readout qubit with a
  parameterised controlled-RX, followed by a free RX on the readout — the
  same "data qubits talk to one readout" topology as the TFQ tutorial's
  XX/ZZ ansatz, adapted to the continuous angle encoding used throughout this
  library,
* the predicted probability of class 1 is ``(1 - <Z_readout>) / 2`` and
  training minimises binary cross-entropy with the parameter-shift rule.

Like TFQ's published example, the model is **binary only** — the paper makes
the same point when explaining why TFQ is absent from the multi-class
figures.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import TrainingError, ValidationError
from repro.quantum import gates
from repro.quantum.statevector import Statevector
from repro.utils.math import binary_cross_entropy
from repro.utils.rng import RandomState, ensure_rng


@dataclasses.dataclass
class TFQHistory:
    """Per-epoch metrics of a TFQ-like training run."""

    losses: List[float] = dataclasses.field(default_factory=list)
    train_accuracies: List[float] = dataclasses.field(default_factory=list)
    validation_accuracies: List[Optional[float]] = dataclasses.field(default_factory=list)


class TFQLikeClassifier:
    """Binary variational classifier with expectation-value readout.

    Parameters
    ----------
    num_features:
        Input dimensionality; one data qubit per feature.
    num_layers:
        Number of data-to-readout coupling layers.
    seed:
        Parameter-initialisation seed.
    """

    def __init__(self, num_features: int, num_layers: int = 2, seed: RandomState = None) -> None:
        if num_features <= 0:
            raise ValidationError(f"num_features must be positive, got {num_features}")
        if num_layers <= 0:
            raise ValidationError(f"num_layers must be positive, got {num_layers}")
        self.num_features = int(num_features)
        self.num_layers = int(num_layers)
        self._rng = ensure_rng(seed)
        rng = self._rng
        #: Flat parameter vector: per layer, one CRX angle per data qubit plus
        #: one free RX angle on the readout qubit.
        self.parameters_ = rng.uniform(0.0, np.pi, size=num_layers * (num_features + 1))

    # ------------------------------------------------------------------ #
    @property
    def num_parameters(self) -> int:
        """Number of trainable circuit parameters."""
        return int(self.parameters_.size)

    @property
    def num_qubits(self) -> int:
        """Data qubits plus the readout qubit."""
        return self.num_features + 1

    # ------------------------------------------------------------------ #
    def _readout_expectation(self, features: np.ndarray, parameters: np.ndarray) -> float:
        """Exact ``<Z>`` of the readout qubit for one sample."""
        readout = self.num_features  # last qubit
        state = Statevector(self.num_qubits)
        for qubit, value in enumerate(features):
            state.apply_matrix(gates.ry(math.pi * float(value)), (qubit,))
        cursor = 0
        for _ in range(self.num_layers):
            for qubit in range(self.num_features):
                state.apply_matrix(gates.crx(float(parameters[cursor])), (qubit, readout))
                cursor += 1
            state.apply_matrix(gates.rx(float(parameters[cursor])), (readout,))
            cursor += 1
        return state.expectation_z(readout)

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw readout expectations in ``[-1, 1]`` for each sample."""
        features = self._check_features(features)
        return np.array(
            [self._readout_expectation(row, self.parameters_) for row in features], dtype=float
        )

    def _probabilities(self, features: np.ndarray, parameters: np.ndarray) -> np.ndarray:
        expectations = np.array(
            [self._readout_expectation(row, parameters) for row in features], dtype=float
        )
        return (1.0 - expectations) / 2.0

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of class 1 for each sample."""
        features = self._check_features(features)
        return self._probabilities(features, self.parameters_)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted labels (0 or 1)."""
        return (self.predict_proba(features) >= 0.5).astype(int)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy."""
        labels = np.asarray(labels, dtype=int)
        return float(np.mean(self.predict(features) == labels))

    def _check_features(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        if features.shape[1] != self.num_features:
            raise ValidationError(
                f"model expects {self.num_features} features, got {features.shape[1]}"
            )
        return features

    # ------------------------------------------------------------------ #
    def _loss(self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray) -> float:
        return binary_cross_entropy(labels, self._probabilities(features, parameters))

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 10,
        learning_rate: float = 0.3,
        batch_size: int = 8,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        rng: RandomState = None,
    ) -> TFQHistory:
        """Train with the parameter-shift rule on binary cross-entropy."""
        features = self._check_features(features)
        labels = np.asarray(labels, dtype=int)
        if set(np.unique(labels)) - {0, 1}:
            raise TrainingError(
                "TFQLikeClassifier is binary-only: labels must be 0/1 "
                f"(got {sorted(set(labels.tolist()))})"
            )
        if labels.shape != (features.shape[0],):
            raise TrainingError("labels must have one entry per sample")
        # Constructor-seeded default stream (see DNNClassifier.fit).
        generator = ensure_rng(rng) if rng is not None else self._rng
        history = TFQHistory()
        shift = math.pi / 2.0

        for _ in range(epochs):
            order = generator.permutation(features.shape[0])
            for start in range(0, features.shape[0], batch_size):
                batch_index = order[start : start + batch_size]
                x_batch = features[batch_index]
                y_batch = labels[batch_index]
                gradient = np.zeros_like(self.parameters_)
                for index in range(self.parameters_.size):
                    forward = self.parameters_.copy()
                    backward = self.parameters_.copy()
                    forward[index] += shift
                    backward[index] -= shift
                    gradient[index] = 0.5 * (
                        self._loss(forward, x_batch, y_batch)
                        - self._loss(backward, x_batch, y_batch)
                    )
                self.parameters_ -= learning_rate * gradient  # repro: noqa REP101 -- model is built inside the sweep cell; worker-local by construction
            history.losses.append(self._loss(self.parameters_, features, labels))
            history.train_accuracies.append(self.score(features, labels))
            history.validation_accuracies.append(
                self.score(*validation_data) if validation_data is not None else None
            )
        return history
