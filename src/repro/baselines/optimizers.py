"""Optimisers for the classical baselines.

The paper trains its classical comparison networks with plain stochastic
gradient descent using the same learning rate as QuClassi; SGD (optionally
with momentum) is therefore the only optimiser the baselines need, but the
interface is kept generic so the baselines stay readable.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.exceptions import TrainingError


class Optimizer:
    """Base class: updates a list of parameter arrays in place from gradients."""

    def step(self, parameters: List[np.ndarray], gradients: List[np.ndarray]) -> None:
        """Apply one update.  ``parameters[i]`` is modified in place."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and LR decay.

    Parameters
    ----------
    learning_rate:
        Step size.
    momentum:
        Momentum coefficient in ``[0, 1)``; 0 disables momentum.
    decay:
        Multiplicative learning-rate decay applied per epoch via
        :meth:`end_epoch`.
    """

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0, decay: float = 1.0) -> None:
        if learning_rate <= 0:
            raise TrainingError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise TrainingError(f"momentum must lie in [0, 1), got {momentum}")
        if not 0.0 < decay <= 1.0:
            raise TrainingError(f"decay must lie in (0, 1], got {decay}")
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.decay = float(decay)
        self._velocities: Dict[int, np.ndarray] = {}

    def step(self, parameters: List[np.ndarray], gradients: List[np.ndarray]) -> None:
        if len(parameters) != len(gradients):
            raise TrainingError("parameters and gradients must have the same length")
        for index, (param, grad) in enumerate(zip(parameters, gradients)):
            if param.shape != grad.shape:
                raise TrainingError(
                    f"gradient shape {grad.shape} does not match parameter shape {param.shape}"
                )
            if self.momentum > 0:
                velocity = self._velocities.get(index)
                if velocity is None:
                    velocity = np.zeros_like(param)
                velocity = self.momentum * velocity - self.learning_rate * grad
                self._velocities[index] = velocity
                param += velocity
            else:
                param -= self.learning_rate * grad

    def end_epoch(self) -> None:
        """Apply the per-epoch learning-rate decay."""
        self.learning_rate *= self.decay  # repro: noqa REP101 -- optimizer belongs to a model built inside the sweep cell; worker-local by construction
