"""QuantumFlow-like (QF-pNet) baseline surrogate.

QuantumFlow (Jiang et al., 2020) — the paper's strongest quantum competitor —
trains a "quantum-friendly" network classically and then maps it onto a
circuit.  Its characteristic building block (the *p-layer*) computes, for a
unit-normalised input vector ``x`` and unit-normalised weight vector ``w``,
the squared inner product ``(w . x)^2`` — exactly the quantity a quantum
circuit realises as a state overlap.  The published source and trained
weights are not available offline, so this module provides a behavioural
surrogate with the same structure:

* inputs are L2-normalised (amplitude-encoding semantics),
* a hidden p-layer of ``(w_j . x)^2`` neurons with unit-norm weights,
* a softmax output layer,
* classical SGD training on cross-entropy (QuantumFlow's training is fully
  classical — the paper criticises precisely this point).

The surrogate reproduces the *comparative* behaviour the paper reports
(competitive on binary tasks, degrading as the class count grows because the
squared-overlap features lose sign information), not QuantumFlow's absolute
published numbers; EXPERIMENTS.md spells this out per figure.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import TrainingError, ValidationError
from repro.utils.math import one_hot, softmax
from repro.utils.rng import RandomState, ensure_rng


@dataclasses.dataclass
class QFHistory:
    """Per-epoch metrics of a QF-pNet-like training run."""

    losses: List[float] = dataclasses.field(default_factory=list)
    train_accuracies: List[float] = dataclasses.field(default_factory=list)
    validation_accuracies: List[Optional[float]] = dataclasses.field(default_factory=list)


class QFpNetLikeClassifier:
    """Surrogate of QuantumFlow's QF-pNet.

    Parameters
    ----------
    num_features:
        Input dimensionality.
    num_classes:
        Number of output classes.
    hidden_units:
        Number of p-layer neurons.
    seed:
        Weight-initialisation seed.
    """

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden_units: int = 8,
        seed: RandomState = None,
    ) -> None:
        if num_features <= 0 or hidden_units <= 0 or num_classes < 2:
            raise ValidationError(
                "num_features and hidden_units must be positive and num_classes >= 2 "
                f"(got {num_features}, {num_classes}, {hidden_units})"
            )
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        self.hidden_units = int(hidden_units)
        self._rng = ensure_rng(seed)
        rng = self._rng
        self.weights_p = rng.normal(0.0, 1.0, size=(hidden_units, num_features))
        self.weights_output = rng.normal(0.0, 1.0 / np.sqrt(hidden_units), size=(hidden_units, num_classes))
        self.bias_output = np.zeros(num_classes)

    # ------------------------------------------------------------------ #
    @property
    def num_parameters(self) -> int:
        """Total trainable parameter count."""
        return int(self.weights_p.size + self.weights_output.size + self.bias_output.size)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms = np.where(norms == 0.0, 1.0, norms)
        return matrix / norms

    def _forward(self, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Forward pass; returns normalised inputs, overlaps, p-activations, probabilities."""
        x_hat = self._normalize_rows(features)
        w_hat = self._normalize_rows(self.weights_p)
        overlaps = x_hat @ w_hat.T                       # (n, hidden)
        activations = overlaps**2                        # the p-layer: squared state overlap
        logits = activations @ self.weights_output + self.bias_output
        return x_hat, overlaps, activations, softmax(logits, axis=1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities."""
        features = self._check_features(features)
        return self._forward(features)[3]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return np.argmax(self.predict_proba(features), axis=1)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy."""
        labels = np.asarray(labels, dtype=int)
        return float(np.mean(self.predict(features) == labels))

    def _check_features(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[None, :]
        if features.shape[1] != self.num_features:
            raise ValidationError(
                f"model expects {self.num_features} features, got {features.shape[1]}"
            )
        return features

    # ------------------------------------------------------------------ #
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int = 25,
        learning_rate: float = 0.05,
        batch_size: int = 8,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        rng: RandomState = None,
    ) -> QFHistory:
        """Classical SGD training on the categorical cross-entropy."""
        features = self._check_features(features)
        labels = np.asarray(labels, dtype=int)
        if labels.shape != (features.shape[0],):
            raise TrainingError("labels must have one entry per sample")
        if labels.min() < 0 or labels.max() >= self.num_classes:
            raise TrainingError(
                f"labels must lie in [0, {self.num_classes - 1}], got "
                f"[{labels.min()}, {labels.max()}]"
            )
        targets = one_hot(labels, self.num_classes)
        # Constructor-seeded default stream (see DNNClassifier.fit).
        generator = ensure_rng(rng) if rng is not None else self._rng
        history = QFHistory()

        for _ in range(epochs):
            order = generator.permutation(features.shape[0])
            epoch_loss = 0.0
            batches = 0
            for start in range(0, features.shape[0], batch_size):
                batch_index = order[start : start + batch_size]
                x_batch = features[batch_index]
                y_batch = targets[batch_index]
                x_hat, overlaps, activations, probabilities = self._forward(x_batch)
                batch_loss = -np.mean(
                    np.sum(y_batch * np.log(np.clip(probabilities, 1e-12, 1.0)), axis=1)
                )
                epoch_loss += float(batch_loss)
                batches += 1

                n = x_batch.shape[0]
                delta_logits = (probabilities - y_batch) / n        # (n, classes)
                grad_w_out = activations.T @ delta_logits           # (hidden, classes)
                grad_b_out = delta_logits.sum(axis=0)
                # Backprop through the squared overlap: d(a_j)/d(overlap_j) = 2 * overlap_j.
                delta_act = delta_logits @ self.weights_output.T    # (n, hidden)
                delta_overlap = delta_act * 2.0 * overlaps          # (n, hidden)
                # Gradient w.r.t. the *unnormalised* weight rows, through the
                # row normalisation w_hat = w / ||w||.
                w_hat = self._normalize_rows(self.weights_p)
                norms = np.linalg.norm(self.weights_p, axis=1, keepdims=True)
                norms = np.where(norms == 0.0, 1.0, norms)
                grad_w_hat = delta_overlap.T @ x_hat                # (hidden, features)
                projection = np.sum(grad_w_hat * w_hat, axis=1, keepdims=True)
                grad_w_p = (grad_w_hat - projection * w_hat) / norms

                self.weights_output -= learning_rate * grad_w_out  # repro: noqa REP101 -- model is built inside the sweep cell; worker-local by construction
                self.bias_output -= learning_rate * grad_b_out  # repro: noqa REP101 -- model is built inside the sweep cell; worker-local by construction
                self.weights_p -= learning_rate * grad_w_p  # repro: noqa REP101 -- model is built inside the sweep cell; worker-local by construction
            history.losses.append(epoch_loss / max(batches, 1))
            history.train_accuracies.append(self.score(features, labels))
            history.validation_accuracies.append(
                self.score(*validation_data) if validation_data is not None else None
            )
        return history
