"""Comparison models: classical DNNs, TFQ-like and QuantumFlow-like baselines."""

from repro.baselines.dnn import (
    DNNClassifier,
    DNNHistory,
    dnn_for_parameter_budget,
    hidden_units_for_budget,
)
from repro.baselines.optimizers import SGD, Optimizer
from repro.baselines.quantumflow_like import QFHistory, QFpNetLikeClassifier
from repro.baselines.tfq_like import TFQHistory, TFQLikeClassifier

__all__ = [
    "DNNClassifier",
    "DNNHistory",
    "dnn_for_parameter_budget",
    "hidden_units_for_budget",
    "SGD",
    "Optimizer",
    "QFHistory",
    "QFpNetLikeClassifier",
    "TFQHistory",
    "TFQLikeClassifier",
]
