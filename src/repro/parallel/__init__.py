"""Sharded multi-backend execution for per-class training and figure sweeps.

QuClassi trains one independent discriminator per class, and the paper's
figure sweeps repeat that training across backends, shot counts, and
encodings — an embarrassingly shard-parallel outer loop.  This package
distributes it without changing the science:

* :class:`~repro.parallel.plan.ShardPlan` fixes shard identities, splits, and
  per-shard ``SeedSequence`` streams *before* execution, so results are
  invariant to worker count and completion order.
* :class:`~repro.parallel.executor.ShardExecutor` runs shards under a
  ``serial``, ``thread``, or ``process`` strategy, failing fast with
  shard-attributed :class:`~repro.parallel.executor.ShardError`\\ s.
* :class:`~repro.parallel.plan.BackendSpec` /
  :class:`~repro.parallel.plan.EstimatorSpec` reconstruct backends inside each
  worker from picklable recipes (live backends are never pickled); job
  ledgers are merged back deterministically by shard index.

The ``serial``, ``thread``, and ``process`` strategies are bit-identical to
*each other*: the per-shard unit of work is the batched engine of PRs 1–3,
and every stochastic draw comes from a stream spawned by shard index, not by
execution order.  Executor-sharded training also matches a plain
``executor=None`` fit whenever training draws no shot-sampling randomness
(the analytic estimator); on shot-sampled backends the sharded runs draw
per-shard streams instead of the live backend's single stream, so they are
reproducible across strategies and worker counts but not seed-for-seed equal
to the non-executor loop.

Typical use::

    from repro.parallel import ShardExecutor

    model.fit(x, y, executor=ShardExecutor("process", max_workers=4))
"""

from repro.parallel.executor import ShardError, ShardExecutor
from repro.parallel.plan import BackendSpec, EstimatorSpec, Shard, ShardPlan

__all__ = [
    "BackendSpec",
    "EstimatorSpec",
    "Shard",
    "ShardError",
    "ShardExecutor",
    "ShardPlan",
]
