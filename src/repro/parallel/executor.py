"""Shard execution strategies.

:class:`ShardExecutor` runs the shards of a
:class:`~repro.parallel.plan.ShardPlan` through one of three strategies —
``serial`` (in-process loop, the reference semantics), ``thread``
(``ThreadPoolExecutor``; the numerical kernels release the GIL inside BLAS
and the simulated-hardware queue waits overlap), and ``process``
(``ProcessPoolExecutor``; true multi-core isolation, requiring picklable
work functions and payloads).

All strategies return results in *shard-index order* regardless of
completion order, and all failures surface as :class:`ShardError` carrying
the failing shard's index and key.  Worker failures fail fast: the first
raised exception cancels every not-yet-started shard, and a worker process
dying mid-shard (``BrokenProcessPool``) is reported as a ``ShardError``
instead of hanging the sweep.
"""

from __future__ import annotations

import concurrent.futures
import os
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence

from repro.exceptions import ReproError, ValidationError
from repro.parallel.plan import Shard, ShardPlan


class ShardError(ReproError):
    """A shard failed; carries which one so sweep failures are attributable.

    Attributes
    ----------
    shard_index:
        Index of the failing shard within its plan.
    shard_key:
        The shard's human-readable key, e.g. ``("class", 2)`` or
        ``("backend", "ibmq_london")``.
    """

    def __init__(self, message: str, shard_index: int, shard_key: tuple) -> None:
        super().__init__(message)
        self.shard_index = shard_index
        self.shard_key = shard_key

    def __reduce__(self):
        # Exception.__reduce__ would replay only ``args`` (the message) and
        # lose the shard attribution; a ShardError raised inside a process
        # worker must survive the pickle round-trip back to the parent.
        return (type(self), (self.args[0], self.shard_index, self.shard_key))


def _shard_error(shard: Shard, cause: BaseException, note: str = "") -> ShardError:
    detail = f": {note}" if note else ""
    return ShardError(
        f"shard {shard.index} {shard.key!r} failed{detail} "
        f"({type(cause).__name__}: {cause})",
        shard_index=shard.index,
        shard_key=shard.key,
    )


class ShardExecutor:
    """Runs shard work functions under a serial, thread, or process strategy.

    Parameters
    ----------
    strategy:
        ``"serial"``, ``"thread"``, or ``"process"``.
    max_workers:
        Worker-pool size for the concurrent strategies; defaults to the
        number of shards submitted (capped at 32 for threads).  Ignored by
        ``serial``.
    """

    STRATEGIES = ("serial", "thread", "process")

    def __init__(self, strategy: str = "serial", max_workers: Optional[int] = None) -> None:
        strategy = str(strategy).strip().lower()
        if strategy not in self.STRATEGIES:
            raise ValidationError(
                f"unknown executor strategy {strategy!r}; expected one of {self.STRATEGIES}"
            )
        if max_workers is not None and max_workers <= 0:
            raise ValidationError(f"max_workers must be positive, got {max_workers}")
        self.strategy = strategy
        self.max_workers = max_workers

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardExecutor(strategy={self.strategy!r}, max_workers={self.max_workers})"

    # ------------------------------------------------------------------ #
    def map(self, fn: Callable[[Shard], object], shards: Sequence[Shard]) -> List[object]:
        """Run ``fn`` over every shard, returning results in shard order.

        ``shards`` may be a :class:`~repro.parallel.plan.ShardPlan` or any
        shard sequence.  For the ``process`` strategy ``fn`` must be a
        module-level function and every payload picklable — live backends
        travel as :class:`~repro.parallel.plan.BackendSpec` factories, never
        as objects.
        """
        if isinstance(shards, ShardPlan):
            shards = shards.shards
        shards = list(shards)
        if not shards:
            return []
        if self.strategy == "serial" or len(shards) == 1:
            return [self._call(fn, shard) for shard in shards]
        if self.strategy == "thread":
            pool_cls = concurrent.futures.ThreadPoolExecutor
            workers = self.max_workers or min(len(shards), 32)
        else:
            pool_cls = concurrent.futures.ProcessPoolExecutor
            # Each worker is a full interpreter holding its own simulators;
            # default to the core count, not the shard count, so a wide sweep
            # does not fork dozens of oversubscribed processes.
            workers = self.max_workers or min(len(shards), os.cpu_count() or 1)
        workers = max(1, min(workers, len(shards)))
        return self._map_pool(pool_cls, workers, fn, shards)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _call(fn: Callable[[Shard], object], shard: Shard) -> object:
        try:
            return fn(shard)
        except ShardError:
            raise
        except Exception as error:
            raise _shard_error(shard, error) from error

    def _map_pool(self, pool_cls, workers: int, fn, shards: List[Shard]) -> List[object]:
        results: List[object] = [None] * len(shards)
        with pool_cls(max_workers=workers) as pool:
            futures = {}
            try:
                for position, shard in enumerate(shards):
                    futures[pool.submit(fn, shard)] = (position, shard)
            except BrokenProcessPool as error:
                raise ShardError(
                    f"worker pool died while submitting shards ({error})",
                    shard_index=-1,
                    shard_key=(),
                ) from error
            try:
                for future in concurrent.futures.as_completed(futures):
                    position, shard = futures[future]
                    try:
                        results[position] = future.result()
                    except ShardError:
                        raise
                    except BrokenProcessPool as error:
                        # A worker process died (OOM, hard crash): attribute
                        # the failure instead of waiting on a broken pool.
                        raise _shard_error(shard, error, "worker process died") from error
                    except Exception as error:
                        raise _shard_error(shard, error) from error
            except BaseException:
                # Fail fast: drop every shard that has not started yet so one
                # bad cell does not leave the sweep running to completion.
                for future in futures:
                    future.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        return results
