"""Shard planning: how a sweep is cut into independent units of work.

A *shard* is one self-contained unit of a figure sweep — one class's whole
training run, one (backend, setting) sweep cell — that a
:class:`~repro.parallel.executor.ShardExecutor` can hand to a worker.  The
planning layer owns everything that must be decided *before* workers start so
that results cannot depend on execution order:

* :class:`ShardPlan` fixes the shard indices and keys up front and offers
  count-balanced (:meth:`ShardPlan.chunks`) and weight-balanced
  (:meth:`ShardPlan.balanced_chunks`) splits for static worker assignment.
* :meth:`ShardPlan.spawn_seed_sequences` derives one independent
  ``SeedSequence`` child per shard *by shard index*, so shard ``i`` draws the
  same stream whether it runs first, last, or on another process.
* :class:`BackendSpec` / :class:`EstimatorSpec` are picklable *factories*:
  live backends (with their open ledgers, caches, and RNG state) are never
  shipped to a worker — the worker reconstructs a fresh backend from the spec
  and the parent merges ledgers back deterministically by shard index.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import RandomState, spawn_seed_sequences


@dataclasses.dataclass(frozen=True)
class Shard:
    """One unit of work: a stable index, a human-readable key, a payload.

    The index is the shard's identity for every determinism guarantee (seed
    streams, ledger merge order); the key names the cell for error messages
    and reports (e.g. ``("class", 2)`` or ``("backend", "ibmq_london")``).
    """

    index: int
    key: Tuple
    payload: object = None


class ShardPlan:
    """An ordered, immutable collection of shards for one sweep."""

    def __init__(self, shards: Sequence[Shard]) -> None:
        shards = tuple(shards)
        for position, shard in enumerate(shards):
            if shard.index != position:
                raise ValidationError(
                    f"shard indices must be contiguous from 0, got index "
                    f"{shard.index} at position {position}"
                )
        self._shards = shards

    @classmethod
    def from_items(
        cls, payloads: Sequence[object], keys: Optional[Sequence[Tuple]] = None
    ) -> "ShardPlan":
        """Build a plan with one shard per payload, keyed by ``keys`` or index."""
        payloads = list(payloads)
        if keys is None:
            keys = [("shard", index) for index in range(len(payloads))]
        else:
            keys = [tuple(key) if isinstance(key, (tuple, list)) else (key,) for key in keys]
            if len(keys) != len(payloads):
                raise ValidationError(
                    f"got {len(keys)} keys for {len(payloads)} payloads"
                )
        return cls(
            [
                Shard(index=index, key=key, payload=payload)
                for index, (key, payload) in enumerate(zip(keys, payloads))
            ]
        )

    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> Tuple[Shard, ...]:
        return self._shards

    def __len__(self) -> int:
        return len(self._shards)

    def __iter__(self):
        return iter(self._shards)

    def __getitem__(self, index: int) -> Shard:
        return self._shards[index]

    # ------------------------------------------------------------------ #
    # Splitting
    # ------------------------------------------------------------------ #
    def chunks(self, num_workers: int) -> List[List[Shard]]:
        """Contiguous count-balanced split into at most ``num_workers`` chunks.

        Chunk sizes differ by at most one and empty chunks are dropped, so
        ``chunks(4)`` of a 3-shard plan yields three singleton chunks.
        """
        if num_workers <= 0:
            raise ValidationError(f"num_workers must be positive, got {num_workers}")
        total = len(self._shards)
        num_chunks = min(num_workers, total)
        if num_chunks == 0:
            return []
        base, extra = divmod(total, num_chunks)
        result = []
        start = 0
        for chunk_index in range(num_chunks):
            size = base + (1 if chunk_index < extra else 0)
            result.append(list(self._shards[start : start + size]))
            start += size
        return result

    def balanced_chunks(
        self, num_workers: int, weights: Sequence[float]
    ) -> List[List[Shard]]:
        """Weight-balanced split (greedy longest-processing-time assignment).

        Heavier shards (e.g. the 10-class MNIST cell next to binary Iris
        cells) are placed first onto the least-loaded worker, which bounds
        the makespan at 4/3 of optimal.  Within each chunk shards keep their
        plan order, so per-chunk execution stays deterministic.
        """
        if num_workers <= 0:
            raise ValidationError(f"num_workers must be positive, got {num_workers}")
        weights = [float(weight) for weight in weights]
        if len(weights) != len(self._shards):
            raise ValidationError(
                f"got {len(weights)} weights for {len(self._shards)} shards"
            )
        if any(weight < 0 for weight in weights):
            raise ValidationError("shard weights must be non-negative")
        num_chunks = min(num_workers, len(self._shards))
        if num_chunks == 0:
            return []
        loads = [0.0] * num_chunks
        assignment: List[List[Shard]] = [[] for _ in range(num_chunks)]
        order = sorted(
            range(len(self._shards)), key=lambda i: (-weights[i], i)
        )
        for shard_index in order:
            lightest = min(range(num_chunks), key=lambda c: (loads[c], c))
            loads[lightest] += weights[shard_index]
            assignment[lightest].append(self._shards[shard_index])
        for chunk in assignment:
            chunk.sort(key=lambda shard: shard.index)
        return [chunk for chunk in assignment if chunk]

    # ------------------------------------------------------------------ #
    # Determinism helpers
    # ------------------------------------------------------------------ #
    def spawn_seed_sequences(self, seed: RandomState) -> List[np.random.SeedSequence]:
        """One independent ``SeedSequence`` child per shard, by shard index.

        All children are spawned up front from the root (via
        :func:`repro.utils.rng.spawn_seed_sequences`), so shard ``i``
        receives the same stream regardless of how shards are chunked,
        reordered, or raced across workers — the invariant the bit-identical
        serial/thread/process guarantee rests on.
        """
        return spawn_seed_sequences(seed, len(self._shards))

    def spawn_rngs(self, seed: RandomState) -> List[np.random.Generator]:
        """Per-shard generators over :meth:`spawn_seed_sequences`."""
        return [
            np.random.default_rng(child) for child in self.spawn_seed_sequences(seed)
        ]


# --------------------------------------------------------------------------- #
# Backend / estimator factories
# --------------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class BackendSpec:
    """Picklable recipe for reconstructing an execution backend in a worker.

    Live backends are deliberately never pickled: they carry open job
    ledgers, transpile caches, and RNG state whose duplication across workers
    would double-count jobs and correlate shot noise.  A spec carries only
    what construction needs; each worker builds its own instance, usually
    seeded with a per-shard stream via :meth:`with_seed`.
    """

    kind: str
    device: Optional[str] = None
    shots: Optional[int] = None
    seed: RandomState = None
    simulate_queue_latency: bool = False

    KINDS = ("ideal", "sampled", "ibmq", "ionq")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValidationError(
                f"unknown backend kind {self.kind!r}; expected one of {self.KINDS}"
            )

    def with_seed(self, seed: RandomState) -> "BackendSpec":
        """Copy of the spec with a different shot-sampling seed."""
        return dataclasses.replace(self, seed=seed)

    @classmethod
    def from_backend(cls, backend) -> "BackendSpec":
        """Derive the spec describing an existing backend instance.

        The spec intentionally omits the backend's RNG state — workers are
        expected to re-seed via :meth:`with_seed` with a per-shard stream.
        """
        from repro.hardware.ibmq import IBMQBackend
        from repro.hardware.ionq import IonQBackend
        from repro.quantum.backend import IdealBackend, SampledBackend

        if isinstance(backend, IBMQBackend):
            return cls(
                kind="ibmq",
                device=backend.name,
                simulate_queue_latency=backend.simulate_queue_latency,
            )
        if isinstance(backend, IonQBackend):
            return cls(
                kind="ionq",
                simulate_queue_latency=backend.simulate_queue_latency,
            )
        if isinstance(backend, SampledBackend):
            return cls(kind="sampled", shots=backend.shots)
        if isinstance(backend, IdealBackend):
            return cls(kind="ideal")
        raise ValidationError(
            f"cannot derive a BackendSpec from {type(backend).__name__}; "
            "sharded execution reconstructs backends per worker and only knows "
            "the ideal/sampled simulators and the IBMQ/IonQ providers"
        )

    def build(self):
        """Construct a fresh backend from the spec."""
        from repro.hardware.ibmq import IBMQBackend
        from repro.hardware.ionq import IonQBackend
        from repro.quantum.backend import IdealBackend, SampledBackend

        if self.kind == "ideal":
            return IdealBackend(seed=self.seed)
        if self.kind == "sampled":
            return SampledBackend(shots=self.shots or 1024, seed=self.seed)
        if self.kind == "ibmq":
            return IBMQBackend(
                self.device or "ibmq_london",
                seed=self.seed,
                simulate_queue_latency=self.simulate_queue_latency,
            )
        return IonQBackend(
            seed=self.seed, simulate_queue_latency=self.simulate_queue_latency
        )


@dataclasses.dataclass(frozen=True)
class EstimatorSpec:
    """Picklable recipe for reconstructing a fidelity estimator in a worker.

    The circuit builder itself is shipped (it is deterministic, shared data),
    while the execution backend travels as a :class:`BackendSpec` so every
    worker gets an isolated instance.  The estimator's tuning — memory
    guards, cache bounds, a pinned ``supports_batch`` override — is carried
    along so a worker-rebuilt estimator behaves exactly like the one the
    caller configured (dropping e.g. a lowered ``max_batch_amplitudes``
    would reintroduce the memory blow-up that bound was set to prevent).
    """

    kind: str
    backend: Optional[BackendSpec] = None
    shots: Optional[int] = None
    max_batch_amplitudes: Optional[int] = None
    data_cache_size: Optional[int] = None
    data_matrix_cache_size: Optional[int] = None
    supports_batch_override: Optional[bool] = None

    KINDS = ("analytic", "swap_test")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValidationError(
                f"unknown estimator kind {self.kind!r}; expected one of {self.KINDS}"
            )

    @property
    def samples_shots(self) -> bool:
        """Whether the reconstructed estimator draws shot-sampling randomness."""
        return self.kind == "swap_test"

    def with_backend_seed(self, seed: RandomState) -> "EstimatorSpec":
        """Copy of the spec whose backend samples from ``seed``."""
        if self.backend is None:
            return self
        return dataclasses.replace(self, backend=self.backend.with_seed(seed))

    @classmethod
    def from_estimator(cls, estimator) -> "EstimatorSpec":
        """Derive the spec describing an existing estimator instance."""
        from repro.core.swap_test import (
            AnalyticFidelityEstimator,
            SwapTestFidelityEstimator,
        )

        if isinstance(estimator, AnalyticFidelityEstimator):
            # ``supports_batch`` is a class attribute; an instance assignment
            # (the ``estimator.supports_batch = False`` idiom that forces the
            # per-evaluation loop) shadows it and must travel with the spec.
            return cls(
                kind="analytic",
                data_cache_size=estimator._data_state_cache.max_entries,
                data_matrix_cache_size=estimator._data_matrix_cache.max_entries,
                max_batch_amplitudes=estimator._max_batch_amplitudes,
                supports_batch_override=estimator.__dict__.get("supports_batch"),
            )
        if isinstance(estimator, SwapTestFidelityEstimator):
            return cls(
                kind="swap_test",
                backend=BackendSpec.from_backend(estimator.backend),
                shots=estimator.shots,
                max_batch_amplitudes=estimator._max_batch_amplitudes,
                supports_batch_override=estimator._supports_batch_override,
            )
        raise ValidationError(
            f"cannot derive an EstimatorSpec from {type(estimator).__name__}; "
            "sharded training needs an analytic or SWAP-test estimator"
        )

    def build(self, builder):
        """Construct a fresh estimator around ``builder``."""
        from repro.core.swap_test import (
            AnalyticFidelityEstimator,
            SwapTestFidelityEstimator,
        )

        if self.kind == "analytic":
            estimator = AnalyticFidelityEstimator(
                builder,
                data_cache_size=self.data_cache_size
                or AnalyticFidelityEstimator.DEFAULT_DATA_CACHE_SIZE,
                data_matrix_cache_size=self.data_matrix_cache_size
                or AnalyticFidelityEstimator.DEFAULT_DATA_MATRIX_CACHE_SIZE,
                max_batch_amplitudes=self.max_batch_amplitudes
                or AnalyticFidelityEstimator.DEFAULT_MAX_BATCH_AMPLITUDES,
            )
        else:
            backend = self.backend.build() if self.backend is not None else None
            estimator = SwapTestFidelityEstimator(
                builder,
                backend=backend,
                shots=self.shots,
                max_batch_amplitudes=self.max_batch_amplitudes
                or SwapTestFidelityEstimator.DEFAULT_MAX_BATCH_AMPLITUDES,
            )
        if self.supports_batch_override is not None:
            estimator.supports_batch = self.supports_batch_override
        return estimator
