"""Batched mixed-state simulation.

:class:`BatchedDensityMatrix` evolves a whole *stack* of ``n``-qubit density
operators at once: states are stored as a ``(batch, 2**n, 2**n)`` complex
array and every unitary or Kraus channel is folded into one
``(4**k, 4**k)`` *superoperator* — ``sum_k kron(K_k, K_k.conj())`` — that
contracts only the affected qubits' (row, column) axis pair in a single BLAS
matmul over the whole batch.  This is what makes the vectorised noisy sweep
fast: where :class:`~repro.quantum.density_matrix.DensityMatrix` embeds every
Kraus operator into the full ``2**n``-dimensional space and pays two full
matmuls per operator *per circuit*, the batched engine pays one small
contraction per *channel* for the entire sweep, touching only the ``4**k``
local dimensions instead of redundantly multiplying identity blocks.

Operators come in two flavours, mirroring
:class:`~repro.quantum.batched.BatchedStatevector`:

* a shared ``(2**k, 2**k)`` matrix applied identically to every batch element
  (fixed gates, and every noise channel of a structure-sharing sweep), and
* a per-element ``(batch, 2**k, 2**k)`` stack (parameterised rotations whose
  angle differs across the batch, built by the ``*_batch`` constructors in
  :mod:`repro.quantum.gates`).

Conventions
-----------
Axis 0 is always the batch axis.  Within each batch element the layout
matches :class:`~repro.quantum.density_matrix.DensityMatrix` exactly: qubit 0
is the most significant bit of the basis index, so reshaping one element to
``(2,) * (2 * n)`` maps axis ``q`` to qubit ``q``'s row index and axis
``n + q`` to its column index.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro import arrays
from repro.exceptions import SimulationError
from repro.quantum.statevector import marginal_probabilities


def conjugation_superoperator(operator: np.ndarray) -> np.ndarray:
    """The conjugation superoperator ``rho -> K rho K†`` of one operator.

    For a shared ``(2**k, 2**k)`` operator the result is the ``(4**k, 4**k)``
    matrix ``kron(K, K.conj())``; for a per-element ``(batch, 2**k, 2**k)``
    stack it is the matching ``(batch, 4**k, 4**k)`` stack.  The index layout
    is the vectorised (row multi-index, column multi-index) pair used by
    :meth:`BatchedDensityMatrix.apply_superoperator`, so superoperators of
    sequential channels compose by plain matrix multiplication (later
    channels on the left) — the mechanism behind the compile-time noise
    precomposition in :mod:`repro.quantum.program`.
    """
    operator = arrays.as_complex(operator)
    if operator.ndim == 3:
        batch, dim = operator.shape[0], operator.shape[1]
        conjugate = operator.conj()
        return (
            operator[:, :, None, :, None] * conjugate[:, None, :, None, :]
        ).reshape(batch, dim * dim, dim * dim)
    if operator.ndim != 2 or operator.shape[0] != operator.shape[1]:
        raise SimulationError(
            f"expected a square operator or a stack of them, got shape {operator.shape}"
        )
    return arrays.kron(operator, operator.conj())


def channel_superoperator(kraus_operators: Sequence[np.ndarray]) -> np.ndarray:
    """The ``(4**k, 4**k)`` superoperator ``sum_k kron(K_k, K_k.conj())`` of a channel."""
    kraus_operators = list(kraus_operators)
    if not kraus_operators:
        raise SimulationError("a channel needs at least one Kraus operator")
    total: np.ndarray = None
    for kraus in kraus_operators:
        term = conjugation_superoperator(arrays.as_complex(kraus))
        total = term if total is None else total + term
    return total


class BatchedDensityMatrix:
    """A stack of ``batch`` density operators on ``num_qubits`` qubits.

    Parameters
    ----------
    batch_size:
        Number of independent states in the stack (all initialised to
        ``|0...0><0...0|``).
    num_qubits:
        Width of each state.
    """

    def __init__(self, batch_size: int, num_qubits: int) -> None:
        batch_size = int(batch_size)
        num_qubits = int(num_qubits)
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        if num_qubits <= 0:
            raise SimulationError(f"need at least one qubit, got {num_qubits}")
        dim = 2**num_qubits
        matrices = arrays.zeros((batch_size, dim, dim))
        matrices[:, 0, 0] = 1.0
        self._batch_size = batch_size
        self._num_qubits = num_qubits
        self._matrices = matrices

    # ------------------------------------------------------------------ #
    # Constructors and accessors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_matrices(cls, matrices: np.ndarray) -> "BatchedDensityMatrix":
        """Wrap an existing ``(batch, 2**n, 2**n)`` density stack (copied).

        Every element must be a physical state — unit trace and Hermitian,
        within the same tolerances as :class:`DensityMatrix` — so that
        non-physical user input fails here rather than surfacing later as
        silently wrong probabilities.
        """
        matrices = arrays.as_complex(matrices)
        if matrices.ndim != 3 or matrices.shape[1] != matrices.shape[2]:
            raise SimulationError(
                f"expected a (batch, 2**n, 2**n) density stack, got shape {matrices.shape}"
            )
        batch_size, dim = matrices.shape[0], matrices.shape[1]
        num_qubits = int(round(math.log2(dim))) if dim else 0
        if batch_size == 0 or dim == 0 or 2**num_qubits != dim:
            raise SimulationError(
                f"density stack of shape {matrices.shape} is not a non-empty "
                "batch of power-of-two matrices"
            )
        traces = np.real(arrays.einsum("bii->b", matrices))
        if not np.allclose(traces, 1.0, atol=max(1e-6, arrays.state_atol())):
            raise SimulationError(
                "every density matrix in the stack must have unit trace"
            )
        if not np.allclose(
            matrices,
            matrices.conj().transpose(0, 2, 1),
            atol=max(1e-8, arrays.state_atol()),
        ):
            raise SimulationError(
                "every density matrix in the stack must be Hermitian"
            )
        state = cls(batch_size, num_qubits)
        state._matrices = matrices.copy()
        return state

    @classmethod
    def from_density_matrices(cls, states: Iterable) -> "BatchedDensityMatrix":
        """Stack per-circuit :class:`~repro.quantum.density_matrix.DensityMatrix` objects."""
        rows = [state.data for state in states]
        if not rows:
            raise SimulationError("cannot build a batch from zero density matrices")
        return cls.from_matrices(np.stack(rows))

    @property
    def batch_size(self) -> int:
        """Number of states in the stack."""
        return self._batch_size

    @property
    def num_qubits(self) -> int:
        """Number of qubits of each state."""
        return self._num_qubits

    @property
    def matrices(self) -> np.ndarray:
        """The ``(batch, 2**n, 2**n)`` density stack (a copy)."""
        return self._matrices.copy()

    def broadcast_to(self, batch_size: int) -> "BatchedDensityMatrix":
        """Repeat a single-element batch into a ``batch_size``-element one.

        Counterpart of :meth:`BatchedStatevector.broadcast_to` for the noisy
        engine's shared-prefix execution: ``np.repeat`` of one evolved
        density matrix is bit-identical to evolving a stack of identical
        ones, because every batched contraction is elementwise over axis 0.
        """
        batch_size = int(batch_size)
        if self._batch_size != 1:
            raise SimulationError(
                "broadcast_to requires a single-element batch, got "
                f"{self._batch_size}"
            )
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        state = BatchedDensityMatrix.__new__(BatchedDensityMatrix)
        state._batch_size = batch_size
        state._num_qubits = self._num_qubits
        state._matrices = np.repeat(self._matrices, batch_size, axis=0)
        return state

    def density_matrix(self, index: int):
        """Extract one batch element as a :class:`DensityMatrix`."""
        from repro.quantum.density_matrix import DensityMatrix

        if not 0 <= index < self._batch_size:
            raise SimulationError(
                f"batch index {index} out of range for batch of {self._batch_size}"
            )
        return DensityMatrix._from_trusted(
            self._matrices[index].copy(), self._num_qubits
        )

    def traces(self) -> np.ndarray:
        """Per-element traces (1.0 for valid states)."""
        return np.real(arrays.einsum("bii->b", self._matrices))

    def purities(self) -> np.ndarray:
        """Per-element purities ``Tr(rho^2)``; 1.0 for pure states."""
        return np.real(arrays.einsum("bij,bji->b", self._matrices, self._matrices))

    def probabilities(self, qubits: Optional[Sequence[int]] = None) -> np.ndarray:
        """Per-element Z-basis probabilities, shape ``(batch, 2**m)``.

        Clips small negative diagonal entries (numerical noise from Kraus
        accumulation) and renormalises each element, exactly as
        :meth:`DensityMatrix.probabilities` does per circuit.  Elements whose
        diagonal sums to zero or is not finite raise
        :class:`~repro.exceptions.SimulationError` instead of yielding NaN
        probabilities.
        """
        diagonal = np.clip(np.real(arrays.einsum("bii->bi", self._matrices)), 0.0, None)
        totals = diagonal.sum(axis=1)
        if not np.all(np.isfinite(totals)) or np.any(totals <= 0.0):
            raise SimulationError(
                "cannot compute probabilities: a density-matrix diagonal is "
                "all zero or not finite"
            )
        probs = diagonal / totals[:, None]
        if qubits is None:
            return probs
        return marginal_probabilities(probs, qubits, self._num_qubits)

    # ------------------------------------------------------------------ #
    # Evolution
    # ------------------------------------------------------------------ #
    def _check_qubits(self, qubits: Sequence[int]) -> Tuple[int, ...]:
        qubits = tuple(int(q) for q in qubits)
        if len(set(qubits)) != len(qubits):
            raise SimulationError(f"duplicate qubit indices in {qubits}")
        for q in qubits:
            if q < 0 or q >= self._num_qubits:
                raise SimulationError(
                    f"qubit index {q} out of range for {self._num_qubits} qubits"
                )
        return qubits

    def _operator_term(self, operator: np.ndarray, k: int) -> Tuple[np.ndarray, bool]:
        """One conjugation superoperator ``kron(K, K.conj())`` for ``K``.

        ``K`` is a shared ``(2**k, 2**k)`` matrix (term shape
        ``(4**k, 4**k)``) or a per-element ``(batch, 2**k, 2**k)`` stack
        (term shape ``(batch, 4**k, 4**k)``).
        """
        operator = arrays.as_complex(operator)
        if operator.ndim == 3:
            if operator.shape != (self._batch_size, 2**k, 2**k):
                raise SimulationError(
                    f"batched operator shape {operator.shape} does not match batch "
                    f"{self._batch_size} on {k} qubit(s)"
                )
            conjugate = operator.conj()
            term = (
                operator[:, :, None, :, None] * conjugate[:, None, :, None, :]
            ).reshape(self._batch_size, 4**k, 4**k)
            return term, True
        if operator.shape != (2**k, 2**k):
            raise SimulationError(
                f"operator shape {operator.shape} does not match {k} qubit(s)"
            )
        return arrays.kron(operator, operator.conj()), False

    def _apply_superop(
        self, superop: np.ndarray, qubits: Tuple[int, ...], per_element: bool
    ) -> None:
        """Contract a channel superoperator with the qubits' axis pairs.

        Each batch element is viewed as a ``(2,) * (2n)`` tensor whose axis
        ``q`` is qubit ``q``'s row (ket) index and axis ``n + q`` its column
        (bra) index.  The ``2k`` axes belonging to ``qubits`` are moved to
        the end and flattened into a length-``4**k`` vectorised index, so the
        whole channel — every Kraus operator at once — is a single
        ``(rest, 4**k) @ (4**k, 4**k)`` matmul across the entire batch
        (batched matmul for a per-element superoperator stack).
        """
        n = self._num_qubits
        k = len(qubits)
        dim = 2**n
        tensor = self._matrices.reshape((self._batch_size,) + (2,) * (2 * n))
        source_axes = tuple(1 + q for q in qubits) + tuple(1 + n + q for q in qubits)
        ndim = 1 + 2 * n
        dest_axes = tuple(range(ndim - 2 * k, ndim))
        moved = np.moveaxis(tensor, source_axes, dest_axes)
        moved_shape = moved.shape
        if per_element:
            flat = np.ascontiguousarray(moved).reshape(self._batch_size, -1, 4**k)
            out = arrays.matmul(flat, superop.transpose(0, 2, 1))
        else:
            flat = np.ascontiguousarray(moved).reshape(-1, 4**k)
            out = arrays.matmul(flat, superop.T)
        out = np.moveaxis(out.reshape(moved_shape), dest_axes, source_axes)
        self._matrices = np.ascontiguousarray(out).reshape(self._batch_size, dim, dim)

    def apply_superoperator(
        self, superop: np.ndarray, qubits: Sequence[int]
    ) -> "BatchedDensityMatrix":
        """Apply a raw channel superoperator to ``qubits`` of every element.

        ``superop`` is a shared ``(4**k, 4**k)`` matrix (applied to all
        elements) or a per-element ``(batch, 4**k, 4**k)`` stack in the
        vectorised index layout of :func:`conjugation_superoperator`.  This is
        the public surface the compiled-program executor uses to apply
        unitaries whose noise channels were precomposed into a single
        superoperator at compile time.  Returns ``self`` to allow chaining.
        """
        qubits = self._check_qubits(qubits)
        k = len(qubits)
        superop = arrays.as_complex(superop)
        per_element = superop.ndim == 3
        expected = (
            (self._batch_size, 4**k, 4**k) if per_element else (4**k, 4**k)
        )
        if superop.shape != expected:
            raise SimulationError(
                f"superoperator shape {superop.shape} does not match "
                f"{'batch ' + str(self._batch_size) + ' on ' if per_element else ''}"
                f"{k} qubit(s)"
            )
        self._apply_superop(superop, qubits, per_element)
        return self

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "BatchedDensityMatrix":
        """Apply a unitary to ``qubits`` of every batch element in place.

        ``matrix`` is either a shared ``(2**k, 2**k)`` unitary (applied to
        all elements) or a ``(batch, 2**k, 2**k)`` stack with one unitary per
        element.  Returns ``self`` to allow chaining.
        """
        qubits = self._check_qubits(qubits)
        superop, per_element = self._operator_term(matrix, len(qubits))
        self._apply_superop(superop, qubits, per_element)
        return self

    def apply_kraus(
        self, kraus_operators: Sequence[np.ndarray], qubits: Sequence[int]
    ) -> "BatchedDensityMatrix":
        """Apply a quantum channel ``rho -> sum_k K_k rho K_k†`` on ``qubits``.

        Each Kraus operator is a shared ``(2**k, 2**k)`` matrix or a
        per-element ``(batch, 2**k, 2**k)`` stack; flavours may be mixed
        within one channel.
        """
        qubits = self._check_qubits(qubits)
        kraus_operators = list(kraus_operators)
        if not kraus_operators:
            raise SimulationError("a channel needs at least one Kraus operator")
        k = len(qubits)
        superop: Optional[np.ndarray] = None
        per_element = False
        for kraus in kraus_operators:
            term, term_per_element = self._operator_term(kraus, k)
            if term_per_element and not per_element and superop is not None:
                superop = superop[None]  # broadcast the shared prefix sum
            elif per_element and not term_per_element:
                term = term[None]
            per_element = per_element or term_per_element
            superop = term if superop is None else superop + term
        self._apply_superop(superop, qubits, per_element)
        return self

    def apply_instruction(self, instruction) -> "BatchedDensityMatrix":
        """Apply one bound gate instruction to every batch element."""
        if instruction.name == "barrier":
            return self
        if not instruction.is_gate:
            raise SimulationError(
                f"BatchedDensityMatrix cannot apply non-unitary instruction "
                f"'{instruction.name}' directly"
            )
        return self.apply_matrix(instruction.matrix(), instruction.qubits)

    def evolve(self, circuit) -> "BatchedDensityMatrix":
        """Apply every gate of a bound, measurement-free circuit to all elements."""
        for instruction in circuit.instructions:
            if instruction.is_measurement or instruction.name == "reset":
                raise SimulationError(
                    "BatchedDensityMatrix.evolve only supports unitary circuits; "
                    "use DensityMatrixSimulator.run_batch for measurements"
                )
            self.apply_instruction(instruction)
        return self
