"""Pure-state simulation.

:class:`Statevector` stores the ``2**n`` complex amplitudes of an ``n``-qubit
register and applies gates by tensor contraction, which keeps the hot loop in
vectorised NumPy (no Python loop over amplitudes).  Seventeen qubits — the
widest circuit in the paper — is a 131,072-amplitude vector, comfortably
within NumPy's reach.

Bit-ordering convention
-----------------------
Qubit ``0`` is the *most significant* bit of the computational-basis index:
for two qubits, index ``2`` (binary ``10``) means qubit 0 is ``1`` and qubit 1
is ``0``.  Reshaping the flat vector to ``(2,) * n`` therefore maps axis ``q``
directly to qubit ``q``.  The batched engine in :mod:`repro.quantum.batched`
uses the same per-state layout with a leading batch axis (``(batch, 2**n)``);
the two evolve identically gate-for-gate, which the batched/loop equivalence
tests pin down to 1e-12.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro import arrays
from repro.exceptions import SimulationError
from repro.quantum.operations import Instruction
from repro.utils.rng import RandomState, ensure_rng


def marginal_probabilities(
    probs: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Marginalise ``(batch, 2**n)`` probabilities onto ``qubits`` in order.

    Shared by :class:`Statevector` and
    :class:`~repro.quantum.batched.BatchedStatevector` so the validation and
    axis bookkeeping (distinct qubits, range check, caller-order permutation)
    have a single implementation.  Returns shape ``(batch, 2**len(qubits))``.
    """
    qubits = tuple(int(q) for q in qubits)
    if len(set(qubits)) != len(qubits):
        # A duplicated qubit collapses two requested axes onto one tensor
        # axis, so the set-based reduction below and the permutation would
        # silently disagree and return a wrong-shaped marginal.
        raise SimulationError(
            f"duplicate qubit indices in {qubits}; marginal probabilities "
            "require distinct qubits"
        )
    for q in qubits:
        if q < 0 or q >= num_qubits:
            raise SimulationError(
                f"qubit index {q} out of range for {num_qubits} qubits"
            )
    batch = probs.shape[0]
    tensor = probs.reshape((batch,) + (2,) * num_qubits)
    keep = set(qubits)
    other_axes = tuple(ax + 1 for ax in range(num_qubits) if ax not in keep)
    marginal = tensor.sum(axis=other_axes) if other_axes else tensor
    # ``marginal`` axis 1 + i corresponds to sorted(qubits)[i]; permute the
    # axes into the caller's requested qubit order.
    if len(qubits) > 1:
        sorted_qubits = sorted(qubits)
        perm = [0] + [1 + sorted_qubits.index(q) for q in qubits]
        marginal = np.transpose(marginal, axes=perm)
    return np.ascontiguousarray(marginal).reshape(batch, -1)


class Statevector:
    """State of an ``n``-qubit register as a complex amplitude vector.

    Parameters
    ----------
    data:
        Either an integer qubit count (initialises ``|0...0>``) or an
        amplitude array of length ``2**n``.
    normalize:
        When passing raw amplitudes, renormalise them (default: validate that
        they are already normalised).
    """

    def __init__(self, data, normalize: bool = False) -> None:
        if isinstance(data, (int, np.integer)):
            num_qubits = int(data)
            if num_qubits <= 0:
                raise SimulationError(f"need at least one qubit, got {num_qubits}")
            amplitudes = arrays.zeros(2**num_qubits)
            amplitudes[0] = 1.0
        else:
            amplitudes = arrays.as_complex(data).ravel().copy()
            size = amplitudes.shape[0]
            num_qubits = int(round(math.log2(size))) if size else 0
            if size == 0 or 2**num_qubits != size:
                raise SimulationError(f"amplitude vector length {size} is not a power of two")
            norm = arrays.norm(amplitudes)
            if norm == 0:
                raise SimulationError("amplitude vector must not be zero")
            if normalize:
                amplitudes = amplitudes / norm
            elif not math.isclose(norm, 1.0, abs_tol=arrays.state_atol()):
                raise SimulationError(
                    f"amplitude vector is not normalised (norm={norm:.6f}); "
                    "pass normalize=True to renormalise"
                )
        self._num_qubits = num_qubits
        self._amplitudes = amplitudes

    # ------------------------------------------------------------------ #
    # Constructors and accessors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Build a computational-basis state from a bit-string label.

        ``Statevector.from_label("10")`` prepares qubit 0 in ``|1>`` and qubit
        1 in ``|0>``.
        """
        if not label or any(ch not in "01" for ch in label):
            raise SimulationError(f"label must be a non-empty bit string, got {label!r}")
        index = int(label, 2)
        amplitudes = arrays.zeros(2 ** len(label))
        amplitudes[index] = 1.0
        return cls(amplitudes)

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    @property
    def data(self) -> np.ndarray:
        """Amplitude vector (a copy, to preserve immutability from outside)."""
        return self._amplitudes.copy()

    def copy(self) -> "Statevector":
        """Deep copy."""
        return Statevector(self._amplitudes.copy())

    def norm(self) -> float:
        """Euclidean norm of the amplitude vector (1.0 for a valid state)."""
        return float(arrays.norm(self._amplitudes))

    def probabilities(self, qubits: Optional[Sequence[int]] = None) -> np.ndarray:
        """Measurement probabilities, optionally marginalised onto ``qubits``.

        The returned vector is indexed with the same most-significant-first
        convention as the full state.
        """
        probs = np.abs(self._amplitudes) ** 2
        if qubits is None:
            return probs
        return marginal_probabilities(probs[None, :], qubits, self._num_qubits)[0]

    def expectation_z(self, qubit: int) -> float:
        """Expectation value of the Pauli-Z operator on ``qubit``."""
        probs = self.probabilities([qubit])
        return float(probs[0] - probs[1])

    # ------------------------------------------------------------------ #
    # Evolution
    # ------------------------------------------------------------------ #
    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "Statevector":
        """Apply a ``2**k x 2**k`` matrix to qubits ``qubits`` in place.

        Returns ``self`` to allow chaining.
        """
        qubits = tuple(int(q) for q in qubits)
        k = len(qubits)
        matrix = arrays.as_complex(matrix)
        if matrix.shape != (2**k, 2**k):
            raise SimulationError(
                f"matrix shape {matrix.shape} does not match {k} qubit(s)"
            )
        for q in qubits:
            if q < 0 or q >= self._num_qubits:
                raise SimulationError(f"qubit index {q} out of range for {self._num_qubits} qubits")
        n = self._num_qubits
        tensor = self._amplitudes.reshape((2,) * n)
        gate_tensor = matrix.reshape((2,) * (2 * k))
        # Contract the gate's input axes (the last k axes of gate_tensor) with
        # the state's target-qubit axes.
        moved = arrays.tensordot(
            gate_tensor, tensor, axes=(tuple(range(k, 2 * k)), qubits)
        )
        # tensordot puts the gate's output axes first; move them back to the
        # target-qubit positions.
        moved = np.moveaxis(moved, tuple(range(k)), qubits)
        self._amplitudes = np.ascontiguousarray(moved).reshape(-1)
        return self

    def apply_instruction(self, instruction: Instruction) -> "Statevector":
        """Apply a bound gate instruction."""
        if instruction.name == "barrier":
            return self
        if not instruction.is_gate:
            raise SimulationError(
                f"Statevector cannot apply non-unitary instruction '{instruction.name}'; "
                "use StatevectorSimulator for measurement/reset handling"
            )
        return self.apply_matrix(instruction.matrix(), instruction.qubits)

    def evolve(self, circuit) -> "Statevector":
        """Apply every gate of a (measurement-free) circuit."""
        for instruction in circuit.instructions:
            if instruction.is_measurement or instruction.name == "reset":
                raise SimulationError(
                    "Statevector.evolve only supports unitary circuits; "
                    "use StatevectorSimulator.run for circuits with measurements"
                )
            self.apply_instruction(instruction)
        return self

    # ------------------------------------------------------------------ #
    # Measurement and collapse
    # ------------------------------------------------------------------ #
    def measure(self, qubit: int, rng: RandomState = None) -> Tuple[int, "Statevector"]:
        """Projectively measure ``qubit`` in the Z basis.

        Returns the outcome (0 or 1) and collapses the state in place.
        """
        generator = ensure_rng(rng)
        probs = self.probabilities([qubit])
        outcome = int(generator.random() < probs[1])
        self.collapse(qubit, outcome)
        return outcome, self

    def collapse(self, qubit: int, outcome: int) -> "Statevector":
        """Project onto ``qubit == outcome`` and renormalise."""
        if outcome not in (0, 1):
            raise SimulationError(f"measurement outcome must be 0 or 1, got {outcome}")
        n = self._num_qubits
        tensor = self._amplitudes.reshape((2,) * n)
        index = [slice(None)] * n
        index[qubit] = 1 - outcome
        tensor = tensor.copy()
        tensor[tuple(index)] = 0.0
        flat = tensor.reshape(-1)
        norm = arrays.norm(flat)
        if norm == 0:
            raise SimulationError(
                f"cannot collapse qubit {qubit} onto outcome {outcome}: probability is zero"
            )
        self._amplitudes = flat / norm
        return self

    def reset(self, qubit: int, rng: RandomState = None) -> "Statevector":
        """Reset ``qubit`` to ``|0>`` (measure, then flip if needed)."""
        outcome, _ = self.measure(qubit, rng=rng)
        if outcome == 1:
            from repro.quantum import gates

            self.apply_matrix(gates.PAULI_X, (qubit,))
        return self

    def sample_counts(
        self,
        shots: int,
        qubits: Optional[Sequence[int]] = None,
        rng: RandomState = None,
    ) -> Dict[str, int]:
        """Sample measurement outcomes without collapsing the state.

        Returns a histogram mapping bit-strings (most significant qubit first)
        to counts.
        """
        if shots <= 0:
            raise SimulationError(f"shots must be positive, got {shots}")
        generator = ensure_rng(rng)
        qubits = tuple(range(self._num_qubits)) if qubits is None else tuple(qubits)
        probs = self.probabilities(qubits)
        outcomes = arrays.multinomial(generator, shots, probs)
        width = len(qubits)
        counts: Dict[str, int] = {}
        for index, count in enumerate(outcomes):
            if count:
                counts[format(index, f"0{width}b")] = int(count)
        return counts

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    def inner(self, other: "Statevector") -> complex:
        """Inner product ``<self|other>``."""
        if other.num_qubits != self.num_qubits:
            raise SimulationError(
                f"cannot take inner product of {self.num_qubits}- and "
                f"{other.num_qubits}-qubit states"
            )
        return complex(arrays.vdot(self._amplitudes, other._amplitudes))

    def fidelity(self, other: "Statevector") -> float:
        """State fidelity ``|<self|other>|**2``."""
        return float(abs(self.inner(other)) ** 2)

    def tensor(self, other: "Statevector") -> "Statevector":
        """Tensor product ``self ⊗ other`` (self's qubits come first)."""
        return Statevector(arrays.kron(self._amplitudes, other._amplitudes))

    def equiv(self, other: "Statevector", atol: float = 1e-8) -> bool:
        """Whether two states are equal up to a global phase."""
        if other.num_qubits != self.num_qubits:
            return False
        overlap = abs(self.inner(other))
        return bool(math.isclose(overlap, 1.0, abs_tol=atol))
