"""Bloch-sphere utilities.

The paper's Fig. 8 visualises how the learned per-class state rotates towards
the training data over epochs.  This module extracts per-qubit Bloch vectors
from multi-qubit states (via the reduced density matrix) and provides simple
geometric helpers so the benchmark can report angular movement numerically
(no plotting dependency is required offline).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence

import numpy as np

from repro.arrays import COMPLEX_DTYPE

from repro.quantum import gates
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.statevector import Statevector


@dataclasses.dataclass(frozen=True)
class BlochVector:
    """Cartesian Bloch-sphere coordinates of a single qubit."""

    x: float
    y: float
    z: float

    @property
    def length(self) -> float:
        """Vector norm (1.0 for pure single-qubit states, <1 for mixed)."""
        return math.sqrt(self.x**2 + self.y**2 + self.z**2)

    @property
    def polar_angle(self) -> float:
        """Polar angle theta from the +Z axis, in radians."""
        length = self.length
        if length == 0:
            return 0.0
        return math.acos(max(-1.0, min(1.0, self.z / length)))

    @property
    def azimuthal_angle(self) -> float:
        """Azimuthal angle phi in the X-Y plane, in radians."""
        return math.atan2(self.y, self.x)

    def angle_to(self, other: "BlochVector") -> float:
        """Angle in radians between two Bloch vectors (directional difference)."""
        len_a, len_b = self.length, other.length
        if len_a == 0 or len_b == 0:
            return 0.0
        dot = (self.x * other.x + self.y * other.y + self.z * other.z) / (len_a * len_b)
        return math.acos(max(-1.0, min(1.0, dot)))

    def as_array(self) -> np.ndarray:
        """Coordinates as a NumPy array ``[x, y, z]``."""
        return np.array([self.x, self.y, self.z])


def bloch_vector_from_density_matrix(rho: np.ndarray) -> BlochVector:
    """Bloch vector of a single-qubit density matrix."""
    rho = np.asarray(rho, dtype=COMPLEX_DTYPE)
    if rho.shape != (2, 2):
        raise ValueError(f"expected a 2x2 density matrix, got shape {rho.shape}")
    x = float(np.real(np.trace(rho @ gates.PAULI_X)))
    y = float(np.real(np.trace(rho @ gates.PAULI_Y)))
    z = float(np.real(np.trace(rho @ gates.PAULI_Z)))
    return BlochVector(x, y, z)


def bloch_vector(state: Statevector | DensityMatrix, qubit: int = 0) -> BlochVector:
    """Bloch vector of ``qubit`` within a (possibly multi-qubit) state."""
    if isinstance(state, Statevector):
        state = DensityMatrix(state)
    reduced = state.partial_trace([qubit])
    return bloch_vector_from_density_matrix(reduced.data)


def bloch_vectors(state: Statevector | DensityMatrix, qubits: Sequence[int] | None = None) -> List[BlochVector]:
    """Bloch vectors of every qubit in ``qubits`` (default: all qubits)."""
    if qubits is None:
        qubits = range(state.num_qubits)
    return [bloch_vector(state, q) for q in qubits]


def bloch_vector_from_angles(theta: float, phi: float) -> BlochVector:
    """Bloch vector of the pure state ``RY(theta) RZ(phi) |0>``-style angles.

    ``theta`` is the polar angle from +Z and ``phi`` the azimuthal angle.
    """
    return BlochVector(
        math.sin(theta) * math.cos(phi),
        math.sin(theta) * math.sin(phi),
        math.cos(theta),
    )


def expectation_triplet(state: Statevector | DensityMatrix, qubit: int = 0) -> np.ndarray:
    """Convenience accessor: ``[<X>, <Y>, <Z>]`` for one qubit."""
    return bloch_vector(state, qubit).as_array()
