"""Quantum-computing substrate.

A self-contained replacement for the Qiskit simulator stack the paper uses:
gate library, circuit IR, statevector and density-matrix engines, noise
channels, SWAP-test fidelity primitives, Bloch-sphere utilities, device
topologies, a transpiler, and execution backends.
"""

from repro.quantum import gates
from repro.quantum.batched import BatchedStatevector
from repro.quantum.batched_density import BatchedDensityMatrix
from repro.quantum.backend import (
    Backend,
    DeviceProperties,
    IdealBackend,
    NoisyBackend,
    SampledBackend,
    validate_shots,
)
from repro.quantum.bloch import BlochVector, bloch_vector, bloch_vectors
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.fidelity import (
    build_swap_test_circuit,
    fidelities_from_swap_test_probabilities,
    fidelity_from_swap_test_probability,
    state_fidelity,
    swap_test_fidelity_exact,
    swap_test_fidelity_sampled,
    swap_test_probability_from_fidelity,
)
from repro.quantum.measurement import (
    Counts,
    counts_from_probabilities,
    normalize_outcome_probabilities,
)
from repro.quantum.noise import (
    NoiseModel,
    ReadoutError,
    amplitude_damping_kraus,
    bit_flip_kraus,
    depolarizing_kraus,
    phase_damping_kraus,
    phase_flip_kraus,
    thermal_relaxation_kraus,
)
from repro.quantum.operations import Instruction, Parameter, ScaledParameter
from repro.quantum.program import (
    DensitySuperoperatorEngine,
    GateStep,
    StatevectorEngine,
    SweepProgram,
    TilePlan,
)
from repro.quantum.register import ClassicalRegister, QuantumRegister
from repro.quantum.simulator import (
    DensityMatrixSimulator,
    SimulationResult,
    StatevectorSimulator,
)
from repro.quantum.statevector import Statevector
from repro.quantum.topology import CouplingMap
from repro.quantum.transpiler import (
    BASIS_GATES,
    RoutingResult,
    TranspileCache,
    TranspileResult,
    circuit_structure_key,
    decompose_to_basis,
    route_circuit,
    transpile,
)

__all__ = [
    "gates",
    "BatchedDensityMatrix",
    "BatchedStatevector",
    "Backend",
    "DeviceProperties",
    "IdealBackend",
    "NoisyBackend",
    "SampledBackend",
    "validate_shots",
    "BlochVector",
    "bloch_vector",
    "bloch_vectors",
    "QuantumCircuit",
    "DensityMatrix",
    "build_swap_test_circuit",
    "fidelities_from_swap_test_probabilities",
    "fidelity_from_swap_test_probability",
    "state_fidelity",
    "swap_test_fidelity_exact",
    "swap_test_fidelity_sampled",
    "swap_test_probability_from_fidelity",
    "Counts",
    "counts_from_probabilities",
    "normalize_outcome_probabilities",
    "NoiseModel",
    "ReadoutError",
    "amplitude_damping_kraus",
    "bit_flip_kraus",
    "depolarizing_kraus",
    "phase_damping_kraus",
    "phase_flip_kraus",
    "thermal_relaxation_kraus",
    "Instruction",
    "Parameter",
    "ScaledParameter",
    "DensitySuperoperatorEngine",
    "GateStep",
    "StatevectorEngine",
    "SweepProgram",
    "TilePlan",
    "ClassicalRegister",
    "QuantumRegister",
    "DensityMatrixSimulator",
    "SimulationResult",
    "StatevectorSimulator",
    "Statevector",
    "CouplingMap",
    "BASIS_GATES",
    "RoutingResult",
    "TranspileCache",
    "TranspileResult",
    "circuit_structure_key",
    "decompose_to_basis",
    "route_circuit",
    "transpile",
]
