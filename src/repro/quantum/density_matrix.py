"""Mixed-state simulation.

:class:`DensityMatrix` represents an ``n``-qubit state as a ``2**n x 2**n``
density operator and supports unitary evolution, Kraus channels (noise),
partial trace, measurement statistics and sampling.  It is the substrate for
the simulated IBM-Q / IonQ hardware backends (paper Section 5.4): the
hardware experiments in the paper use at most 5 qubits, i.e. 32x32 matrices.

The bit-ordering convention matches :class:`repro.quantum.statevector.Statevector`:
qubit 0 is the most significant bit of the basis index.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro import arrays
from repro.exceptions import SimulationError
from repro.quantum.operations import Instruction
from repro.quantum.statevector import Statevector
from repro.utils.rng import RandomState, ensure_rng


class DensityMatrix:
    """Density operator of an ``n``-qubit register.

    Parameters
    ----------
    data:
        An integer qubit count (prepares ``|0...0><0...0|``), a
        :class:`Statevector`, or a square matrix of dimension ``2**n``.
    """

    def __init__(self, data) -> None:
        if isinstance(data, (int, np.integer)):
            num_qubits = int(data)
            if num_qubits <= 0:
                raise SimulationError(f"need at least one qubit, got {num_qubits}")
            matrix = arrays.zeros((2**num_qubits, 2**num_qubits))
            matrix[0, 0] = 1.0
        elif isinstance(data, Statevector):
            vector = data.data
            matrix = arrays.outer(vector, vector.conj())
            num_qubits = data.num_qubits
        else:
            matrix = arrays.as_complex(data).copy()
            if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
                raise SimulationError(f"density matrix must be square, got shape {matrix.shape}")
            dim = matrix.shape[0]
            num_qubits = int(round(math.log2(dim)))
            if 2**num_qubits != dim:
                raise SimulationError(f"density matrix dimension {dim} is not a power of two")
            trace = arrays.trace(matrix).real
            if not math.isclose(trace, 1.0, abs_tol=max(1e-6, arrays.state_atol())):
                raise SimulationError(f"density matrix must have unit trace, got {trace:.6f}")
            if not np.allclose(matrix, matrix.conj().T, atol=max(1e-8, arrays.state_atol())):
                # A non-Hermitian operator is not a physical state: its
                # diagonal need not be real, so downstream "probabilities"
                # would silently go negative or complex.  Fail at
                # construction instead.
                raise SimulationError("density matrix must be Hermitian")
        self._num_qubits = num_qubits
        self._matrix = matrix

    @classmethod
    def _from_trusted(cls, matrix: np.ndarray, num_qubits: int) -> "DensityMatrix":
        """Wrap an engine-produced matrix without copying or re-validating.

        Only for simulation engines handing over states they evolved
        themselves (e.g. :meth:`BatchedDensityMatrix.density_matrix`): the
        constructor's trace/Hermiticity checks exist to reject non-physical
        *user input*, and re-running them here would both duplicate work per
        batch element and let accumulated rounding raise on the batched path
        where the in-place-mutating loop path cannot.
        """
        state = cls.__new__(cls)
        state._num_qubits = int(num_qubits)
        state._matrix = matrix
        return state

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    @property
    def data(self) -> np.ndarray:
        """Density matrix (a copy)."""
        return self._matrix.copy()

    def copy(self) -> "DensityMatrix":
        """Deep copy."""
        return DensityMatrix(self._matrix.copy())

    def trace(self) -> float:
        """Trace of the density matrix (1.0 for a valid state)."""
        return float(arrays.trace(self._matrix).real)

    def purity(self) -> float:
        """Purity ``Tr(rho^2)``; 1.0 for pure states."""
        return float(arrays.trace(arrays.matmul(self._matrix, self._matrix)).real)

    def probabilities(self, qubits: Optional[Sequence[int]] = None) -> np.ndarray:
        """Z-basis measurement probabilities, optionally marginalised.

        Raises
        ------
        SimulationError
            If the diagonal sums to zero or is not finite — dividing through
            would silently yield NaN "probabilities" (mirrors the zero/empty
            guard in :func:`~repro.quantum.measurement.counts_from_probabilities`).
        """
        diagonal = np.clip(np.real(np.diag(self._matrix)), 0.0, None)
        total = diagonal.sum()
        if not np.isfinite(total) or total <= 0.0:
            raise SimulationError(
                "cannot compute probabilities: density-matrix diagonal is all "
                "zero or not finite"
            )
        diagonal = diagonal / total
        if qubits is None:
            return diagonal
        qubits = tuple(int(q) for q in qubits)
        tensor = diagonal.reshape((2,) * self._num_qubits)
        keep = set(qubits)
        other_axes = tuple(ax for ax in range(self._num_qubits) if ax not in keep)
        marginal = tensor.sum(axis=other_axes) if other_axes else tensor
        if len(qubits) > 1:
            sorted_qubits = sorted(qubits)
            perm = [sorted_qubits.index(q) for q in qubits]
            marginal = np.transpose(marginal, axes=perm)
        return np.ascontiguousarray(marginal).reshape(-1)

    def expectation_z(self, qubit: int) -> float:
        """Expectation value of Pauli-Z on ``qubit``."""
        probs = self.probabilities([qubit])
        return float(probs[0] - probs[1])

    # ------------------------------------------------------------------ #
    # Evolution
    # ------------------------------------------------------------------ #
    def _expand_operator(self, matrix: np.ndarray, qubits: Tuple[int, ...]) -> np.ndarray:
        """Embed a ``k``-qubit operator into the full ``n``-qubit space."""
        n = self._num_qubits
        k = len(qubits)
        op_tensor = arrays.as_complex(matrix).reshape((2,) * (2 * k))
        identity = arrays.eye(2**n).reshape((2,) * (2 * n))
        # Contract the operator's input axes with the identity's output axes
        # at the target positions to place the operator on ``qubits``.
        out = arrays.tensordot(op_tensor, identity, axes=(tuple(range(k, 2 * k)), qubits))
        out = np.moveaxis(out, tuple(range(k)), qubits)
        return out.reshape(2**n, 2**n)

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "DensityMatrix":
        """Apply a unitary acting on ``qubits``: ``rho -> U rho U†``."""
        qubits = tuple(int(q) for q in qubits)
        for q in qubits:
            if q < 0 or q >= self._num_qubits:
                raise SimulationError(f"qubit index {q} out of range for {self._num_qubits} qubits")
        full = self._expand_operator(arrays.as_complex(matrix), qubits)
        self._matrix = full @ self._matrix @ full.conj().T
        return self

    def apply_kraus(self, kraus_operators: Sequence[np.ndarray], qubits: Sequence[int]) -> "DensityMatrix":
        """Apply a quantum channel given by Kraus operators on ``qubits``."""
        qubits = tuple(int(q) for q in qubits)
        result = np.zeros_like(self._matrix)
        for kraus in kraus_operators:
            full = self._expand_operator(arrays.as_complex(kraus), qubits)
            result += full @ self._matrix @ full.conj().T
        self._matrix = result
        return self

    def apply_instruction(self, instruction: Instruction) -> "DensityMatrix":
        """Apply a bound gate instruction."""
        if instruction.name == "barrier":
            return self
        if not instruction.is_gate:
            raise SimulationError(
                f"DensityMatrix cannot apply non-unitary instruction '{instruction.name}' directly"
            )
        return self.apply_matrix(instruction.matrix(), instruction.qubits)

    def evolve(self, circuit) -> "DensityMatrix":
        """Apply every gate of a measurement-free circuit."""
        for instruction in circuit.instructions:
            if instruction.is_measurement or instruction.name == "reset":
                raise SimulationError(
                    "DensityMatrix.evolve only supports unitary circuits; "
                    "use DensityMatrixSimulator.run for measurements"
                )
            self.apply_instruction(instruction)
        return self

    # ------------------------------------------------------------------ #
    # Measurement and reduction
    # ------------------------------------------------------------------ #
    def partial_trace(self, keep: Sequence[int]) -> "DensityMatrix":
        """Trace out every qubit not in ``keep``.

        The returned density matrix orders its qubits as listed in ``keep``.
        """
        keep = tuple(int(q) for q in keep)
        n = self._num_qubits
        if len(set(keep)) != len(keep) or any(q < 0 or q >= n for q in keep):
            raise SimulationError(f"invalid qubits to keep: {keep}")
        traced = [q for q in range(n) if q not in keep]
        k = len(keep)
        tensor = self._matrix.reshape((2,) * (2 * n))
        # Reorder row and column axes so the kept qubits (in caller order)
        # come first, then trace the remaining qubits pairwise.
        row_order = list(keep) + traced
        perm = row_order + [n + axis for axis in row_order]
        tensor = np.transpose(tensor, axes=perm)
        tensor = tensor.reshape(2**k, 2 ** (n - k), 2**k, 2 ** (n - k))
        reduced = arrays.einsum("ajbj->ab", tensor)
        return DensityMatrix(reduced)

    def measure_probability(self, qubit: int, outcome: int) -> float:
        """Probability of observing ``outcome`` when measuring ``qubit``."""
        probs = self.probabilities([qubit])
        return float(probs[outcome])

    def collapse(self, qubit: int, outcome: int) -> "DensityMatrix":
        """Project onto ``qubit == outcome`` and renormalise."""
        if outcome not in (0, 1):
            raise SimulationError(f"measurement outcome must be 0 or 1, got {outcome}")
        projector = arrays.zeros((2, 2))
        projector[outcome, outcome] = 1.0
        full = self._expand_operator(projector, (qubit,))
        projected = full @ self._matrix @ full.conj().T
        norm = arrays.trace(projected).real
        if norm <= 0:
            raise SimulationError(
                f"cannot collapse qubit {qubit} onto outcome {outcome}: probability is zero"
            )
        self._matrix = projected / norm
        return self

    def measure(self, qubit: int, rng: RandomState = None) -> Tuple[int, "DensityMatrix"]:
        """Projectively measure ``qubit`` and collapse in place."""
        generator = ensure_rng(rng)
        p1 = self.measure_probability(qubit, 1)
        outcome = int(generator.random() < p1)
        self.collapse(qubit, outcome)
        return outcome, self

    def reset(self, qubit: int, rng: RandomState = None) -> "DensityMatrix":
        """Reset ``qubit`` to ``|0>``."""
        from repro.quantum import gates

        outcome, _ = self.measure(qubit, rng=rng)
        if outcome == 1:
            self.apply_matrix(gates.PAULI_X, (qubit,))
        return self

    def sample_counts(
        self,
        shots: int,
        qubits: Optional[Sequence[int]] = None,
        rng: RandomState = None,
    ) -> Dict[str, int]:
        """Sample Z-basis measurement outcomes without collapsing the state."""
        if shots <= 0:
            raise SimulationError(f"shots must be positive, got {shots}")
        from repro.quantum.measurement import normalize_outcome_probabilities

        generator = ensure_rng(rng)
        qubits = tuple(range(self._num_qubits)) if qubits is None else tuple(qubits)
        # ``normalize_outcome_probabilities`` is the shared clip/renormalise
        # path of every sampler; it raises instead of dividing by zero when
        # the marginal collapses to an all-zero vector.
        probs = normalize_outcome_probabilities(self.probabilities(qubits))
        outcomes = arrays.multinomial(generator, shots, probs)
        width = len(qubits)
        counts: Dict[str, int] = {}
        for index, count in enumerate(outcomes):
            if count:
                counts[format(index, f"0{width}b")] = int(count)
        return counts

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    def fidelity(self, other: "DensityMatrix") -> float:
        """Uhlmann fidelity ``(Tr sqrt(sqrt(rho) sigma sqrt(rho)))**2``.

        When either state is pure the fidelity reduces to ``Tr(rho sigma)``,
        which avoids the numerically delicate matrix square roots.
        """
        if other.num_qubits != self.num_qubits:
            raise SimulationError("fidelity requires states of equal width")
        if self.purity() > 1.0 - 1e-10 or other.purity() > 1.0 - 1e-10:
            value = float(np.real(arrays.trace(arrays.matmul(self._matrix, other._matrix))))
            return min(max(value, 0.0), 1.0)
        from scipy.linalg import sqrtm

        sqrt_rho = sqrtm(self._matrix)
        inner = sqrtm(sqrt_rho @ other._matrix @ sqrt_rho)
        value = float(np.real(arrays.trace(inner)) ** 2)
        return min(max(value, 0.0), 1.0)
