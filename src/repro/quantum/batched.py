"""Batched pure-state simulation.

:class:`BatchedStatevector` evolves a whole *stack* of ``n``-qubit states at
once: amplitudes are stored as a ``(batch, 2**n)`` complex array and every
gate application is a single einsum over the batch axis.  This is the engine
behind the vectorised parameter-shift sweep — all ``2P`` shifted parameter
vectors of a gradient evaluation become one batch, so the per-gate Python
overhead of :class:`~repro.quantum.statevector.Statevector` is paid once per
gate instead of once per gate *per shifted vector*.

Gates come in two flavours:

* a shared ``(2**k, 2**k)`` matrix applied identically to every batch element
  (fixed gates such as H or CNOT), and
* a per-element ``(batch, 2**k, 2**k)`` stack (parameterised rotations whose
  angle differs across the batch, built by the ``*_batch`` constructors in
  :mod:`repro.quantum.gates`).

Conventions
-----------
Axis 0 is always the batch axis.  Within each batch element the amplitude
layout matches :class:`~repro.quantum.statevector.Statevector` exactly: qubit
``0`` is the *most significant* bit of the computational-basis index, so
reshaping one row to ``(2,) * n`` maps axis ``q`` to qubit ``q`` (and
reshaping the whole array to ``(batch,) + (2,) * n`` maps axis ``q + 1`` to
qubit ``q``).
"""

from __future__ import annotations

import math
import string
from typing import Iterable, Optional, Sequence

import numpy as np

from repro import arrays
from repro.exceptions import SimulationError
from repro.quantum import gates as gate_library
from repro.quantum.statevector import marginal_probabilities


class BatchedStatevector:
    """A stack of ``batch`` pure states on ``num_qubits`` qubits.

    Parameters
    ----------
    batch_size:
        Number of independent states in the stack (all initialised to
        ``|0...0>``).
    num_qubits:
        Width of each state.
    """

    def __init__(self, batch_size: int, num_qubits: int) -> None:
        batch_size = int(batch_size)
        num_qubits = int(num_qubits)
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        if num_qubits <= 0:
            raise SimulationError(f"need at least one qubit, got {num_qubits}")
        amplitudes = arrays.zeros((batch_size, 2**num_qubits))
        amplitudes[:, 0] = 1.0
        self._batch_size = batch_size
        self._num_qubits = num_qubits
        self._amplitudes = amplitudes

    # ------------------------------------------------------------------ #
    # Constructors and accessors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_amplitudes(cls, amplitudes: np.ndarray) -> "BatchedStatevector":
        """Wrap an existing ``(batch, 2**n)`` amplitude array (copied)."""
        amplitudes = arrays.as_complex(amplitudes)
        if amplitudes.ndim != 2:
            raise SimulationError(
                f"expected a (batch, 2**n) amplitude array, got shape {amplitudes.shape}"
            )
        batch_size, size = amplitudes.shape
        num_qubits = int(round(math.log2(size))) if size else 0
        if size == 0 or 2**num_qubits != size:
            raise SimulationError(f"amplitude row length {size} is not a power of two")
        state = cls(batch_size, num_qubits)
        state._amplitudes = amplitudes.copy()
        return state

    @classmethod
    def from_statevectors(cls, states: Iterable) -> "BatchedStatevector":
        """Stack per-sample :class:`~repro.quantum.statevector.Statevector` objects."""
        rows = [state.data for state in states]
        if not rows:
            raise SimulationError("cannot build a batch from zero statevectors")
        return cls.from_amplitudes(np.stack(rows))

    @property
    def batch_size(self) -> int:
        """Number of states in the stack."""
        return self._batch_size

    @property
    def num_qubits(self) -> int:
        """Number of qubits of each state."""
        return self._num_qubits

    @property
    def amplitudes(self) -> np.ndarray:
        """The ``(batch, 2**n)`` amplitude array (a copy)."""
        return self._amplitudes.copy()

    def broadcast_to(self, batch_size: int) -> "BatchedStatevector":
        """Repeat a single-element batch into a ``batch_size``-element one.

        The shared-prefix executor evolves a tile's common trained-state
        prefix once at batch 1 and then fans the state out across the tile.
        ``np.repeat`` of one evolved row is bit-identical to evolving a batch
        of identical rows (the batched einsum is elementwise over the batch
        axis), which is what keeps the shared-prefix path seed-exact.
        """
        batch_size = int(batch_size)
        if self._batch_size != 1:
            raise SimulationError(
                "broadcast_to requires a single-element batch, got "
                f"{self._batch_size}"
            )
        if batch_size <= 0:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        state = BatchedStatevector.__new__(BatchedStatevector)
        state._batch_size = batch_size
        state._num_qubits = self._num_qubits
        state._amplitudes = np.repeat(self._amplitudes, batch_size, axis=0)
        return state

    def statevector(self, index: int):
        """Extract one batch element as a :class:`Statevector`."""
        from repro.quantum.statevector import Statevector

        if not 0 <= index < self._batch_size:
            raise SimulationError(
                f"batch index {index} out of range for batch of {self._batch_size}"
            )
        return Statevector(self._amplitudes[index].copy())

    def norms(self) -> np.ndarray:
        """Per-element Euclidean norms (1.0 for valid states)."""
        return arrays.norm(self._amplitudes, axis=1)

    def probabilities(self, qubits: Optional[Sequence[int]] = None) -> np.ndarray:
        """Per-element measurement probabilities, shape ``(batch, 2**m)``.

        With ``qubits`` given, marginalises each state onto those (distinct)
        qubits in the requested order, mirroring
        :meth:`Statevector.probabilities` row by row.
        """
        probs = np.abs(self._amplitudes) ** 2
        if qubits is None:
            return probs
        return marginal_probabilities(probs, qubits, self._num_qubits)

    # ------------------------------------------------------------------ #
    # Evolution
    # ------------------------------------------------------------------ #
    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "BatchedStatevector":
        """Apply a gate to ``qubits`` of every batch element in place.

        ``matrix`` is either a shared ``(2**k, 2**k)`` unitary (applied to all
        elements) or a ``(batch, 2**k, 2**k)`` stack with one unitary per
        element.  Returns ``self`` to allow chaining.
        """
        qubits = tuple(int(q) for q in qubits)
        k = len(qubits)
        if len(set(qubits)) != k:
            raise SimulationError(f"duplicate qubit indices in {qubits}")
        for q in qubits:
            if q < 0 or q >= self._num_qubits:
                raise SimulationError(
                    f"qubit index {q} out of range for {self._num_qubits} qubits"
                )
        matrix = arrays.as_complex(matrix)
        per_element = matrix.ndim == 3
        if per_element:
            if matrix.shape != (self._batch_size, 2**k, 2**k):
                raise SimulationError(
                    f"batched matrix shape {matrix.shape} does not match batch "
                    f"{self._batch_size} on {k} qubit(s)"
                )
            gate = matrix.reshape((self._batch_size,) + (2,) * (2 * k))
        else:
            if matrix.shape != (2**k, 2**k):
                raise SimulationError(
                    f"matrix shape {matrix.shape} does not match {k} qubit(s)"
                )
            gate = matrix.reshape((2,) * (2 * k))

        n = self._num_qubits
        letters = string.ascii_letters
        if 1 + n + k > len(letters):
            raise SimulationError(f"cannot label einsum axes for {n} qubits")
        batch_axis = letters[0]
        state_axes = letters[1 : 1 + n]
        out_axes = letters[1 + n : 1 + n + k]
        gate_sub = (
            (batch_axis if per_element else "")
            + "".join(out_axes)
            + "".join(state_axes[q] for q in qubits)
        )
        in_sub = batch_axis + "".join(state_axes)
        result_axes = list(state_axes)
        for position, q in enumerate(qubits):
            result_axes[q] = out_axes[position]
        out_sub = batch_axis + "".join(result_axes)

        tensor = self._amplitudes.reshape((self._batch_size,) + (2,) * n)
        moved = arrays.einsum(f"{gate_sub},{in_sub}->{out_sub}", gate, tensor)
        self._amplitudes = np.ascontiguousarray(moved).reshape(self._batch_size, -1)
        return self

    def apply_program(self, program, parameter_matrix: np.ndarray) -> "BatchedStatevector":
        """Apply a compiled gate program with per-element parameters.

        ``program`` is a sequence of ``(gate_name, qubits, slots)`` entries
        (the legacy flat-tuple format that predates
        :class:`repro.quantum.program.SweepProgram`, kept as a public
        convenience): each slot is ``("index", i)`` for the ``i``-th column
        of ``parameter_matrix`` or ``("value", v)`` for a fixed angle.  Gates
        whose slots are all fixed (or that take no parameters) are applied as
        a single shared matrix; gates with per-element angles are built with
        :func:`repro.quantum.gates.gate_matrix_batch`.  New code should
        compile a :class:`~repro.quantum.program.SweepProgram` instead.
        """
        values = np.asarray(parameter_matrix, dtype=float)
        if values.ndim != 2:
            raise SimulationError(
                f"parameter_matrix must be 2-D (batch, params), got shape {values.shape}"
            )
        if values.shape[0] != self._batch_size:
            raise SimulationError(
                f"parameter_matrix has {values.shape[0]} rows, batch is {self._batch_size}"
            )
        for name, qubits, slots in program:
            if not slots:
                self.apply_matrix(gate_library.gate_matrix(name), qubits)
                continue
            if all(kind == "value" for kind, _ in slots):
                fixed = tuple(value for _, value in slots)
                self.apply_matrix(gate_library.gate_matrix(name, *fixed), qubits)
                continue
            columns = tuple(
                values[:, slot] if kind == "index" else np.full(self._batch_size, slot)
                for kind, slot in slots
            )
            self.apply_matrix(gate_library.gate_matrix_batch(name, *columns), qubits)
        return self

    def evolve(self, circuit) -> "BatchedStatevector":
        """Apply every gate of a bound, measurement-free circuit to all elements."""
        for instruction in circuit.instructions:
            if instruction.name == "barrier":
                continue
            if instruction.is_measurement or instruction.name == "reset":
                raise SimulationError(
                    "BatchedStatevector.evolve only supports unitary circuits"
                )
            if not instruction.is_gate:
                raise SimulationError(
                    f"cannot apply non-unitary instruction '{instruction.name}'"
                )
            self.apply_matrix(instruction.matrix(), instruction.qubits)
        return self

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    def inner(self, other: np.ndarray) -> np.ndarray:
        """Inner products ``<self_b|other_s>`` against stacked kets.

        ``other`` is a ``(samples, 2**n)`` array (or a single flat ket);
        returns the ``(batch, samples)`` (or ``(batch,)``) overlap matrix.
        """
        other = arrays.as_complex(other)
        single = other.ndim == 1
        kets = other[None, :] if single else other
        if kets.ndim != 2 or kets.shape[1] != self._amplitudes.shape[1]:
            raise SimulationError(
                f"ket array shape {other.shape} does not match "
                f"{self._num_qubits}-qubit batch"
            )
        overlaps = arrays.matmul(self._amplitudes.conj(), kets.T)
        return overlaps[:, 0] if single else overlaps

    def fidelities(self, other: np.ndarray) -> np.ndarray:
        """Pairwise fidelities ``|<self_b|other_s>|**2``; shape ``(batch, samples)``."""
        return np.abs(self.inner(other)) ** 2
