"""Noise channels and device noise models.

The simulated IBM-Q and IonQ backends (paper Section 5.4) are built from the
channels defined here: depolarising error after every gate, amplitude/phase
damping approximating T1/T2 relaxation over the gate duration, and classical
readout error at measurement time.  A :class:`NoiseModel` bundles per-gate
channels plus readout error probabilities the way device calibration data
would on a real provider.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arrays import COMPLEX_DTYPE

from repro.exceptions import NoiseError, SimulationError
from repro.utils.rng import RandomState, ensure_rng

# --------------------------------------------------------------------------- #
# Kraus-operator factories
# --------------------------------------------------------------------------- #


def depolarizing_kraus(probability: float, num_qubits: int = 1) -> List[np.ndarray]:
    """Kraus operators of the ``num_qubits``-qubit depolarising channel.

    With probability ``probability`` the state is replaced by the maximally
    mixed state; otherwise it is untouched.
    """
    if not 0.0 <= probability <= 1.0:
        raise SimulationError(f"probability must be in [0, 1], got {probability}")
    from repro.quantum import gates

    paulis_1q = [gates.I2, gates.PAULI_X, gates.PAULI_Y, gates.PAULI_Z]
    paulis: List[np.ndarray] = paulis_1q
    for _ in range(num_qubits - 1):
        paulis = [np.kron(a, b) for a in paulis for b in paulis_1q]
    dim_sq = len(paulis)
    kraus = []
    for index, pauli in enumerate(paulis):
        if index == 0:
            weight = math.sqrt(1.0 - probability + probability / dim_sq)
        else:
            weight = math.sqrt(probability / dim_sq)
        kraus.append(weight * pauli)
    return kraus


def amplitude_damping_kraus(gamma: float) -> List[np.ndarray]:
    """Kraus operators of the single-qubit amplitude-damping channel.

    ``gamma`` is the probability of decaying from ``|1>`` to ``|0>``,
    approximating T1 relaxation over a gate duration.
    """
    if not 0.0 <= gamma <= 1.0:
        raise SimulationError(f"gamma must be in [0, 1], got {gamma}")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=COMPLEX_DTYPE)
    k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=COMPLEX_DTYPE)
    return [k0, k1]


def phase_damping_kraus(gamma: float) -> List[np.ndarray]:
    """Kraus operators of the single-qubit phase-damping (dephasing) channel.

    Approximates T2 dephasing over a gate duration.
    """
    if not 0.0 <= gamma <= 1.0:
        raise SimulationError(f"gamma must be in [0, 1], got {gamma}")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=COMPLEX_DTYPE)
    k1 = np.array([[0.0, 0.0], [0.0, math.sqrt(gamma)]], dtype=COMPLEX_DTYPE)
    return [k0, k1]


def bit_flip_kraus(probability: float) -> List[np.ndarray]:
    """Kraus operators of the single-qubit bit-flip channel."""
    if not 0.0 <= probability <= 1.0:
        raise SimulationError(f"probability must be in [0, 1], got {probability}")
    from repro.quantum import gates

    return [
        math.sqrt(1.0 - probability) * gates.I2,
        math.sqrt(probability) * gates.PAULI_X,
    ]


def phase_flip_kraus(probability: float) -> List[np.ndarray]:
    """Kraus operators of the single-qubit phase-flip channel."""
    if not 0.0 <= probability <= 1.0:
        raise SimulationError(f"probability must be in [0, 1], got {probability}")
    from repro.quantum import gates

    return [
        math.sqrt(1.0 - probability) * gates.I2,
        math.sqrt(probability) * gates.PAULI_Z,
    ]


def thermal_relaxation_kraus(t1: float, t2: float, gate_time: float) -> List[np.ndarray]:
    """Approximate thermal relaxation over ``gate_time`` via damping channels.

    Composes amplitude damping with ``gamma = 1 - exp(-t/T1)`` and extra pure
    dephasing so the total dephasing rate matches ``1/T2``.  Requires
    ``T2 <= 2 * T1`` as for physical devices.
    """
    if t1 <= 0 or t2 <= 0 or gate_time < 0:
        raise SimulationError("T1, T2 must be positive and gate_time non-negative")
    if t2 > 2 * t1 + 1e-12:
        raise SimulationError(f"unphysical relaxation times: T2={t2} > 2*T1={2 * t1}")
    gamma_amp = 1.0 - math.exp(-gate_time / t1)
    # Pure-dephasing rate: 1/T_phi = 1/T2 - 1/(2 T1).
    rate_phi = max(1.0 / t2 - 1.0 / (2.0 * t1), 0.0)
    gamma_phase = 1.0 - math.exp(-gate_time * rate_phi)
    amp = amplitude_damping_kraus(gamma_amp)
    phase = phase_damping_kraus(gamma_phase)
    return [p @ a for a in amp for p in phase]


def is_valid_channel(kraus_operators: Sequence[np.ndarray], atol: float = 1e-8) -> bool:
    """Check the completeness relation ``sum_k K_k† K_k = I``."""
    kraus_operators = [np.asarray(k, dtype=COMPLEX_DTYPE) for k in kraus_operators]
    if not kraus_operators:
        return False
    dim = kraus_operators[0].shape[1]
    total = np.zeros((dim, dim), dtype=COMPLEX_DTYPE)
    for kraus in kraus_operators:
        total += kraus.conj().T @ kraus
    return bool(np.allclose(total, np.eye(dim), atol=atol))


# --------------------------------------------------------------------------- #
# Readout error
# --------------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class ReadoutError:
    """Classical measurement assignment error.

    Attributes
    ----------
    prob_flip_0_to_1:
        Probability of reporting ``1`` when the true outcome is ``0``.
    prob_flip_1_to_0:
        Probability of reporting ``0`` when the true outcome is ``1``.
    """

    prob_flip_0_to_1: float = 0.0
    prob_flip_1_to_0: float = 0.0

    def __post_init__(self) -> None:
        for name, value in (
            ("prob_flip_0_to_1", self.prob_flip_0_to_1),
            ("prob_flip_1_to_0", self.prob_flip_1_to_0),
        ):
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1], got {value}")

    def apply(self, outcome: int, rng: RandomState = None) -> int:
        """Flip a single measured bit according to the assignment error."""
        generator = ensure_rng(rng)
        if outcome == 0:
            return 1 if generator.random() < self.prob_flip_0_to_1 else 0
        return 0 if generator.random() < self.prob_flip_1_to_0 else 1

    def confusion_matrix(self) -> np.ndarray:
        """Return the 2x2 assignment matrix ``A[j, i] = P(report j | true i)``."""
        return np.array(
            [
                [1.0 - self.prob_flip_0_to_1, self.prob_flip_1_to_0],
                [self.prob_flip_0_to_1, 1.0 - self.prob_flip_1_to_0],
            ]
        )


# --------------------------------------------------------------------------- #
# Noise model
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class GateError:
    """Noise attached to one gate name: a list of Kraus channels per qubit count."""

    kraus_operators: List[np.ndarray]

    def __post_init__(self) -> None:
        if not is_valid_channel(self.kraus_operators):
            raise SimulationError("Kraus operators do not satisfy the completeness relation")


class NoiseModel:
    """Collection of gate errors and readout errors for a simulated device.

    The model distinguishes single-qubit and two-qubit gate error channels
    (two-qubit gates dominate infidelity on superconducting hardware, which is
    what makes the routed-CNOT count of IBM-Q Cairo matter in the paper's
    IonQ comparison).
    """

    def __init__(self) -> None:
        self._gate_errors: Dict[str, List[List[np.ndarray]]] = {}
        self._default_errors: Dict[int, List[List[np.ndarray]]] = {}
        self._readout_errors: Dict[int, ReadoutError] = {}
        self._default_readout: Optional[ReadoutError] = None
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter, bumped by every ``add_*`` call.

        Consumers that precompute derived artefacts from the model — the
        compiled-program density engine precomposes per-gate superoperator
        plans — key their caches on this counter so an in-place mutation of
        a model that is already attached to a simulator invalidates them.
        """
        return self._version

    # Construction ------------------------------------------------------- #
    @staticmethod
    def _check_channel(kraus_operators: Sequence[np.ndarray], name: str) -> List[np.ndarray]:
        """Run the static verifier's CPTP checks on a channel being registered.

        Registration is the only mutation point (``version`` bumps here), so
        rejecting bad channels now guarantees every precomposed superoperator
        derived from this model later is built from valid Kraus families.
        """
        from repro.analysis.verify import verify_channel

        kraus = [np.asarray(k) for k in kraus_operators]
        findings = verify_channel(kraus, name=name)
        if findings:
            detail = "; ".join(diag.message for diag in findings)
            raise NoiseError(f"invalid noise channel for {name}: {detail}")
        return kraus

    def add_gate_error(self, gate_name: str, kraus_operators: Sequence[np.ndarray]) -> "NoiseModel":
        """Attach a Kraus channel applied after every occurrence of ``gate_name``.

        Raises :class:`~repro.exceptions.NoiseError` naming the gate when the
        channel fails the CPTP checks.
        """
        kraus = self._check_channel(kraus_operators, f"gate error for '{gate_name}'")
        self._gate_errors.setdefault(gate_name, []).append(kraus)
        self._version += 1
        return self

    def add_all_qubit_error(self, kraus_operators: Sequence[np.ndarray], num_qubits: int) -> "NoiseModel":
        """Attach a channel applied after every gate acting on ``num_qubits`` qubits.

        Raises :class:`~repro.exceptions.NoiseError` naming the channel when it
        fails the CPTP checks.
        """
        kraus = self._check_channel(
            kraus_operators, f"all-qubit error on {num_qubits}-qubit gates"
        )
        self._default_errors.setdefault(num_qubits, []).append(kraus)
        self._version += 1
        return self

    def add_readout_error(self, error: ReadoutError, qubit: Optional[int] = None) -> "NoiseModel":
        """Attach a readout error to ``qubit`` (or to every qubit when omitted)."""
        if qubit is None:
            self._default_readout = error
        else:
            self._readout_errors[int(qubit)] = error
        self._version += 1
        return self

    # Lookup ------------------------------------------------------------- #
    def gate_channels(self, gate_name: str, num_qubits: int) -> List[List[np.ndarray]]:
        """Channels to apply after a gate of ``gate_name`` on ``num_qubits`` qubits."""
        channels = list(self._gate_errors.get(gate_name, []))
        channels.extend(self._default_errors.get(num_qubits, []))
        return channels

    def readout_error(self, qubit: int) -> Optional[ReadoutError]:
        """Readout error for ``qubit`` (``None`` if the model has none)."""
        if qubit in self._readout_errors:
            return self._readout_errors[qubit]
        return self._default_readout

    @property
    def is_ideal(self) -> bool:
        """Whether the model contains no errors at all."""
        return not (
            self._gate_errors or self._default_errors or self._readout_errors or self._default_readout
        )

    # Factories ----------------------------------------------------------- #
    @classmethod
    def ideal(cls) -> "NoiseModel":
        """A noise model with no errors."""
        return cls()

    @classmethod
    def from_error_rates(
        cls,
        single_qubit_error: float,
        two_qubit_error: float,
        readout_error: float = 0.0,
        t1: Optional[float] = None,
        t2: Optional[float] = None,
        gate_time: float = 0.0,
    ) -> "NoiseModel":
        """Build a homogeneous device model from summary error rates.

        Parameters
        ----------
        single_qubit_error:
            Depolarising probability after each single-qubit gate.
        two_qubit_error:
            Depolarising probability after each two-or-more-qubit gate.
        readout_error:
            Symmetric measurement assignment error probability.
        t1, t2, gate_time:
            Optional thermal-relaxation parameters (same time units); when
            provided, relaxation is applied after single-qubit gates as well.
            Either all three are given (with a positive ``gate_time``) or
            none — a partial specification raises instead of silently
            producing a relaxation-free model.

        Raises
        ------
        SimulationError
            If any error rate lies outside ``[0, 1]`` (negative rates used to
            be silently dropped, producing an ideal channel from invalid
            input) or the relaxation parameters are only partially specified.
        """
        for name, rate in (
            ("single_qubit_error", single_qubit_error),
            ("two_qubit_error", two_qubit_error),
            ("readout_error", readout_error),
        ):
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1], got {rate}")
        if gate_time < 0:
            raise SimulationError(f"gate_time must be non-negative, got {gate_time}")
        relaxation = {
            "t1": t1,
            "t2": t2,
            "gate_time": gate_time if gate_time > 0 else None,
        }
        missing = [name for name, value in relaxation.items() if value is None]
        if missing and len(missing) != len(relaxation):
            raise SimulationError(
                "thermal relaxation requires t1, t2 and a positive gate_time "
                f"together; missing {missing} would silently drop relaxation"
            )
        model = cls()
        if single_qubit_error > 0:
            model.add_all_qubit_error(depolarizing_kraus(single_qubit_error, 1), 1)
        if two_qubit_error > 0:
            model.add_all_qubit_error(depolarizing_kraus(two_qubit_error, 2), 2)
            model.add_all_qubit_error(depolarizing_kraus(two_qubit_error, 3), 3)
        if not missing:
            model.add_all_qubit_error(thermal_relaxation_kraus(t1, t2, gate_time), 1)
        if readout_error > 0:
            model.add_readout_error(ReadoutError(readout_error, readout_error))
        return model


def apply_readout_error(
    joint: np.ndarray, measured_qubits: Sequence[int], noise_model: "NoiseModel"
) -> np.ndarray:
    """Convolve outcome distributions with the model's per-qubit readout error.

    Accepts a single ``(2**w,)`` distribution or a stacked ``(batch, 2**w)``
    array over ``measured_qubits`` (in that order); the confusion matrices
    contract over the outcome axes only, so the batched convolution applies
    every element's error in one :func:`numpy.tensordot` per measured qubit.
    Shared by :class:`~repro.quantum.simulator.DensityMatrixSimulator` and the
    compiled-program density engine so both read-out paths are bit-identical.
    """
    joint = np.asarray(joint, dtype=float)
    single = joint.ndim == 1
    width = len(measured_qubits)
    batch = 1 if single else joint.shape[0]
    tensor = joint.reshape((batch,) + (2,) * width)
    for axis, qubit in enumerate(measured_qubits):
        error = noise_model.readout_error(qubit)
        if error is None:
            continue
        confusion = error.confusion_matrix()
        tensor = np.tensordot(confusion, tensor, axes=([1], [axis + 1]))
        tensor = np.moveaxis(tensor, 0, axis + 1)
    flattened = tensor.reshape(batch, -1)
    return flattened[0] if single else flattened
