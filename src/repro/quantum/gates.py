"""Gate matrix library.

Provides the unitary matrices used throughout the simulator.  The definitions
follow Section 3.2 of the QuClassi paper: the general single-qubit rotation
``R(theta, phi)`` (Eq. 5), the axis rotations RX/RY/RZ (Eqs. 6-8), the
two-qubit rotations RXX/RYY/RZZ (Eqs. 9-11), and the controlled operations
(CNOT, CZ, CRY, CRZ, SWAP, CSWAP) that the architecture's layers and the SWAP
test rely on.

Alongside the scalar constructors, every parameterised gate has a ``*_batch``
variant that accepts a 1-D array of angles and returns the stacked unitaries
``(batch, 2**k, 2**k)``; :func:`gate_matrix_batch` dispatches by name.  These
feed the batched statevector engine in :mod:`repro.quantum.batched`.

Qubit-ordering convention
-------------------------
All multi-qubit matrices are written in the *little-endian* tensor order used
by the simulator: for a gate acting on qubits ``(q0, q1, ...)``, basis states
are ordered with ``q0`` as the most significant bit of the local index.  The
simulator applies gates by tensor contraction, so only consistency matters;
tests assert the controlled gates act on the expected basis states.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Dict

import numpy as np

from repro.arrays import COMPLEX_DTYPE

#: 2x2 identity.
I2 = np.eye(2, dtype=COMPLEX_DTYPE)

#: Pauli matrices.
PAULI_X = np.array([[0, 1], [1, 0]], dtype=COMPLEX_DTYPE)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=COMPLEX_DTYPE)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=COMPLEX_DTYPE)

#: Hadamard gate.
HADAMARD = np.array([[1, 1], [1, -1]], dtype=COMPLEX_DTYPE) / math.sqrt(2)

#: Phase gates.
S_GATE = np.array([[1, 0], [0, 1j]], dtype=COMPLEX_DTYPE)
T_GATE = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=COMPLEX_DTYPE)

#: Two-qubit SWAP.
SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=COMPLEX_DTYPE,
)

#: CNOT with the first qubit as control (little-endian local ordering).
CNOT = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
    ],
    dtype=COMPLEX_DTYPE,
)

#: Controlled-Z.
CZ = np.diag([1, 1, 1, -1]).astype(COMPLEX_DTYPE)


def r_gate(theta: float, phi: float) -> np.ndarray:
    """General single-qubit rotation ``R(theta, phi)`` (paper Eq. 5)."""
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    return np.array(
        [
            [cos, -1j * cmath.exp(-1j * phi) * sin],
            [-1j * cmath.exp(1j * phi) * sin, cos],
        ],
        dtype=COMPLEX_DTYPE,
    )


def rx(theta: float) -> np.ndarray:
    """Rotation about the X axis (paper Eq. 6); equals ``R(theta, 0)``."""
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    return np.array([[cos, -1j * sin], [-1j * sin, cos]], dtype=COMPLEX_DTYPE)


def ry(theta: float) -> np.ndarray:
    """Rotation about the Y axis (paper Eq. 7); equals ``R(theta, pi/2)``."""
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    return np.array([[cos, -sin], [sin, cos]], dtype=COMPLEX_DTYPE)


def rz(theta: float) -> np.ndarray:
    """Rotation about the Z axis (paper Eq. 8)."""
    return np.array(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]],
        dtype=COMPLEX_DTYPE,
    )


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic single-qubit unitary ``U3(theta, phi, lambda)``.

    Used by the transpiler to fuse runs of single-qubit rotations.
    """
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    return np.array(
        [
            [cos, -cmath.exp(1j * lam) * sin],
            [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
        ],
        dtype=COMPLEX_DTYPE,
    )


def rxx(theta: float) -> np.ndarray:
    """Two-qubit XX rotation ``exp(-i theta/2 X⊗X)`` (paper Eq. 9)."""
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    matrix = np.eye(4, dtype=COMPLEX_DTYPE) * cos
    anti = -1j * sin
    matrix[0, 3] = anti
    matrix[1, 2] = anti
    matrix[2, 1] = anti
    matrix[3, 0] = anti
    return matrix


def ryy(theta: float) -> np.ndarray:
    """Two-qubit YY rotation ``exp(-i theta/2 Y⊗Y)`` (paper Eq. 10)."""
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    matrix = np.eye(4, dtype=COMPLEX_DTYPE) * cos
    matrix[0, 3] = 1j * sin
    matrix[1, 2] = -1j * sin
    matrix[2, 1] = -1j * sin
    matrix[3, 0] = 1j * sin
    return matrix


def rzz(theta: float) -> np.ndarray:
    """Two-qubit ZZ rotation ``exp(-i theta/2 Z⊗Z)``.

    The paper's Eq. 11 prints all-equal diagonal phases (a typo); the standard
    ZZ interaction has phase ``exp(-i theta/2)`` on the even-parity states and
    ``exp(+i theta/2)`` on the odd-parity states, which is what the rest of
    the paper's construction (shared-parameter dual-qubit layers) requires.
    """
    minus = cmath.exp(-1j * theta / 2)
    plus = cmath.exp(1j * theta / 2)
    return np.diag([minus, plus, plus, minus]).astype(COMPLEX_DTYPE)


def controlled(unitary: np.ndarray) -> np.ndarray:
    """Promote a single-qubit unitary to a controlled two-qubit gate.

    The first qubit of the returned 4x4 matrix is the control.
    """
    unitary = np.asarray(unitary, dtype=COMPLEX_DTYPE)
    if unitary.shape != (2, 2):
        raise ValueError(f"expected a 2x2 unitary, got shape {unitary.shape}")
    gate = np.eye(4, dtype=COMPLEX_DTYPE)
    gate[2:, 2:] = unitary
    return gate


def cry(theta: float) -> np.ndarray:
    """Controlled-RY gate used by the entanglement layer."""
    return controlled(ry(theta))


def crz(theta: float) -> np.ndarray:
    """Controlled-RZ gate used by the entanglement layer."""
    return controlled(rz(theta))


def crx(theta: float) -> np.ndarray:
    """Controlled-RX gate."""
    return controlled(rx(theta))


def cswap() -> np.ndarray:
    """Controlled-SWAP (Fredkin) gate; qubit 0 is the control.

    This is the central operation of the SWAP test (paper Section 3.3).
    """
    gate = np.eye(8, dtype=COMPLEX_DTYPE)
    # Swap the target qubits only in the control=1 subspace (indices 4..7).
    gate[4:, 4:] = np.kron(np.eye(1), SWAP)
    return gate


#: Gate name -> (number of qubits, number of parameters).
GATE_SIGNATURES: Dict[str, tuple] = {
    "id": (1, 0),
    "x": (1, 0),
    "y": (1, 0),
    "z": (1, 0),
    "h": (1, 0),
    "s": (1, 0),
    "t": (1, 0),
    "rx": (1, 1),
    "ry": (1, 1),
    "rz": (1, 1),
    "r": (1, 2),
    "u3": (1, 3),
    "cx": (2, 0),
    "cz": (2, 0),
    "swap": (2, 0),
    "rxx": (2, 1),
    "ryy": (2, 1),
    "rzz": (2, 1),
    "crx": (2, 1),
    "cry": (2, 1),
    "crz": (2, 1),
    "cswap": (3, 0),
}

#: Gate name -> callable returning the matrix (parameters passed positionally).
_GATE_FACTORIES: Dict[str, Callable[..., np.ndarray]] = {
    "id": lambda: I2,
    "x": lambda: PAULI_X,
    "y": lambda: PAULI_Y,
    "z": lambda: PAULI_Z,
    "h": lambda: HADAMARD,
    "s": lambda: S_GATE,
    "t": lambda: T_GATE,
    "rx": rx,
    "ry": ry,
    "rz": rz,
    "r": r_gate,
    "u3": u3,
    "cx": lambda: CNOT,
    "cz": lambda: CZ,
    "swap": lambda: SWAP,
    "rxx": rxx,
    "ryy": ryy,
    "rzz": rzz,
    "crx": crx,
    "cry": cry,
    "crz": crz,
    "cswap": cswap,
}


def gate_matrix(name: str, *params: float) -> np.ndarray:
    """Return the unitary matrix for gate ``name`` with ``params``.

    Raises
    ------
    KeyError
        If the gate name is unknown.
    ValueError
        If the wrong number of parameters is supplied.
    """
    if name not in _GATE_FACTORIES:
        raise KeyError(f"unknown gate '{name}'")
    _, num_params = GATE_SIGNATURES[name]
    if len(params) != num_params:
        raise ValueError(
            f"gate '{name}' expects {num_params} parameter(s), got {len(params)}"
        )
    return _GATE_FACTORIES[name](*params)


# --------------------------------------------------------------------------- #
# Batched gate construction
#
# The batched statevector engine (:mod:`repro.quantum.batched`) evaluates one
# gate for a whole stack of parameter values at once, e.g. all ``2P`` shifted
# angles of a parameter-shift sweep.  Each ``*_batch`` constructor takes
# parameter arrays of shape ``(batch,)`` (scalars broadcast) and returns the
# stacked unitaries of shape ``(batch, 2**k, 2**k)``, built with vectorised
# NumPy so no Python loop runs over the batch.
# --------------------------------------------------------------------------- #


def _broadcast_params(*params) -> tuple:
    """Broadcast parameter arrays to a common 1-D batch shape."""
    arrays = [np.atleast_1d(np.asarray(p, dtype=float)) for p in params]
    if any(a.ndim != 1 for a in arrays):
        shapes = [a.shape for a in arrays]
        raise ValueError(f"batched gate parameters must be 1-D arrays, got shapes {shapes}")
    broadcast = np.broadcast_arrays(*arrays)
    return tuple(np.ascontiguousarray(a) for a in broadcast)


def r_gate_batch(theta, phi) -> np.ndarray:
    """Batched ``R(theta, phi)`` (paper Eq. 5); shape ``(batch, 2, 2)``."""
    theta, phi = _broadcast_params(theta, phi)
    cos = np.cos(theta / 2)
    sin = np.sin(theta / 2)
    out = np.zeros(theta.shape + (2, 2), dtype=COMPLEX_DTYPE)
    out[..., 0, 0] = cos
    out[..., 0, 1] = -1j * np.exp(-1j * phi) * sin
    out[..., 1, 0] = -1j * np.exp(1j * phi) * sin
    out[..., 1, 1] = cos
    return out


def rx_batch(theta) -> np.ndarray:
    """Batched RX rotation; shape ``(batch, 2, 2)``."""
    (theta,) = _broadcast_params(theta)
    cos = np.cos(theta / 2)
    sin = np.sin(theta / 2)
    out = np.zeros(theta.shape + (2, 2), dtype=COMPLEX_DTYPE)
    out[..., 0, 0] = cos
    out[..., 0, 1] = -1j * sin
    out[..., 1, 0] = -1j * sin
    out[..., 1, 1] = cos
    return out


def ry_batch(theta) -> np.ndarray:
    """Batched RY rotation; shape ``(batch, 2, 2)``."""
    (theta,) = _broadcast_params(theta)
    cos = np.cos(theta / 2)
    sin = np.sin(theta / 2)
    out = np.zeros(theta.shape + (2, 2), dtype=COMPLEX_DTYPE)
    out[..., 0, 0] = cos
    out[..., 0, 1] = -sin
    out[..., 1, 0] = sin
    out[..., 1, 1] = cos
    return out


def rz_batch(theta) -> np.ndarray:
    """Batched RZ rotation; shape ``(batch, 2, 2)``."""
    (theta,) = _broadcast_params(theta)
    out = np.zeros(theta.shape + (2, 2), dtype=COMPLEX_DTYPE)
    out[..., 0, 0] = np.exp(-1j * theta / 2)
    out[..., 1, 1] = np.exp(1j * theta / 2)
    return out


def u3_batch(theta, phi, lam) -> np.ndarray:
    """Batched ``U3(theta, phi, lambda)``; shape ``(batch, 2, 2)``."""
    theta, phi, lam = _broadcast_params(theta, phi, lam)
    cos = np.cos(theta / 2)
    sin = np.sin(theta / 2)
    out = np.zeros(theta.shape + (2, 2), dtype=COMPLEX_DTYPE)
    out[..., 0, 0] = cos
    out[..., 0, 1] = -np.exp(1j * lam) * sin
    out[..., 1, 0] = np.exp(1j * phi) * sin
    out[..., 1, 1] = np.exp(1j * (phi + lam)) * cos
    return out


def rxx_batch(theta) -> np.ndarray:
    """Batched XX rotation; shape ``(batch, 4, 4)``."""
    (theta,) = _broadcast_params(theta)
    cos = np.cos(theta / 2)
    anti = -1j * np.sin(theta / 2)
    out = np.zeros(theta.shape + (4, 4), dtype=COMPLEX_DTYPE)
    for diag in range(4):
        out[..., diag, diag] = cos
    out[..., 0, 3] = anti
    out[..., 1, 2] = anti
    out[..., 2, 1] = anti
    out[..., 3, 0] = anti
    return out


def ryy_batch(theta) -> np.ndarray:
    """Batched YY rotation; shape ``(batch, 4, 4)``."""
    (theta,) = _broadcast_params(theta)
    cos = np.cos(theta / 2)
    sin = np.sin(theta / 2)
    out = np.zeros(theta.shape + (4, 4), dtype=COMPLEX_DTYPE)
    for diag in range(4):
        out[..., diag, diag] = cos
    out[..., 0, 3] = 1j * sin
    out[..., 1, 2] = -1j * sin
    out[..., 2, 1] = -1j * sin
    out[..., 3, 0] = 1j * sin
    return out


def rzz_batch(theta) -> np.ndarray:
    """Batched ZZ rotation; shape ``(batch, 4, 4)``."""
    (theta,) = _broadcast_params(theta)
    minus = np.exp(-1j * theta / 2)
    plus = np.exp(1j * theta / 2)
    out = np.zeros(theta.shape + (4, 4), dtype=COMPLEX_DTYPE)
    out[..., 0, 0] = minus
    out[..., 1, 1] = plus
    out[..., 2, 2] = plus
    out[..., 3, 3] = minus
    return out


def controlled_batch(unitaries: np.ndarray) -> np.ndarray:
    """Promote batched single-qubit unitaries to controlled two-qubit gates."""
    unitaries = np.asarray(unitaries, dtype=COMPLEX_DTYPE)
    if unitaries.ndim != 3 or unitaries.shape[1:] != (2, 2):
        raise ValueError(f"expected shape (batch, 2, 2), got {unitaries.shape}")
    out = np.zeros((unitaries.shape[0], 4, 4), dtype=COMPLEX_DTYPE)
    out[:, 0, 0] = 1.0
    out[:, 1, 1] = 1.0
    out[:, 2:, 2:] = unitaries
    return out


def crx_batch(theta) -> np.ndarray:
    """Batched controlled-RX; shape ``(batch, 4, 4)``."""
    return controlled_batch(rx_batch(theta))


def cry_batch(theta) -> np.ndarray:
    """Batched controlled-RY; shape ``(batch, 4, 4)``."""
    return controlled_batch(ry_batch(theta))


def crz_batch(theta) -> np.ndarray:
    """Batched controlled-RZ; shape ``(batch, 4, 4)``."""
    return controlled_batch(rz_batch(theta))


#: Parameterised gate name -> batched factory (same signatures as the scalar
#: factories, but parameters are arrays and the result gains a batch axis).
_GATE_BATCH_FACTORIES: Dict[str, Callable[..., np.ndarray]] = {
    "rx": rx_batch,
    "ry": ry_batch,
    "rz": rz_batch,
    "r": r_gate_batch,
    "u3": u3_batch,
    "rxx": rxx_batch,
    "ryy": ryy_batch,
    "rzz": rzz_batch,
    "crx": crx_batch,
    "cry": cry_batch,
    "crz": crz_batch,
}


def gate_matrix_batch(name: str, *params) -> np.ndarray:
    """Stacked unitaries for gate ``name`` over batched parameters.

    Parameters are 1-D arrays (or scalars, which broadcast); the result has
    shape ``(batch, 2**k, 2**k)``.  Parameter-free gates are rejected — they
    have no batch axis, so callers should use :func:`gate_matrix` and let the
    engine broadcast the shared matrix.

    Raises
    ------
    KeyError
        If the gate name is unknown.
    ValueError
        If the gate takes no parameters or the wrong number is supplied.
    """
    if name not in _GATE_FACTORIES:
        raise KeyError(f"unknown gate '{name}'")
    _, num_params = GATE_SIGNATURES[name]
    if num_params == 0:
        raise ValueError(
            f"gate '{name}' takes no parameters; use gate_matrix() for the shared matrix"
        )
    if len(params) != num_params:
        raise ValueError(
            f"gate '{name}' expects {num_params} parameter(s), got {len(params)}"
        )
    factory = _GATE_BATCH_FACTORIES.get(name)
    if factory is None:
        # Parameterised gate registered only in the scalar table: stack the
        # scalar matrices so new gates degrade gracefully instead of KeyError.
        broadcast = _broadcast_params(*params)
        return np.stack(
            [
                _GATE_FACTORIES[name](*(column[index] for column in broadcast))
                for index in range(broadcast[0].shape[0])
            ]
        )
    return factory(*params)


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Check whether ``matrix`` is unitary within tolerance ``atol``."""
    matrix = np.asarray(matrix, dtype=COMPLEX_DTYPE)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    product = matrix.conj().T @ matrix
    return bool(np.allclose(product, np.eye(matrix.shape[0]), atol=atol))
