"""Gate matrix library.

Provides the unitary matrices used throughout the simulator.  The definitions
follow Section 3.2 of the QuClassi paper: the general single-qubit rotation
``R(theta, phi)`` (Eq. 5), the axis rotations RX/RY/RZ (Eqs. 6-8), the
two-qubit rotations RXX/RYY/RZZ (Eqs. 9-11), and the controlled operations
(CNOT, CZ, CRY, CRZ, SWAP, CSWAP) that the architecture's layers and the SWAP
test rely on.

Qubit-ordering convention
-------------------------
All multi-qubit matrices are written in the *little-endian* tensor order used
by the simulator: for a gate acting on qubits ``(q0, q1, ...)``, basis states
are ordered with ``q0`` as the most significant bit of the local index.  The
simulator applies gates by tensor contraction, so only consistency matters;
tests assert the controlled gates act on the expected basis states.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Dict

import numpy as np

#: 2x2 identity.
I2 = np.eye(2, dtype=complex)

#: Pauli matrices.
PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)

#: Hadamard gate.
HADAMARD = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)

#: Phase gates.
S_GATE = np.array([[1, 0], [0, 1j]], dtype=complex)
T_GATE = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)

#: Two-qubit SWAP.
SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)

#: CNOT with the first qubit as control (little-endian local ordering).
CNOT = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
    ],
    dtype=complex,
)

#: Controlled-Z.
CZ = np.diag([1, 1, 1, -1]).astype(complex)


def r_gate(theta: float, phi: float) -> np.ndarray:
    """General single-qubit rotation ``R(theta, phi)`` (paper Eq. 5)."""
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    return np.array(
        [
            [cos, -1j * cmath.exp(-1j * phi) * sin],
            [-1j * cmath.exp(1j * phi) * sin, cos],
        ],
        dtype=complex,
    )


def rx(theta: float) -> np.ndarray:
    """Rotation about the X axis (paper Eq. 6); equals ``R(theta, 0)``."""
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    return np.array([[cos, -1j * sin], [-1j * sin, cos]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation about the Y axis (paper Eq. 7); equals ``R(theta, pi/2)``."""
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    return np.array([[cos, -sin], [sin, cos]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """Rotation about the Z axis (paper Eq. 8)."""
    return np.array(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]],
        dtype=complex,
    )


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic single-qubit unitary ``U3(theta, phi, lambda)``.

    Used by the transpiler to fuse runs of single-qubit rotations.
    """
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    return np.array(
        [
            [cos, -cmath.exp(1j * lam) * sin],
            [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
        ],
        dtype=complex,
    )


def rxx(theta: float) -> np.ndarray:
    """Two-qubit XX rotation ``exp(-i theta/2 X⊗X)`` (paper Eq. 9)."""
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    matrix = np.eye(4, dtype=complex) * cos
    anti = -1j * sin
    matrix[0, 3] = anti
    matrix[1, 2] = anti
    matrix[2, 1] = anti
    matrix[3, 0] = anti
    return matrix


def ryy(theta: float) -> np.ndarray:
    """Two-qubit YY rotation ``exp(-i theta/2 Y⊗Y)`` (paper Eq. 10)."""
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    matrix = np.eye(4, dtype=complex) * cos
    matrix[0, 3] = 1j * sin
    matrix[1, 2] = -1j * sin
    matrix[2, 1] = -1j * sin
    matrix[3, 0] = 1j * sin
    return matrix


def rzz(theta: float) -> np.ndarray:
    """Two-qubit ZZ rotation ``exp(-i theta/2 Z⊗Z)``.

    The paper's Eq. 11 prints all-equal diagonal phases (a typo); the standard
    ZZ interaction has phase ``exp(-i theta/2)`` on the even-parity states and
    ``exp(+i theta/2)`` on the odd-parity states, which is what the rest of
    the paper's construction (shared-parameter dual-qubit layers) requires.
    """
    minus = cmath.exp(-1j * theta / 2)
    plus = cmath.exp(1j * theta / 2)
    return np.diag([minus, plus, plus, minus]).astype(complex)


def controlled(unitary: np.ndarray) -> np.ndarray:
    """Promote a single-qubit unitary to a controlled two-qubit gate.

    The first qubit of the returned 4x4 matrix is the control.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (2, 2):
        raise ValueError(f"expected a 2x2 unitary, got shape {unitary.shape}")
    gate = np.eye(4, dtype=complex)
    gate[2:, 2:] = unitary
    return gate


def cry(theta: float) -> np.ndarray:
    """Controlled-RY gate used by the entanglement layer."""
    return controlled(ry(theta))


def crz(theta: float) -> np.ndarray:
    """Controlled-RZ gate used by the entanglement layer."""
    return controlled(rz(theta))


def crx(theta: float) -> np.ndarray:
    """Controlled-RX gate."""
    return controlled(rx(theta))


def cswap() -> np.ndarray:
    """Controlled-SWAP (Fredkin) gate; qubit 0 is the control.

    This is the central operation of the SWAP test (paper Section 3.3).
    """
    gate = np.eye(8, dtype=complex)
    # Swap the target qubits only in the control=1 subspace (indices 4..7).
    gate[4:, 4:] = np.kron(np.eye(1), SWAP)
    return gate


#: Gate name -> (number of qubits, number of parameters).
GATE_SIGNATURES: Dict[str, tuple] = {
    "id": (1, 0),
    "x": (1, 0),
    "y": (1, 0),
    "z": (1, 0),
    "h": (1, 0),
    "s": (1, 0),
    "t": (1, 0),
    "rx": (1, 1),
    "ry": (1, 1),
    "rz": (1, 1),
    "r": (1, 2),
    "u3": (1, 3),
    "cx": (2, 0),
    "cz": (2, 0),
    "swap": (2, 0),
    "rxx": (2, 1),
    "ryy": (2, 1),
    "rzz": (2, 1),
    "crx": (2, 1),
    "cry": (2, 1),
    "crz": (2, 1),
    "cswap": (3, 0),
}

#: Gate name -> callable returning the matrix (parameters passed positionally).
_GATE_FACTORIES: Dict[str, Callable[..., np.ndarray]] = {
    "id": lambda: I2,
    "x": lambda: PAULI_X,
    "y": lambda: PAULI_Y,
    "z": lambda: PAULI_Z,
    "h": lambda: HADAMARD,
    "s": lambda: S_GATE,
    "t": lambda: T_GATE,
    "rx": rx,
    "ry": ry,
    "rz": rz,
    "r": r_gate,
    "u3": u3,
    "cx": lambda: CNOT,
    "cz": lambda: CZ,
    "swap": lambda: SWAP,
    "rxx": rxx,
    "ryy": ryy,
    "rzz": rzz,
    "crx": crx,
    "cry": cry,
    "crz": crz,
    "cswap": cswap,
}


def gate_matrix(name: str, *params: float) -> np.ndarray:
    """Return the unitary matrix for gate ``name`` with ``params``.

    Raises
    ------
    KeyError
        If the gate name is unknown.
    ValueError
        If the wrong number of parameters is supplied.
    """
    if name not in _GATE_FACTORIES:
        raise KeyError(f"unknown gate '{name}'")
    _, num_params = GATE_SIGNATURES[name]
    if len(params) != num_params:
        raise ValueError(
            f"gate '{name}' expects {num_params} parameter(s), got {len(params)}"
        )
    return _GATE_FACTORIES[name](*params)


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Check whether ``matrix`` is unitary within tolerance ``atol``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    product = matrix.conj().T @ matrix
    return bool(np.allclose(product, np.eye(matrix.shape[0]), atol=atol))
