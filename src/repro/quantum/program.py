"""Compile-once sweep programs: the :class:`SweepProgram` IR.

The training hot path is dominated by *structure-sharing sweeps*: every
parameter-shift row and every data sample of a QuClassi gradient evaluation
executes the **same** gate skeleton with different rotation angles.  Before
this module, each ``run_batch`` call re-derived the per-gate plan — gate
matrices looked up per call, noise channels resolved per gate per call — and
batching was only possible along the flattened circuit list, so the 17-qubit
MNIST sweeps either blew peak memory or fell back to loops.

:class:`SweepProgram` splits that hot path into **compile once / execute
many**:

* ``compile`` walks one representative circuit and produces an ordered plan
  of :class:`GateStep` entries — fixed unitaries with their matrices
  precomputed, and *parameter bind sites* whose angles are read out of a
  ``(batch, columns)`` bindings matrix at execution time (affine slots
  ``coefficient * column`` represent the
  :class:`~repro.quantum.operations.ScaledParameter` expressions the
  transpiler emits).
* :class:`DensitySuperoperatorEngine` additionally precomposes, per gate
  step, the gate's noise channels into a single ``(4**k, 4**k)``
  superoperator — and for fixed gates the unitary itself is folded in — so a
  repeat sweep on a noisy backend applies **one** contraction per gate and
  never resolves Kraus channels again.
* :meth:`SweepProgram.execute` streams the sweep through
  :class:`~repro.quantum.batched.BatchedStatevector` /
  :class:`~repro.quantum.batched_density.BatchedDensityMatrix` tile by tile
  under a :class:`TilePlan` that budgets **both** workload axes — parameter
  rows and data-sample columns — and reassembles the read-out bit-identically
  to the untiled pass (tiles are contiguous in row-major order, and NumPy's
  stacked multinomial consumes the bit generator row by row, so downstream
  shot sampling is draw-for-draw independent of the tiling).

Consumers compile through caches so the plan is derived once per circuit
*structure*: the simulators key programs by
:func:`~repro.quantum.transpiler.circuit_structure_key`, and
:class:`~repro.quantum.transpiler.TranspileCache` attaches a compiled program
to every transpile template so noisy sweeps execute straight from the cache
without re-binding circuits at all.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro import arrays
from repro.analysis.verify import full_verification_enabled
from repro.arrays import COMPLEX_DTYPE
from repro.exceptions import SimulationError
from repro.quantum import gates as gate_library
from repro.quantum.batched import BatchedStatevector
from repro.quantum.batched_density import (
    BatchedDensityMatrix,
    channel_superoperator,
    conjugation_superoperator,
)
from repro.quantum.noise import NoiseModel, apply_readout_error
from repro.quantum.operations import Parameter, ScaledParameter


def check_deferred_measurement(instruction, measured: set, engine_name: str) -> None:
    """Reject circuits the deferred-measurement strategy cannot represent.

    Every engine (and the compiled-program executor) defers measurements to
    the end of the circuit: unitary evolution runs first, then the joint
    distribution of the measured qubits is read out once.  That is only sound
    when no operation touches a qubit *after* it has been measured and no
    qubit is measured twice — either case would silently corrupt the reported
    joint distribution.
    """
    if instruction.is_measurement:
        duplicates = measured.intersection(instruction.qubits)
        if duplicates:
            raise SimulationError(
                f"{engine_name}: qubit(s) {sorted(duplicates)} measured more than "
                "once; the deferred-measurement strategy supports a single "
                "measurement per qubit"
            )
        return
    touched = measured.intersection(instruction.qubits)
    if touched:
        raise SimulationError(
            f"{engine_name}: instruction '{instruction.name}' acts on already-"
            f"measured qubit(s) {sorted(touched)}; the deferred-measurement "
            "strategy cannot apply operations after a measurement"
        )


# --------------------------------------------------------------------------- #
# Tile planning
# --------------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class TilePlan:
    """How a (parameter rows x data samples) sweep is cut into memory tiles.

    A sweep workload is a grid: ``rows`` parameter-shift vectors by
    ``samples`` data points.  A plan fixes how many of each axis one tile may
    hold so that the tile's working set stays under a single amplitude
    budget, and enumerates the tiles in **row-major contiguous** order —
    the same order as the untiled pass and the per-circuit loop, which is
    what keeps tiled shot sampling draw-for-draw identical.

    Two cost models are provided as constructors:

    * :meth:`for_circuit_sweep` — each grid element is a full circuit state
      (a SWAP-test discriminator holding both registers), so a tile of
      ``r x s`` elements costs ``r * s * element_amplitudes``.
    * :meth:`for_state_overlap` — the analytic estimator's tiled matmul,
      where a tile holds ``r`` trained-state rows *and* ``s`` data-state
      columns side by side, costing ``(r + s) * state_amplitudes``.  This is
      the accounting that makes the budget honest about **both** axes
      instead of only the batch of trained states.

    Attributes
    ----------
    rows, samples:
        Grid extents.
    row_tile, sample_tile:
        Maximum rows/samples per tile.  ``sample_tile < samples`` forces
        single-row tiles so flat enumeration stays contiguous.
    max_amplitudes:
        The budget the plan was derived from (recorded for reports).
    shared_prefix:
        When ``True``, :meth:`SweepProgram.execute` evolves each tile's
        shared trained-state prefix **once** and broadcasts it across the
        tile — legal only when every binding row of a tile agrees on the
        prefix columns, which :meth:`for_grid_sweep` guarantees by cutting
        single-row tiles; every use is certified by the VER403
        ``verify_shared_prefix`` gate at execution time.
    """

    rows: int
    samples: int
    row_tile: int
    sample_tile: int
    max_amplitudes: Optional[int] = None
    shared_prefix: bool = False

    def __post_init__(self) -> None:
        if self.rows < 0 or self.samples < 0:
            raise SimulationError(
                f"grid extents must be non-negative, got {self.rows} x {self.samples}"
            )
        if self.row_tile <= 0 or self.sample_tile <= 0:
            raise SimulationError(
                f"tile extents must be positive, got {self.row_tile} x {self.sample_tile}"
            )

    # ------------------------------------------------------------------ #
    @classmethod
    def for_circuit_sweep(
        cls, rows: int, samples: int, element_amplitudes: int, max_amplitudes: int
    ) -> "TilePlan":
        """Plan a sweep whose every (row, sample) pair is one circuit state."""
        if element_amplitudes <= 0 or max_amplitudes <= 0:
            raise SimulationError(
                "element_amplitudes and max_amplitudes must be positive, got "
                f"{element_amplitudes} and {max_amplitudes}"
            )
        budget_elements = max(1, max_amplitudes // element_amplitudes)
        if samples and budget_elements >= samples:
            row_tile = max(1, budget_elements // samples)
            sample_tile = samples
        else:
            row_tile = 1
            sample_tile = max(1, min(samples, budget_elements) or 1)
        return cls(
            rows=rows,
            samples=samples,
            row_tile=row_tile,
            sample_tile=sample_tile,
            max_amplitudes=int(max_amplitudes),
        )

    @classmethod
    def for_grid_sweep(
        cls, rows: int, samples: int, element_amplitudes: int, max_amplitudes: int
    ) -> "TilePlan":
        """Plan a whole-grid sweep whose tiles share a trained-state prefix.

        Same element cost model as :meth:`for_circuit_sweep`, but tiles are
        cut one *row* at a time (``row_tile=1``) so that every tile holds a
        single parameter-shift row — within such a tile the trained-state
        columns are constant and only the encoder columns vary, which is
        exactly the precondition for the certified shared-prefix execution
        path (``shared_prefix=True``).
        """
        if element_amplitudes <= 0 or max_amplitudes <= 0:
            raise SimulationError(
                "element_amplitudes and max_amplitudes must be positive, got "
                f"{element_amplitudes} and {max_amplitudes}"
            )
        budget_elements = max(1, max_amplitudes // element_amplitudes)
        return cls(
            rows=rows,
            samples=samples,
            row_tile=1,
            sample_tile=max(1, min(samples, budget_elements) or 1),
            max_amplitudes=int(max_amplitudes),
            shared_prefix=True,
        )

    @classmethod
    def for_state_overlap(
        cls, rows: int, samples: int, state_amplitudes: int, max_amplitudes: int
    ) -> "TilePlan":
        """Plan a tiled overlap matmul holding row states and sample columns."""
        if state_amplitudes <= 0 or max_amplitudes <= 0:
            raise SimulationError(
                "state_amplitudes and max_amplitudes must be positive, got "
                f"{state_amplitudes} and {max_amplitudes}"
            )
        budget_states = max(2, max_amplitudes // state_amplitudes)
        sample_tile = max(1, min(samples, budget_states // 2) or 1)
        row_tile = max(1, min(rows, budget_states - sample_tile) or 1)
        return cls(
            rows=rows,
            samples=samples,
            row_tile=row_tile,
            sample_tile=sample_tile,
            max_amplitudes=int(max_amplitudes),
        )

    # ------------------------------------------------------------------ #
    @property
    def total_elements(self) -> int:
        """Number of grid elements (rows x samples)."""
        return self.rows * self.samples

    @property
    def tile_elements(self) -> int:
        """Largest number of grid elements alive in one tile."""
        if self.sample_tile >= self.samples:
            return self.row_tile * max(self.samples, 1)
        return self.sample_tile

    @property
    def num_tiles(self) -> int:
        return len(list(self.flat_tiles()))

    def row_tiles(self) -> Iterator[Tuple[int, int]]:
        """Contiguous ``(start, stop)`` spans over the row axis."""
        for start in range(0, self.rows, self.row_tile):
            yield start, min(self.rows, start + self.row_tile)

    def sample_tiles(self) -> Iterator[Tuple[int, int]]:
        """Contiguous ``(start, stop)`` spans over the sample axis."""
        for start in range(0, self.samples, self.sample_tile):
            yield start, min(self.samples, start + self.sample_tile)

    def flat_tiles(self) -> Iterator[Tuple[int, int]]:
        """Contiguous ``(start, stop)`` ranges over the row-major flat index.

        Full-row blocks when a row fits the budget, within-row sample blocks
        otherwise (one row at a time, so the tiles stay contiguous) — either
        way the concatenation of the tiles is exactly the untiled row-major
        order.
        """
        if self.total_elements == 0:
            return
        if self.sample_tile >= self.samples:
            chunk = self.row_tile * self.samples
            for start in range(0, self.total_elements, chunk):
                yield start, min(self.total_elements, start + chunk)
            return
        for row in range(self.rows):
            base = row * self.samples
            for start, stop in self.sample_tiles():
                yield base + start, base + stop


# --------------------------------------------------------------------------- #
# The program IR
# --------------------------------------------------------------------------- #

#: A slot is ``("value", v)`` for a fixed angle or ``("column", c, coeff)``
#: reading ``coeff * bindings[:, c]`` at execution time.
Slot = Tuple


@dataclasses.dataclass(frozen=True)
class GateStep:
    """One gate of a compiled sweep: fixed unitary or parameter bind site.

    ``matrix`` holds the precomputed ``(2**k, 2**k)`` unitary when no slot
    reads a bindings column (the step is *fixed* across the whole sweep);
    parametric steps build a shared or per-element matrix from the bindings
    at execution time.

    ``fused_from`` is the fusion pass's provenance: the ordered source steps
    a fused step replaced.  It is what lets :meth:`SweepProgram.binding_row`
    and :meth:`SweepProgram.matches_structure` keep working against original
    circuits, what the density engine composes noise from (a fused step's
    synthetic name must never reach a name-keyed channel lookup), and what
    the VER4xx translation validator certifies the rewrite against.
    """

    name: str
    qubits: Tuple[int, ...]
    slots: Tuple[Slot, ...]
    matrix: Optional[np.ndarray] = None
    fused_from: Optional[Tuple["GateStep", ...]] = None

    @property
    def is_fixed(self) -> bool:
        return self.matrix is not None


# --------------------------------------------------------------------------- #
# Plan-time fusion
# --------------------------------------------------------------------------- #

#: Opt-in switch for plan-time fusion on the cached execution paths (the
#: simulators' ``run_batch`` program cache and ``TranspileCache`` templates).
#: Off by default: fusion is certified-equivalent but regroups float matrix
#: products, so the default paths keep the seed's bit-exact guarantees.
OPTIMIZE_PROGRAMS_ENV = "REPRO_OPTIMIZE_PROGRAMS"


def optimization_enabled() -> bool:
    """Whether ``REPRO_OPTIMIZE_PROGRAMS`` asks for plan-time fusion."""
    return os.environ.get(OPTIMIZE_PROGRAMS_ENV, "").strip().lower() in {
        "1",
        "true",
        "yes",
        "on",
    }


def resolve_optimization(flag: Optional[bool]) -> bool:
    """Resolve a three-state ``optimize`` knob (``None`` = environment)."""
    return optimization_enabled() if flag is None else bool(flag)


def _lift_block(block, positions: Sequence[int], total_axes: int) -> np.ndarray:
    """Embed an operator on ``len(positions)`` binary axes into ``total_axes``.

    ``block`` is a ``(2**j, 2**j)`` matrix acting on axes ``positions`` of a
    ``2**total_axes``-dimensional space (most-significant-axis-first index
    convention); the result acts as the identity everywhere else.  This is
    the engines' tensor-axis idiom — the VER4xx validator rebuilds the same
    lift independently from ``kron`` and permutation matrices.
    """
    j = len(positions)
    op = arrays.as_complex(np.asarray(block)).reshape((2,) * (2 * j))
    ident = arrays.eye(2**total_axes).reshape((2,) * (2 * total_axes))
    out = arrays.tensordot(
        op, ident, axes=(tuple(range(j, 2 * j)), tuple(positions))
    )
    out = np.moveaxis(out, tuple(range(j)), tuple(positions))
    return out.reshape(2**total_axes, 2**total_axes)


def lift_matrix(
    matrix, qubits: Sequence[int], union: Sequence[int]
) -> np.ndarray:
    """Lift a gate matrix on ``qubits`` to the fused ``union`` register."""
    union = tuple(union)
    positions = [union.index(qubit) for qubit in qubits]
    return _lift_block(matrix, positions, len(union))


def lift_superoperator(
    superoperator, qubits: Sequence[int], union: Sequence[int]
) -> np.ndarray:
    """Lift a ``(4**k, 4**k)`` superoperator on ``qubits`` to the ``union``.

    A superoperator on ``vec(rho)`` has one row-index axis and one
    column-index axis per qubit; both families lift to the same qubit
    positions, offset by the union width on the column side.
    """
    union = tuple(union)
    m = len(union)
    positions = [union.index(qubit) for qubit in qubits]
    return _lift_block(
        superoperator, positions + [m + p for p in positions], 2 * m
    )


def _fuse_run(run: Sequence[GateStep]) -> GateStep:
    """Merge a legal run of fixed steps into one provenance-carrying step."""
    union = tuple(sorted({qubit for step in run for qubit in step.qubits}))
    matrix: Optional[np.ndarray] = None
    for step in run:
        lifted = lift_matrix(step.matrix, step.qubits, union)
        matrix = lifted if matrix is None else lifted @ matrix
    return GateStep(
        name="fused(" + "+".join(step.name for step in run) + ")",
        qubits=union,
        slots=(),
        matrix=matrix,
        fused_from=tuple(run),
    )


class SweepProgram:
    """Compiled execution plan of one structure-sharing sweep.

    Build via :meth:`compile`; execute via :meth:`evolve` (full batch, final
    states retained) or :meth:`execute` (tiled, read-out probabilities only).
    Programs are immutable after compilation and safe to cache/share across
    calls — all per-execution state lives in the engines' batched states.
    """

    def __init__(
        self,
        *,
        num_qubits: int,
        num_clbits: int,
        steps: Sequence[GateStep],
        measured_qubits: Sequence[int],
        clbits: Sequence[int],
        num_columns: int,
        parameters: Tuple[Parameter, ...],
        column_sites: Tuple[Tuple[int, int], ...],
        name: str,
        fusion_barriers: Tuple[int, ...] = (),
    ) -> None:
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits)
        self.steps: Tuple[GateStep, ...] = tuple(steps)
        self.measured_qubits: Tuple[int, ...] = tuple(measured_qubits)
        self.clbits: Tuple[int, ...] = tuple(clbits)
        self.num_columns = int(num_columns)
        #: Symbolic parameters defining the column order (symbolic mode only).
        self.parameters = parameters
        #: ``(instruction position, param position)`` of each float column in
        #: the *reference* circuit (bound-reference mode only; barrier
        #: positions included).  Introspection only — :meth:`binding_row`
        #: extracts by walking gates so sibling barrier placement is free.
        self.column_sites = column_sites
        #: Source-step indices where the compiled circuit placed a barrier.
        #: The fusion pass never merges a run across one of these — the
        #: whole-grid compile path barriers the trained/encoder boundary so
        #: a claimed shared prefix survives optimisation — and the VER404
        #: translation check rejects any fused step that straddles one.
        self.fusion_barriers: Tuple[int, ...] = tuple(fusion_barriers)
        self.name = name

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    @classmethod
    def compile(
        cls,
        circuit,
        *,
        bind_floats: bool,
        parameters: Optional[Sequence[Parameter]] = None,
        name: Optional[str] = None,
        optimize: bool = False,
        noise_model: Optional[NoiseModel] = None,
    ) -> "SweepProgram":
        """Compile one representative circuit into a sweep program.

        ``optimize=True`` additionally runs the certified plan-time fusion
        pass (:meth:`optimized`) on the result; ``noise_model`` is the model
        the program will execute under, consulted by the fusion legality
        oracle's channel-commutation checks (pass the density engine's model
        for noisy sweeps, ``None`` for statevector execution).

        Two modes cover every consumer:

        * ``bind_floats=True`` — the representative is one *bound* circuit of
          a sweep (the ``run_batch`` fast path): every float gate angle
          becomes a bindings column, because sibling circuits are free to
          bind a different value there.  Symbolic parameters are rejected.
        * ``bind_floats=False`` — the representative is *symbolic* (a
          transpile template or the builder's trained-state circuit): float
          angles are genuine structural constants (compiled into fixed
          matrices, eligible for noise precomposition), and each distinct
          :class:`Parameter` becomes a column.  ``parameters`` fixes the
          column order (defaults to first appearance);
          :class:`ScaledParameter` angles become affine slots.

        Resets are rejected (they need per-element projective randomness the
        vectorised engines do not model), as are circuits the
        deferred-measurement strategy cannot represent.
        """
        program_name = name or f"sweep({getattr(circuit, 'name', 'circuit')})"
        column_of: Dict[Parameter, int] = {}
        explicit_order = parameters is not None
        if explicit_order:
            for param in parameters:
                if param in column_of:
                    raise SimulationError(
                        f"{program_name}: duplicate parameter {param!r} in ordering"
                    )
                column_of[param] = len(column_of)
        column_sites: List[Tuple[int, int]] = []
        fusion_barriers: List[int] = []
        steps: List[GateStep] = []
        measured_qubits: List[int] = []
        measured_set: set = set()
        clbits: List[int] = []

        def parameter_column(param: Parameter) -> int:
            column = column_of.get(param)
            if column is None:
                if explicit_order:
                    raise SimulationError(
                        f"{program_name}: parameter {param!r} not in the "
                        "provided parameter ordering"
                    )
                column = len(column_of)
                column_of[param] = column
            return column

        for position, instruction in enumerate(circuit.instructions):
            if instruction.name == "barrier":
                # Barriers compile to no step, but they *do* pin a fusion
                # boundary: record the index of the next step so the
                # optimisation pass never merges a run across the barrier.
                if steps and (not fusion_barriers or fusion_barriers[-1] != len(steps)):
                    fusion_barriers.append(len(steps))
                continue
            check_deferred_measurement(instruction, measured_set, program_name)
            if instruction.is_measurement:
                measured_qubits.extend(instruction.qubits)
                measured_set.update(instruction.qubits)
                clbits.extend(instruction.clbits)
                continue
            if instruction.name == "reset":
                raise SimulationError(
                    f"{program_name}: cannot compile resets — they need "
                    "per-element projective randomness the vectorised sweep "
                    "engines do not model"
                )
            if not instruction.is_gate:
                raise SimulationError(
                    f"{program_name}: cannot compile non-unitary instruction "
                    f"'{instruction.name}'"
                )
            slots: List[Slot] = []
            for param_position, param in enumerate(instruction.params):
                if isinstance(param, Parameter):
                    if bind_floats:
                        raise SimulationError(
                            f"{program_name}: circuit has unbound parameter "
                            f"{param!r}"
                        )
                    slots.append(("column", parameter_column(param), 1.0))
                elif isinstance(param, ScaledParameter):
                    if bind_floats:
                        raise SimulationError(
                            f"{program_name}: circuit has unbound parameter "
                            f"{param.parameter!r}"
                        )
                    slots.append(
                        ("column", parameter_column(param.parameter), param.coefficient)
                    )
                elif bind_floats:
                    column = len(column_of) + len(column_sites)
                    column_sites.append((position, param_position))
                    slots.append(("column", column, 1.0))
                else:
                    slots.append(("value", float(param)))
            if any(slot[0] == "column" for slot in slots):
                matrix = None
            else:
                matrix = gate_library.gate_matrix(
                    instruction.name, *(slot[1] for slot in slots)
                )
            steps.append(
                GateStep(
                    name=instruction.name,
                    qubits=instruction.qubits,
                    slots=tuple(slots),
                    matrix=matrix,
                )
            )
        program = cls(
            num_qubits=circuit.num_qubits,
            num_clbits=circuit.num_clbits,
            steps=steps,
            measured_qubits=measured_qubits,
            clbits=clbits,
            num_columns=len(column_of) + len(column_sites),
            parameters=tuple(
                sorted(column_of, key=lambda param: column_of[param])
            ),
            column_sites=tuple(column_sites),
            name=program_name,
            fusion_barriers=tuple(
                barrier for barrier in fusion_barriers if barrier < len(steps)
            ),
        )
        # Static verification at the compile boundary: the cheap structural
        # subset (bind-column/qubit/read-out bounds) always runs — compiles
        # are structure-cached, so it costs one linear walk per structure —
        # and REPRO_VERIFY=1 upgrades to the full numerical level.  A
        # plan-time bug aborts here instead of surfacing as wrong sweep
        # numbers three layers down.
        from repro.analysis.verify import verify_compilation

        verify_compilation(program)
        if optimize:
            program = program.optimized(noise_model=noise_model)
        return program

    # ------------------------------------------------------------------ #
    # Plan-time fusion
    # ------------------------------------------------------------------ #
    def source_steps(self) -> Iterator[GateStep]:
        """The original compiled steps, flattened through fusion provenance.

        On an unoptimised program this is just ``iter(self.steps)``; on an
        optimised one it re-yields the exact pre-fusion step sequence, which
        is what keeps circuit-facing structure checks and binding extraction
        working unchanged.
        """
        for step in self.steps:
            if step.fused_from:
                yield from step.fused_from
            else:
                yield step

    def _with_steps(self, steps: Sequence[GateStep]) -> "SweepProgram":
        return SweepProgram(
            num_qubits=self.num_qubits,
            num_clbits=self.num_clbits,
            steps=steps,
            measured_qubits=self.measured_qubits,
            clbits=self.clbits,
            num_columns=self.num_columns,
            parameters=self.parameters,
            column_sites=self.column_sites,
            name=self.name,
            fusion_barriers=self.fusion_barriers,
        )

    def optimized(
        self,
        *,
        noise_model: Optional[NoiseModel] = None,
        max_fused_qubits: Optional[int] = None,
        atol: Optional[float] = None,
    ) -> "SweepProgram":
        """Certified plan-time fusion: merge legal runs of fixed gates.

        Walks the step sequence greedily, growing runs of fixed unitaries
        that the :mod:`repro.analysis.equiv` legality oracle admits —
        overlapping qubit tuples within ``max_fused_qubits``, and (under
        ``noise_model``) only while every appended gate's conjugation
        commutes with the run's accumulated noise superoperators, so folding
        the noise behind one fused unitary on the density engine stays
        exact.  Parametric bind sites always flush the current run.

        Every rewrite is certified before the program is returned: the
        VER410 translation witness plus a VER401 certificate per fused step,
        both re-deriving the lifts through an independent code path; a
        failed certificate raises instead of shipping a wrong plan.  Returns
        ``self`` when nothing fuses.
        """
        from repro.analysis.equiv import (
            DEFAULT_MAX_FUSED_QUBITS,
            can_extend_fusion,
            verify_fused_step,
            verify_translation,
        )
        from repro.analysis.verify import (
            DEFAULT_ATOL,
            assert_clean,
            verify_compilation,
        )

        if max_fused_qubits is None:
            max_fused_qubits = DEFAULT_MAX_FUSED_QUBITS
        if atol is None:
            atol = DEFAULT_ATOL
        steps: List[GateStep] = []
        run: List[GateStep] = []

        def admits(candidates: List[GateStep], step: GateStep) -> bool:
            ok, _ = can_extend_fusion(
                candidates,
                step,
                noise_model=noise_model,
                max_fused_qubits=max_fused_qubits,
                atol=atol,
            )
            return ok

        def flush() -> None:
            if not run:
                return
            steps.append(run[0] if len(run) == 1 else _fuse_run(run))
            run.clear()

        barriers = set(self.fusion_barriers)
        position = 0
        for step in self.steps:
            if position in barriers:
                # A declared fusion boundary (compiled from a circuit
                # barrier): never extend a run across it, so rewrites stay
                # legal for the shared-prefix execution path.
                flush()
            position += len(step.fused_from) if step.fused_from else 1
            if admits(run, step):
                run.append(step)
                continue
            flush()
            if admits(run, step):
                run.append(step)
            else:
                steps.append(step)
        flush()
        if not any(step.fused_from for step in steps):
            return self
        program = self._with_steps(steps)
        diagnostics = list(verify_translation(self, program, atol=atol))
        for fused in program.steps:
            if fused.fused_from:
                diagnostics.extend(
                    verify_fused_step(
                        fused, program_name=program.name, atol=atol
                    )
                )
        assert_clean(diagnostics, context=f"{self.name}: plan-time fusion")
        verify_compilation(program)
        return program

    # ------------------------------------------------------------------ #
    # Binding extraction
    # ------------------------------------------------------------------ #
    def binding_row(self, circuit) -> List[float]:
        """This bound circuit's values for every float column, in column order.

        Only valid for programs compiled with ``bind_floats=True``.  The
        walk pairs the circuit's gate instructions (barriers and
        measurements skipped, so barrier placement is free to differ across
        sweep siblings) against the compiled steps and checks gate names and
        qubits as it extracts — a structure mismatch fails loudly instead of
        silently mis-binding an angle into the wrong column.
        """
        if self.parameters:
            raise SimulationError(
                f"{self.name}: binding rows are extracted from bound circuits; "
                "this program binds symbolic parameters — use a parameter "
                "value matrix instead"
            )

        def mismatch() -> SimulationError:
            return SimulationError(
                f"{self.name}: circuit '{circuit.name}' does not share the "
                "compiled gate structure"
            )

        step_iter = self.source_steps()
        row: List[float] = []
        for instruction in circuit.instructions:
            if instruction.name == "barrier" or instruction.is_measurement:
                continue
            step = next(step_iter, None)
            if (
                step is None
                or step.name != instruction.name
                or step.qubits != instruction.qubits
            ):
                raise mismatch()
            for value in instruction.params:
                if isinstance(value, (Parameter, ScaledParameter)):
                    raise SimulationError(
                        f"{self.name}: circuit '{circuit.name}' has unbound "
                        "parameters at a compiled bind site"
                    )
                row.append(float(value))
        if next(step_iter, None) is not None or len(row) != self.num_columns:
            raise mismatch()
        return row

    def matches_structure(self, circuit) -> bool:
        """Whether ``circuit`` has the gate skeleton this program compiled."""
        if (
            circuit.num_qubits != self.num_qubits
            or circuit.num_clbits != self.num_clbits
        ):
            return False
        step_iter = self.source_steps()
        measured: List[int] = []
        bits: List[int] = []
        for instruction in circuit.instructions:
            if instruction.name == "barrier":
                continue
            if instruction.is_measurement:
                measured.extend(instruction.qubits)
                bits.extend(instruction.clbits)
                continue
            step = next(step_iter, None)
            if (
                step is None
                or step.name != instruction.name
                or step.qubits != instruction.qubits
            ):
                return False
        return (
            next(step_iter, None) is None
            and tuple(measured) == self.measured_qubits
            and tuple(bits) == self.clbits
        )

    def bindings_from_circuits(self, circuits: Sequence) -> np.ndarray:
        """Stacked binding rows of a structure-sharing sweep of bound circuits."""
        rows = [self.binding_row(circuit) for circuit in circuits]
        return np.asarray(rows, dtype=float).reshape(len(rows), self.num_columns)

    def _check_bindings(self, bindings) -> np.ndarray:
        bindings = np.asarray(bindings, dtype=float)
        if bindings.ndim != 2:
            raise SimulationError(
                f"{self.name}: bindings must be 2-D (batch, columns), got "
                f"shape {bindings.shape}"
            )
        if bindings.shape[1] != self.num_columns:
            raise SimulationError(
                f"{self.name}: expected {self.num_columns} binding column(s), "
                f"got {bindings.shape[1]}"
            )
        if bindings.shape[0] == 0:
            raise SimulationError(f"{self.name}: cannot execute an empty batch")
        return bindings

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _resolve_operands(self, bindings: np.ndarray) -> List:
        """Per-step gate-operand plan for one sweep's **full** bindings.

        For every parametric step, decide once — from the whole batch, never
        from an individual tile — whether the step binds identical angles
        everywhere (shared ``(2**k, 2**k)`` matrix, built here) or genuinely
        per-element angles (the evaluated columns, sliced per tile later).
        Making the shared/batched decision tile-independent is what keeps
        tiled execution bit-identical to the untiled pass: a one-element tile
        must not collapse onto the shared-matrix code path when the full
        sweep takes the batched one.
        """
        operands: List = []
        for step in self.steps:
            if step.is_fixed:
                operands.append(None)
                continue
            columns: List = []
            scalars: List[float] = []
            shared = True
            for slot in step.slots:
                if slot[0] == "value":
                    columns.append(slot[1])
                    scalars.append(slot[1])
                    continue
                _, column, coefficient = slot
                values = bindings[:, column]
                if coefficient != 1.0:
                    values = values * coefficient
                columns.append(values)
                if shared and np.all(values == values[0]):
                    scalars.append(float(values[0]))
                else:
                    shared = False
            if shared:
                operands.append(
                    ("shared", gate_library.gate_matrix(step.name, *scalars))
                )
            else:
                operands.append(("batched", columns))
        return operands

    def _step_matrix(self, step: GateStep, operand, start: int, stop: int):
        """The gate matrix (shared or batched) for one tile of one step."""
        if operand is None:
            return step.matrix
        if operand[0] == "shared":
            return operand[1]
        return gate_library.gate_matrix_batch(
            step.name,
            *(
                column if np.isscalar(column) else column[start:stop]
                for column in operand[1]
            ),
        )

    def _evolve_tile(
        self,
        engine,
        operands: List,
        start: int,
        stop: int,
        *,
        shared_bindings: Optional[np.ndarray] = None,
    ):
        """Evolve one contiguous tile ``[start, stop)`` of the sweep.

        When ``shared_bindings`` is provided (the tile plan claims a shared
        trained-state prefix), the longest prefix of steps whose operands are
        constant across the tile is evolved **once** at batch size 1 and the
        resulting state broadcast across the tile before the per-element
        suffix runs.  Every such claim is certified by the VER403
        ``verify_shared_prefix`` gate first — an illegal claim raises
        :class:`~repro.exceptions.SimulationError` instead of silently
        reusing a state the tile does not actually share.
        """
        batch = stop - start
        plans = engine.step_plans(self)
        prefix = 0
        if shared_bindings is not None and batch > 1:
            from repro.analysis.equiv import (
                shared_prefix_length,
                verify_shared_prefix,
            )
            from repro.analysis.verify import assert_clean

            tile_bindings = shared_bindings[start:stop]
            prefix = shared_prefix_length(self, tile_bindings)
            if prefix:
                assert_clean(
                    list(verify_shared_prefix(self, tile_bindings, prefix)),
                    context=f"{self.name}: shared-prefix tile execution",
                )
        if prefix:
            state = engine.initial_state(1, self.num_qubits)
            for index in range(prefix):
                step = self.steps[index]
                matrix = self._step_matrix(
                    step, operands[index], start, start + 1
                )
                engine.apply_step(state, step, plans[index], matrix)
            state = state.broadcast_to(batch)
        else:
            state = engine.initial_state(batch, self.num_qubits)
        for index in range(prefix, len(self.steps)):
            step = self.steps[index]
            matrix = self._step_matrix(step, operands[index], start, stop)
            engine.apply_step(state, step, plans[index], matrix)
        return state

    def evolve(self, bindings, engine):
        """Evolve the whole batch at once; returns the engine's batched state.

        Used by the ``run_batch`` executors, which must hand back every
        element's final state.  ``bindings`` is a ``(batch, num_columns)``
        float matrix (one row per sweep element).
        """
        bindings = self._check_bindings(bindings)
        operands = self._resolve_operands(bindings)
        return self._evolve_tile(engine, operands, 0, bindings.shape[0])

    def execute(self, bindings, engine, *, tile_plan: Optional[TilePlan] = None) -> np.ndarray:
        """Tiled execution: joint read-out probabilities, final states dropped.

        Streams contiguous row-major tiles of the bindings through the
        engine, keeping only each tile's ``(tile, 2**m)`` joint distribution
        over the measured qubits (readout error applied by noisy engines).
        The concatenated result is bit-identical to the untiled pass — per
        element the arithmetic is the same, only the batch extent differs.
        Peak engine memory is bounded by the largest tile instead of the
        whole sweep.
        """
        bindings = self._check_bindings(bindings)
        if not self.measured_qubits:
            raise SimulationError(
                f"{self.name}: cannot read out a program without measurements"
            )
        total = bindings.shape[0]
        if tile_plan is None:
            tiles: Sequence[Tuple[int, int]] = ((0, total),)
        else:
            if tile_plan.total_elements != total:
                raise SimulationError(
                    f"{self.name}: tile plan covers {tile_plan.total_elements} "
                    f"elements but the bindings have {total} rows"
                )
            tiles = tile_plan.flat_tiles()
        operands = self._resolve_operands(bindings)
        shared = bindings if (tile_plan is not None and tile_plan.shared_prefix) else None
        out = np.empty((total, 2 ** len(self.measured_qubits)), dtype=float)
        for start, stop in tiles:
            state = self._evolve_tile(
                engine, operands, start, stop, shared_bindings=shared
            )
            out[start:stop] = engine.joint_probabilities(state, self.measured_qubits)
        return out


# --------------------------------------------------------------------------- #
# Execution engines
# --------------------------------------------------------------------------- #


class StatevectorEngine:
    """Pure-state executor: every step is one batched einsum."""

    name = "statevector"
    is_noisy = False

    def initial_state(self, batch: int, num_qubits: int) -> BatchedStatevector:
        return BatchedStatevector(batch, num_qubits)

    def step_plans(self, program: SweepProgram) -> Sequence[None]:
        return (None,) * len(program.steps)

    def apply_step(self, state, step: GateStep, plan, matrix) -> None:
        state.apply_matrix(matrix, step.qubits)

    def joint_probabilities(self, state, measured_qubits) -> np.ndarray:
        return state.probabilities(measured_qubits)


def gate_noise_superoperator(
    gate_name: str, qubits: Tuple[int, ...], noise_model: NoiseModel
) -> Optional[np.ndarray]:
    """All of a gate's noise channels composed into one ``(4**k, 4**k)`` matrix.

    Channels are composed in the exact order the per-circuit simulator
    applies them — model order, and single-qubit channels after a multi-qubit
    gate expand per qubit in instruction order — so the precomposed
    superoperator is mathematically identical to the sequential Kraus
    applications.  Returns ``None`` when the model attaches no channels to
    the gate, letting fixed ideal gates skip the superoperator path.
    """
    k = len(qubits)
    composed: Optional[np.ndarray] = None

    def fold(superop: np.ndarray) -> None:
        nonlocal composed
        composed = superop if composed is None else superop @ composed

    for channel in noise_model.gate_channels(gate_name, k):
        channel_width = int(np.log2(np.asarray(channel[0]).shape[0]))
        if channel_width not in (k, 1):
            raise SimulationError(
                f"noise channel width {channel_width} incompatible with gate "
                f"'{gate_name}' on {k} qubit(s)"
            )
        if channel_width == k:
            fold(channel_superoperator(channel))
            continue
        for position in range(k):
            # A single-qubit channel after a k-qubit gate acts on each of the
            # gate's qubits in turn; lift its Kraus operators to the k-qubit
            # block with identities around the target position, exactly like
            # the per-gate ``apply_kraus(channel, (qubit,))`` dispatch.
            before = np.eye(2**position, dtype=COMPLEX_DTYPE)
            after = np.eye(2 ** (k - 1 - position), dtype=COMPLEX_DTYPE)
            lifted = [
                arrays.kron(
                    arrays.kron(before, np.asarray(kraus, dtype=COMPLEX_DTYPE)),
                    after,
                )
                for kraus in channel
            ]
            fold(channel_superoperator(lifted))
    return composed


class DensitySuperoperatorEngine:
    """Mixed-state executor with compile-time noise precomposition.

    Per program, each gate step is planned **once** (and memoised while the
    program stays cached): fixed gates fold their unitary and every attached
    noise channel into a single ``(4**k, 4**k)`` superoperator; parametric
    bind sites precompose their noise channels alone, and at execution time
    the per-tile gate superoperator is left-multiplied by that matrix — one
    contraction per gate instead of one per gate *plus one per channel*, and
    no Kraus-channel resolution at all on repeat sweeps.
    """

    name = "density_superoperator"
    is_noisy = True

    def __init__(self, noise_model: Optional[NoiseModel] = None) -> None:
        self.noise_model = noise_model if noise_model is not None else NoiseModel.ideal()
        self._plans: "WeakKeyDictionary[SweepProgram, tuple]" = WeakKeyDictionary()
        #: Plan compilations performed (cache-instrumentation for benchmarks).
        self.plans_compiled = 0

    def initial_state(self, batch: int, num_qubits: int) -> BatchedDensityMatrix:
        return BatchedDensityMatrix(batch, num_qubits)

    def step_plans(self, program: SweepProgram) -> tuple:
        version = getattr(self.noise_model, "version", 0)
        cached = self._plans.get(program)
        if cached is not None and cached[0] == version:
            return cached[1]
        # First plan for this program, or the noise model was mutated
        # in place since the plan was precomposed (its ``add_*`` builders
        # bump ``version``) — recompose so the batched paths track the
        # live model exactly like the per-circuit ``run`` loop does.
        plans = tuple(self._plan_step(step) for step in program.steps)
        if full_verification_enabled():
            # REPRO_VERIFY=1: CPTP-check every precomposed superoperator plan
            # before the engine ever contracts with it.
            from repro.analysis.verify import verify_step_plan_superoperators

            verify_step_plan_superoperators(program, plans)
        self._plans[program] = (version, plans)
        self.plans_compiled += 1  # repro: noqa REP101 -- instrumentation counter on a per-backend engine; workers rebuild backends from specs, never share one engine
        return plans

    def _plan_step(self, step: GateStep):
        if step.fused_from:
            # Provenance first: the model's *default* channels are keyed by
            # qubit count, so a name lookup on the fused step's synthetic
            # name would still attach a spurious k-qubit channel.
            return ("fixed", self._fused_superoperator(step))
        noise = gate_noise_superoperator(step.name, step.qubits, self.noise_model)
        if not step.is_fixed:
            return ("parametric", noise)
        if noise is None:
            return ("fixed", conjugation_superoperator(step.matrix))
        return ("fixed", noise @ conjugation_superoperator(step.matrix))

    def _fused_superoperator(self, step: GateStep) -> np.ndarray:
        """Fold the provenance steps' noise behind the fused unitary.

        Noise is composed exclusively from the *source* steps' own channels,
        lifted onto the fused qubit tuple in source order.  The fold is
        certified against an independently lifted sequential composition
        (VER402) every time it is composed — cheap at fused width, and it
        makes a program optimised under a different noise model than this
        engine's fail loudly instead of producing wrong sweep numbers.
        """
        from repro.analysis.equiv import verify_fused_superoperator_plan
        from repro.analysis.verify import assert_clean

        noise: Optional[np.ndarray] = None
        for source in step.fused_from:
            channel = gate_noise_superoperator(
                source.name, source.qubits, self.noise_model
            )
            if channel is None:
                continue
            lifted = lift_superoperator(channel, source.qubits, step.qubits)
            noise = lifted if noise is None else lifted @ noise
        folded = conjugation_superoperator(step.matrix)
        if noise is not None:
            folded = noise @ folded
        assert_clean(
            verify_fused_superoperator_plan(
                step, folded, self.noise_model, program_name=self.name
            ),
            context=f"{self.name}: folding noise into fused step '{step.name}'",
        )
        return folded

    def apply_step(self, state, step: GateStep, plan, matrix) -> None:
        kind, superop = plan
        if kind == "fixed":
            state.apply_superoperator(superop, step.qubits)
            return
        if superop is None:
            state.apply_matrix(matrix, step.qubits)
            return
        term = conjugation_superoperator(matrix)
        state.apply_superoperator(superop @ term, step.qubits)

    def joint_probabilities(self, state, measured_qubits) -> np.ndarray:
        joint = state.probabilities(measured_qubits)
        return apply_readout_error(joint, measured_qubits, self.noise_model)
