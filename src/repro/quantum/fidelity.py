"""Quantum state fidelity and the SWAP test.

The SWAP test (paper Section 3.3) estimates the fidelity ``F = |<phi|omega>|^2``
between two ``n``-qubit states using a single ancilla qubit:

1. Hadamard on the ancilla,
2. controlled-SWAP of each qubit pair ``(phi_i, omega_i)`` conditioned on the
   ancilla,
3. Hadamard on the ancilla, then measure it.

The probability of measuring ``0`` on the ancilla is ``(1 + F) / 2``, so the
fidelity is recovered as ``F = 2 * P(0) - 1``.  This module provides both the
circuit constructor (used for shot-based and noisy-hardware estimation) and
closed-form fidelity helpers (used by the fast analytic training path).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import Statevector


def state_fidelity(state_a: Statevector, state_b: Statevector) -> float:
    """Fidelity ``|<a|b>|^2`` between two pure states."""
    return state_a.fidelity(state_b)


def swap_test_probability_from_fidelity(fidelity: float) -> float:
    """Probability of measuring ``0`` on the SWAP-test ancilla given a fidelity."""
    if not -1e-9 <= fidelity <= 1.0 + 1e-9:
        raise SimulationError(f"fidelity must lie in [0, 1], got {fidelity}")
    return 0.5 + 0.5 * float(np.clip(fidelity, 0.0, 1.0))


def fidelity_from_swap_test_probability(p_zero: float, eps: float = 1e-9) -> float:
    """Invert the SWAP test: ``F = 2 * P(0) - 1``, clipped into ``[0, 1]``.

    Finite-shot estimates can legitimately produce ``P(0)`` slightly below one
    half (a fidelity estimate just under zero), so the result is clipped into
    ``[0, 1]``.  A ``p_zero`` that is not a probability at all — outside
    ``[-eps, 1 + eps]`` or non-finite — is *not* shot noise but an upstream
    bug (mis-normalised counts, wrong classical bit), and clipping it into a
    plausible fidelity would silently corrupt training, so it raises
    :class:`~repro.exceptions.SimulationError` instead.
    """
    p_zero = float(p_zero)
    if not np.isfinite(p_zero) or p_zero < -eps or p_zero > 1.0 + eps:
        raise SimulationError(
            f"SWAP-test P(0) must be a probability in [0, 1], got {p_zero}"
        )
    return float(np.clip(2.0 * p_zero - 1.0, 0.0, 1.0))


def fidelities_from_swap_test_probabilities(
    p_zero: np.ndarray, eps: float = 1e-9
) -> np.ndarray:
    """Vectorised :func:`fidelity_from_swap_test_probability` over an array.

    Used by the batched SWAP-test estimator to invert a whole sweep of
    ancilla readouts in three array operations instead of one scalar call per
    circuit.  Same contract: small boundary violations clip (finite-shot
    noise), non-probabilities raise :class:`~repro.exceptions.SimulationError`.
    """
    p = np.asarray(p_zero, dtype=float)
    valid = np.isfinite(p) & (p >= -eps) & (p <= 1.0 + eps)
    if not np.all(valid):
        bad = np.atleast_1d(p)[~np.atleast_1d(valid)]
        raise SimulationError(
            f"SWAP-test P(0) must be probabilities in [0, 1], got {bad[:5].tolist()}"
        )
    return np.clip(2.0 * p - 1.0, 0.0, 1.0)


def build_swap_test_circuit(
    state_width: int,
    ancilla: int = 0,
    first_state_qubits: Optional[Sequence[int]] = None,
    second_state_qubits: Optional[Sequence[int]] = None,
    name: str = "swap_test",
) -> QuantumCircuit:
    """Build the bare SWAP-test skeleton over ``2 * state_width + 1`` qubits.

    The returned circuit contains only the Hadamard / CSWAP / Hadamard /
    measure sequence; callers prepend their own state-preparation gates (the
    QuClassi builder composes the trained-state and data-loading circuits in
    front of it).

    Parameters
    ----------
    state_width:
        Number of qubits in each of the two states being compared.
    ancilla:
        Index of the ancilla (control) qubit.
    first_state_qubits, second_state_qubits:
        Indices of the two state registers.  Default layout is
        ``ancilla=0``, first state ``1..n``, second state ``n+1..2n``.
    """
    if state_width <= 0:
        raise SimulationError(f"state_width must be positive, got {state_width}")
    total_qubits = 2 * state_width + 1
    first = tuple(first_state_qubits) if first_state_qubits is not None else tuple(
        range(1, state_width + 1)
    )
    second = tuple(second_state_qubits) if second_state_qubits is not None else tuple(
        range(state_width + 1, 2 * state_width + 1)
    )
    if len(first) != state_width or len(second) != state_width:
        raise SimulationError("state register sizes must both equal state_width")
    if len(set(first)) != len(first) or len(set(second)) != len(second):
        raise SimulationError(
            f"state registers must not repeat qubits: first={first}, second={second}"
        )
    overlap = set(first).intersection(second)
    if overlap:
        raise SimulationError(
            f"state registers overlap on qubit(s) {sorted(overlap)}; the SWAP test "
            "compares two disjoint registers"
        )
    if ancilla in first or ancilla in second:
        raise SimulationError(
            f"ancilla qubit {ancilla} collides with a state register; the control "
            "qubit must be disjoint from both states"
        )
    if ancilla < 0 or any(q < 0 for q in (*first, *second)):
        raise SimulationError("qubit indices must be non-negative")
    needed = max([ancilla, *first, *second]) + 1
    total_qubits = max(total_qubits, needed)

    circuit = QuantumCircuit(total_qubits, 1, name=name)
    circuit.h(ancilla)
    for qubit_a, qubit_b in zip(first, second):
        circuit.cswap(ancilla, qubit_a, qubit_b)
    circuit.h(ancilla)
    circuit.measure(ancilla, 0)
    return circuit


def swap_test_fidelity_exact(state_a: Statevector, state_b: Statevector) -> float:
    """Run the SWAP test analytically and return the implied fidelity.

    Builds the joint ``ancilla ⊗ a ⊗ b`` state, evolves the SWAP-test circuit
    without shot noise, and inverts ``P(0)``.  Used by tests to confirm the
    circuit construction agrees with the closed-form fidelity.
    """
    if state_a.num_qubits != state_b.num_qubits:
        raise SimulationError("SWAP test requires equal-width states")
    width = state_a.num_qubits
    ancilla_state = Statevector(1)
    joint = ancilla_state.tensor(state_a).tensor(state_b)
    circuit = build_swap_test_circuit(width).remove_final_measurements()
    joint.evolve(circuit)
    p_zero = float(joint.probabilities([0])[0])
    return fidelity_from_swap_test_probability(p_zero)


def swap_test_fidelity_sampled(
    state_a: Statevector,
    state_b: Statevector,
    shots: int,
    rng=None,
) -> float:
    """Estimate the fidelity from ``shots`` samples of the SWAP-test ancilla."""
    if shots <= 0:
        raise SimulationError(f"shots must be positive, got {shots}")
    if state_a.num_qubits != state_b.num_qubits:
        raise SimulationError("SWAP test requires equal-width states")
    width = state_a.num_qubits
    joint = Statevector(1).tensor(state_a).tensor(state_b)
    circuit = build_swap_test_circuit(width).remove_final_measurements()
    joint.evolve(circuit)
    counts = joint.sample_counts(shots, qubits=[0], rng=rng)
    p_zero = counts.get("0", 0) / shots
    return fidelity_from_swap_test_probability(p_zero)
