"""Measurement-result containers and histogram utilities."""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional

import numpy as np

from repro import arrays
from repro.exceptions import SimulationError

#: Default seed used when :func:`counts_from_probabilities` is called without
#: an ``rng``.  Sampling used to fall back to a *seedless*
#: ``np.random.default_rng()`` — a silent OS-entropy draw that made
#: rng-less calls irreproducible (the REP001 contract violation the static
#: analyser now flags).  Callers on the library's hot paths always inject a
#: generator; this documented constant only covers ad-hoc interactive use,
#: which is now deterministic run over run.
DEFAULT_SAMPLING_SEED = 2022


@dataclasses.dataclass
class Counts:
    """Histogram of measurement outcomes.

    Keys are bit strings ordered with classical bit 0 as the leftmost
    character (matching the circuit's classical-register order).
    """

    data: Dict[str, int]

    def __post_init__(self) -> None:
        if not self.data:
            raise SimulationError("counts must contain at least one outcome")
        widths = {len(key) for key in self.data}
        if len(widths) != 1:
            raise SimulationError(f"inconsistent bit-string widths in counts: {widths}")
        if any(value < 0 for value in self.data.values()):
            raise SimulationError("counts must be non-negative")

    @property
    def shots(self) -> int:
        """Total number of shots."""
        return int(sum(self.data.values()))

    @property
    def num_bits(self) -> int:
        """Width of each outcome bit string."""
        return len(next(iter(self.data)))

    def probability(self, bitstring: str) -> float:
        """Empirical probability of ``bitstring``."""
        return self.data.get(bitstring, 0) / self.shots

    def probabilities(self) -> Dict[str, float]:
        """Empirical probabilities of every observed outcome."""
        total = self.shots
        return {key: value / total for key, value in self.data.items()}

    def marginal_probability(self, bit_index: int, value: int = 1) -> float:
        """Empirical probability that classical bit ``bit_index`` equals ``value``."""
        if bit_index < 0 or bit_index >= self.num_bits:
            raise SimulationError(
                f"bit index {bit_index} out of range for {self.num_bits}-bit outcomes"
            )
        matched = sum(
            count for key, count in self.data.items() if int(key[bit_index]) == value
        )
        return matched / self.shots

    def expectation_z(self, bit_index: int = 0) -> float:
        """Empirical <Z> of classical bit ``bit_index`` (+1 for 0, -1 for 1)."""
        p1 = self.marginal_probability(bit_index, 1)
        return 1.0 - 2.0 * p1

    def most_frequent(self) -> str:
        """The most frequent outcome (ties broken lexicographically)."""
        best = max(sorted(self.data), key=lambda key: self.data[key])
        return best

    def merged_with(self, other: "Counts") -> "Counts":
        """Combine two histograms (e.g. repeated jobs on the same circuit)."""
        if other.num_bits != self.num_bits:
            raise SimulationError("cannot merge counts with different bit widths")
        merged = dict(self.data)
        for key, value in other.data.items():
            merged[key] = merged.get(key, 0) + value
        return Counts(merged)

    def to_array(self) -> np.ndarray:
        """Dense probability vector over all ``2**num_bits`` outcomes."""
        size = 2**self.num_bits
        array = np.zeros(size)
        for key, value in self.data.items():
            array[int(key, 2)] = value
        return array / self.shots


def normalize_outcome_probabilities(probabilities: np.ndarray) -> np.ndarray:
    """Clip negatives and normalise outcome probabilities along the last axis.

    Shared by the per-circuit sampler (:func:`counts_from_probabilities`) and
    the batched sampler used by both simulator engines
    (``repro.quantum.simulator._sample_counts_batch``) so every path feeds
    *identical* probability vectors to the RNG — the draw-for-draw
    batched-vs-loop equivalence depends on this being a single code path.
    Rows whose total is zero or non-finite raise :class:`SimulationError`.
    """
    probs = np.clip(np.asarray(probabilities, dtype=float), 0.0, None)
    totals = probs.sum(axis=-1)
    if not np.all(np.isfinite(totals)) or np.any(totals <= 0.0):
        raise SimulationError(
            "cannot sample counts: probabilities are all zero or not finite"
        )
    return probs / totals[..., None]


def counts_from_probabilities(
    probabilities: Mapping[str, float] | np.ndarray,
    shots: int,
    rng: Optional[np.random.Generator] = None,
    num_bits: Optional[int] = None,
) -> Counts:
    """Sample a :class:`Counts` histogram from exact outcome probabilities.

    ``rng`` should be injected by the caller (every simulator/backend path
    does); when omitted, a generator seeded with the documented
    :data:`DEFAULT_SAMPLING_SEED` is used so results stay reproducible —
    never a fresh OS-entropy stream.
    """
    generator = (
        rng if rng is not None else np.random.default_rng(DEFAULT_SAMPLING_SEED)
    )
    if isinstance(probabilities, np.ndarray):
        probs = np.asarray(probabilities, dtype=float)
        if probs.size == 0:
            raise SimulationError("cannot sample counts from an empty probability vector")
        if num_bits is None:
            num_bits = int(np.round(np.log2(probs.size)))
        keys = [format(i, f"0{num_bits}b") for i in range(probs.size)]
    else:
        keys = list(probabilities.keys())
        if not keys:
            raise SimulationError("cannot sample counts from an empty probability mapping")
        probs = np.array([probabilities[key] for key in keys], dtype=float)
        if num_bits is None:
            num_bits = len(keys[0])
    probs = normalize_outcome_probabilities(probs)
    samples = arrays.multinomial(generator, shots, probs)
    data = {key: int(count) for key, count in zip(keys, samples) if count > 0}
    return Counts(data)


def exact_clbit_probabilities(
    probabilities: np.ndarray,
    measured_qubits,
    clbits,
    num_clbits: int,
) -> Dict[str, float]:
    """Re-index qubit-ordered probabilities into classical-bit-ordered strings.

    ``probabilities`` is the joint distribution over ``measured_qubits`` (in
    that qubit order); the result maps full classical-register bit strings
    (bit 0 leftmost) to probabilities, with zero-probability outcomes dropped
    exactly as the sampling helpers expect.  Shared by the per-circuit
    simulators, the vectorised batch paths, and the compiled
    :class:`~repro.quantum.program.SweepProgram` executor so every read-out
    path produces identical outcome dictionaries.
    """
    width = len(measured_qubits)
    out: Dict[str, float] = {}
    for index, prob in enumerate(probabilities):
        if prob <= 0.0:
            continue
        bits_by_qubit = format(index, f"0{width}b")
        clbit_string = ["0"] * num_clbits
        for position, clbit in enumerate(clbits):
            clbit_string[clbit] = bits_by_qubit[position]
        key = "".join(clbit_string)
        out[key] = out.get(key, 0.0) + float(prob)
    return out
