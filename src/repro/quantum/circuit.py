"""Quantum circuit intermediate representation.

A :class:`QuantumCircuit` is an ordered list of :class:`Instruction` objects
over a fixed number of qubits and classical bits.  It supports symbolic
parameters, parameter binding, composition, qubit remapping, and inversion —
everything the QuClassi builder, the transpiler, and the simulators need.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import CircuitError
from repro.quantum.operations import Instruction, Parameter, ParamValue, ScaledParameter
from repro.quantum.register import ClassicalRegister, QuantumRegister


class QuantumCircuit:
    """An ordered sequence of quantum instructions.

    Parameters
    ----------
    num_qubits:
        Width of the circuit.  May also be one or more
        :class:`QuantumRegister` objects.
    num_clbits:
        Number of classical bits (or :class:`ClassicalRegister` objects).
    name:
        Optional circuit name used in reprs and backend job metadata.

    Examples
    --------
    >>> qc = QuantumCircuit(2)
    >>> qc.h(0)
    >>> qc.cx(0, 1)
    >>> qc.depth()
    2
    """

    def __init__(
        self,
        num_qubits: Union[int, QuantumRegister, Sequence[QuantumRegister]],
        num_clbits: Union[int, ClassicalRegister, Sequence[ClassicalRegister]] = 0,
        name: str = "circuit",
    ) -> None:
        self.name = name
        self.qregs: List[QuantumRegister] = []
        self.cregs: List[ClassicalRegister] = []
        self._instructions: List[Instruction] = []

        if isinstance(num_qubits, QuantumRegister):
            qregs: Sequence[QuantumRegister] = [num_qubits]
        elif isinstance(num_qubits, (int, np.integer)):
            if num_qubits <= 0:
                raise CircuitError(f"circuit must have at least one qubit, got {num_qubits}")
            qregs = [QuantumRegister(int(num_qubits), "q")]
        else:
            qregs = list(num_qubits)
        offset = 0
        for reg in qregs:
            self.qregs.append(reg.shifted(offset))
            offset += reg.size
        self._num_qubits = offset

        if isinstance(num_clbits, ClassicalRegister):
            cregs: Sequence[ClassicalRegister] = [num_clbits]
        elif isinstance(num_clbits, (int, np.integer)):
            cregs = [ClassicalRegister(int(num_clbits), "c")] if num_clbits else []
        else:
            cregs = list(num_clbits)
        offset = 0
        for reg in cregs:
            self.cregs.append(reg.shifted(offset))
            offset += reg.size
        self._num_clbits = offset

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    @property
    def num_clbits(self) -> int:
        """Number of classical bits."""
        return self._num_clbits

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """The instruction sequence (read-only view)."""
        return tuple(self._instructions)

    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        """Distinct symbolic parameters in first-appearance order."""
        seen: Dict[Parameter, None] = {}
        for inst in self._instructions:
            for param in inst.free_parameters:
                seen.setdefault(param, None)
        return tuple(seen.keys())

    @property
    def num_parameters(self) -> int:
        """Number of distinct symbolic parameters."""
        return len(self.parameters)

    def __len__(self) -> int:
        return len(self._instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"clbits={self.num_clbits}, instructions={len(self)})"
        )

    # ------------------------------------------------------------------ #
    # Instruction appending
    # ------------------------------------------------------------------ #
    def append(self, instruction: Instruction) -> "QuantumCircuit":
        """Append an instruction, validating qubit/clbit bounds."""
        for q in instruction.qubits:
            if q < 0 or q >= self.num_qubits:
                raise CircuitError(
                    f"instruction '{instruction.name}' references qubit {q} but the "
                    f"circuit has {self.num_qubits} qubits"
                )
        for c in instruction.clbits:
            if c < 0 or c >= self.num_clbits:
                raise CircuitError(
                    f"instruction '{instruction.name}' references classical bit {c} but "
                    f"the circuit has {self.num_clbits} classical bits"
                )
        self._instructions.append(instruction)
        return self

    def _gate(self, name: str, qubits: Sequence[int], *params: ParamValue, label: Optional[str] = None) -> "QuantumCircuit":
        return self.append(Instruction(name=name, qubits=tuple(qubits), params=tuple(params), label=label))

    # Single-qubit gates -------------------------------------------------
    def i(self, qubit: int) -> "QuantumCircuit":
        """Identity gate."""
        return self._gate("id", (qubit,))

    def x(self, qubit: int) -> "QuantumCircuit":
        """Pauli-X gate."""
        return self._gate("x", (qubit,))

    def y(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Y gate."""
        return self._gate("y", (qubit,))

    def z(self, qubit: int) -> "QuantumCircuit":
        """Pauli-Z gate."""
        return self._gate("z", (qubit,))

    def h(self, qubit: int) -> "QuantumCircuit":
        """Hadamard gate."""
        return self._gate("h", (qubit,))

    def s(self, qubit: int) -> "QuantumCircuit":
        """S (phase) gate."""
        return self._gate("s", (qubit,))

    def t(self, qubit: int) -> "QuantumCircuit":
        """T gate."""
        return self._gate("t", (qubit,))

    def rx(self, theta: ParamValue, qubit: int, label: Optional[str] = None) -> "QuantumCircuit":
        """X-axis rotation."""
        return self._gate("rx", (qubit,), theta, label=label)

    def ry(self, theta: ParamValue, qubit: int, label: Optional[str] = None) -> "QuantumCircuit":
        """Y-axis rotation."""
        return self._gate("ry", (qubit,), theta, label=label)

    def rz(self, theta: ParamValue, qubit: int, label: Optional[str] = None) -> "QuantumCircuit":
        """Z-axis rotation."""
        return self._gate("rz", (qubit,), theta, label=label)

    def r(self, theta: ParamValue, phi: ParamValue, qubit: int) -> "QuantumCircuit":
        """General single-qubit rotation R(theta, phi)."""
        return self._gate("r", (qubit,), theta, phi)

    def u3(self, theta: ParamValue, phi: ParamValue, lam: ParamValue, qubit: int) -> "QuantumCircuit":
        """Generic single-qubit unitary."""
        return self._gate("u3", (qubit,), theta, phi, lam)

    # Two-qubit gates ----------------------------------------------------
    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-X (CNOT)."""
        return self._gate("cx", (control, target))

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Z."""
        return self._gate("cz", (control, target))

    def swap(self, qubit1: int, qubit2: int) -> "QuantumCircuit":
        """SWAP gate."""
        return self._gate("swap", (qubit1, qubit2))

    def rxx(self, theta: ParamValue, qubit1: int, qubit2: int) -> "QuantumCircuit":
        """XX rotation."""
        return self._gate("rxx", (qubit1, qubit2), theta)

    def ryy(self, theta: ParamValue, qubit1: int, qubit2: int) -> "QuantumCircuit":
        """YY rotation."""
        return self._gate("ryy", (qubit1, qubit2), theta)

    def rzz(self, theta: ParamValue, qubit1: int, qubit2: int) -> "QuantumCircuit":
        """ZZ rotation."""
        return self._gate("rzz", (qubit1, qubit2), theta)

    def crx(self, theta: ParamValue, control: int, target: int, label: Optional[str] = None) -> "QuantumCircuit":
        """Controlled-RX."""
        return self._gate("crx", (control, target), theta, label=label)

    def cry(self, theta: ParamValue, control: int, target: int, label: Optional[str] = None) -> "QuantumCircuit":
        """Controlled-RY (entanglement-layer gate)."""
        return self._gate("cry", (control, target), theta, label=label)

    def crz(self, theta: ParamValue, control: int, target: int, label: Optional[str] = None) -> "QuantumCircuit":
        """Controlled-RZ (entanglement-layer gate)."""
        return self._gate("crz", (control, target), theta, label=label)

    # Three-qubit gates --------------------------------------------------
    def cswap(self, control: int, target1: int, target2: int) -> "QuantumCircuit":
        """Controlled-SWAP (Fredkin) gate — the SWAP-test primitive."""
        return self._gate("cswap", (control, target1, target2))

    # Non-unitary directives ---------------------------------------------
    def measure(self, qubit: int, clbit: int) -> "QuantumCircuit":
        """Measure ``qubit`` in the Z basis into classical bit ``clbit``."""
        return self.append(Instruction(name="measure", qubits=(qubit,), clbits=(clbit,)))

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit into the classical bit with the same index."""
        if self.num_clbits < self.num_qubits:
            raise CircuitError(
                "measure_all requires at least as many classical bits as qubits"
            )
        for q in range(self.num_qubits):
            self.measure(q, q)
        return self

    def reset(self, qubit: int) -> "QuantumCircuit":
        """Reset ``qubit`` to |0>."""
        return self.append(Instruction(name="reset", qubits=(qubit,)))

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        """Insert a barrier (prevents the transpiler from fusing across it)."""
        targets = qubits if qubits else tuple(range(self.num_qubits))
        return self.append(Instruction(name="barrier", qubits=targets))

    # ------------------------------------------------------------------ #
    # Structural operations
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Return an independent copy of the circuit.

        Instructions are immutable (frozen dataclasses), so only the
        instruction list itself needs copying — this keeps the many
        ``bind_parameters`` calls made per training step cheap.
        """
        duplicate = QuantumCircuit.__new__(QuantumCircuit)
        duplicate.name = name if name is not None else self.name
        duplicate.qregs = list(self.qregs)
        duplicate.cregs = list(self.cregs)
        duplicate._num_qubits = self._num_qubits
        duplicate._num_clbits = self._num_clbits
        duplicate._instructions = list(self._instructions)
        return duplicate

    def bind_parameters(self, binding: Dict[Parameter, float]) -> "QuantumCircuit":
        """Return a copy with symbolic parameters substituted.

        Parameters missing from ``binding`` remain symbolic, enabling the
        two-stage binding used by QuClassi (data angles first, trainable
        angles at evaluation time).
        """
        bound = self.copy()
        bound._instructions = [inst.bind(binding) for inst in self._instructions]
        return bound

    def assign_parameters(self, values: Union[Dict[Parameter, float], Sequence[float]]) -> "QuantumCircuit":
        """Bind parameters from a dict or a flat sequence.

        A sequence is matched against :attr:`parameters` in order.
        """
        if isinstance(values, dict):
            return self.bind_parameters(values)
        params = self.parameters
        values = list(values)
        if len(values) != len(params):
            raise CircuitError(
                f"expected {len(params)} parameter values, got {len(values)}"
            )
        return self.bind_parameters(dict(zip(params, map(float, values))))

    def compose(self, other: "QuantumCircuit", qubits: Optional[Sequence[int]] = None) -> "QuantumCircuit":
        """Return a new circuit with ``other`` appended.

        Parameters
        ----------
        other:
            Circuit to append.
        qubits:
            Global qubit indices that ``other``'s qubits map onto.  Defaults
            to the identity mapping (``other`` must then be no wider than
            ``self``).
        """
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if len(qubits) != other.num_qubits:
            raise CircuitError(
                f"mapping must list {other.num_qubits} qubits, got {len(qubits)}"
            )
        if any(q < 0 or q >= self.num_qubits for q in qubits):
            raise CircuitError("composition mapping references qubits outside the circuit")
        mapping = {local: int(q) for local, q in enumerate(qubits)}
        combined = self.copy()
        for inst in other.instructions:
            combined.append(inst.remap(mapping))
        return combined

    def inverse(self) -> "QuantumCircuit":
        """Return the inverse circuit (gates reversed and conjugated).

        Only defined for circuits made of fully bound unitary gates.
        """
        inverse_names = {
            "id": ("id", 1), "x": ("x", 1), "y": ("y", 1), "z": ("z", 1), "h": ("h", 1),
            "cx": ("cx", 1), "cz": ("cz", 1), "swap": ("swap", 1), "cswap": ("cswap", 1),
            "rx": ("rx", -1), "ry": ("ry", -1), "rz": ("rz", -1),
            "rxx": ("rxx", -1), "ryy": ("ryy", -1), "rzz": ("rzz", -1),
            "crx": ("crx", -1), "cry": ("cry", -1), "crz": ("crz", -1),
        }
        inverted = QuantumCircuit(self.num_qubits, self.num_clbits, name=f"{self.name}_dg")
        for inst in reversed(self._instructions):
            if inst.name == "barrier":
                inverted.append(inst)
                continue
            if not inst.is_gate:
                raise CircuitError(f"cannot invert non-unitary instruction '{inst.name}'")
            if inst.is_parameterized:
                raise CircuitError("cannot invert a circuit with unbound parameters")
            if inst.name in ("s", "t", "r", "u3"):
                # Fall back to the generic adjoint via u3 decomposition is not
                # needed for the library; these gates never appear in trained
                # circuits, so refuse explicitly.
                raise CircuitError(f"inverse of gate '{inst.name}' is not supported")
            name, sign = inverse_names[inst.name]
            params = tuple(sign * float(p) for p in inst.params)
            inverted.append(Instruction(name=name, qubits=inst.qubits, params=params, label=inst.label))
        return inverted

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #
    def depth(self) -> int:
        """Circuit depth: longest chain of instructions per qubit (barriers excluded)."""
        frontier = [0] * max(self.num_qubits, 1)
        for inst in self._instructions:
            if inst.name == "barrier":
                continue
            level = max(frontier[q] for q in inst.qubits) + 1
            for q in inst.qubits:
                frontier[q] = level
        return max(frontier) if frontier else 0

    def count_ops(self) -> Dict[str, int]:
        """Histogram of instruction names."""
        counts: Dict[str, int] = {}
        for inst in self._instructions:
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return counts

    def size(self) -> int:
        """Total number of non-barrier instructions."""
        return sum(1 for inst in self._instructions if inst.name != "barrier")

    def two_qubit_gate_count(self) -> int:
        """Number of gates acting on two or more qubits (routing cost proxy)."""
        return sum(
            1
            for inst in self._instructions
            if inst.is_gate and inst.num_qubits >= 2
        )

    def measured_qubits(self) -> Tuple[int, ...]:
        """Qubits that are measured, in order of first measurement."""
        seen: Dict[int, None] = {}
        for inst in self._instructions:
            if inst.is_measurement:
                for q in inst.qubits:
                    seen.setdefault(q, None)
        return tuple(seen.keys())

    def has_measurements(self) -> bool:
        """Whether the circuit contains any measurement."""
        return any(inst.is_measurement for inst in self._instructions)

    def remove_final_measurements(self) -> "QuantumCircuit":
        """Return a copy with all measurement instructions removed."""
        stripped = self.copy()
        stripped._instructions = [i for i in self._instructions if not i.is_measurement]
        return stripped

    def to_text_diagram(self) -> str:
        """Render a compact one-line-per-instruction text diagram.

        Intended for debugging and documentation, mirroring Fig. 7's sample
        circuit layout in textual form.
        """
        lines = [f"{self.name}: {self.num_qubits} qubits, {self.num_clbits} clbits"]
        for idx, inst in enumerate(self._instructions):
            params = ", ".join(
                p.name
                if isinstance(p, Parameter)
                else f"{p.coefficient:g}*{p.parameter.name}"
                if isinstance(p, ScaledParameter)
                else f"{float(p):.4f}"
                for p in inst.params
            )
            params_str = f"({params})" if params else ""
            target = ", ".join(f"q{q}" for q in inst.qubits)
            if inst.clbits:
                target += " -> " + ", ".join(f"c{c}" for c in inst.clbits)
            label = f"  [{inst.label}]" if inst.label else ""
            lines.append(f"  {idx:3d}: {inst.name}{params_str} {target}{label}")
        return "\n".join(lines)
