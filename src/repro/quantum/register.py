"""Quantum and classical registers.

Registers are lightweight named index ranges.  The QuClassi circuit builder
uses three quantum registers — the ancilla/control qubit, the trained-state
qubits and the data qubits — plus one classical bit for the SWAP-test
measurement.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Tuple

from repro.exceptions import CircuitError


@dataclasses.dataclass(frozen=True)
class QuantumRegister:
    """A contiguous block of qubits with a name.

    Attributes
    ----------
    size:
        Number of qubits in the register.
    name:
        Human-readable register name.
    offset:
        Global index of the register's first qubit; assigned when the
        register is added to a circuit.
    """

    size: int
    name: str = "q"
    offset: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise CircuitError(f"register '{self.name}' must have positive size, got {self.size}")
        if self.offset < 0:
            raise CircuitError(f"register '{self.name}' offset must be non-negative")

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.offset, self.offset + self.size))

    def __getitem__(self, index: int) -> int:
        """Return the global qubit index of the ``index``-th qubit."""
        if isinstance(index, slice):
            return tuple(range(self.offset, self.offset + self.size))[index]
        if index < -self.size or index >= self.size:
            raise CircuitError(
                f"register '{self.name}' has {self.size} qubits, index {index} is out of range"
            )
        return self.offset + (index % self.size)

    @property
    def indices(self) -> Tuple[int, ...]:
        """Global indices of every qubit in the register."""
        return tuple(range(self.offset, self.offset + self.size))

    def shifted(self, offset: int) -> "QuantumRegister":
        """Return a copy of the register anchored at ``offset``."""
        return dataclasses.replace(self, offset=offset)


@dataclasses.dataclass(frozen=True)
class ClassicalRegister:
    """A contiguous block of classical bits with a name."""

    size: int
    name: str = "c"
    offset: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise CircuitError(f"register '{self.name}' must have positive size, got {self.size}")
        if self.offset < 0:
            raise CircuitError(f"register '{self.name}' offset must be non-negative")

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.offset, self.offset + self.size))

    def __getitem__(self, index: int) -> int:
        """Return the global classical-bit index of the ``index``-th bit."""
        if index < -self.size or index >= self.size:
            raise CircuitError(
                f"register '{self.name}' has {self.size} bits, index {index} is out of range"
            )
        return self.offset + (index % self.size)

    @property
    def indices(self) -> Tuple[int, ...]:
        """Global indices of every bit in the register."""
        return tuple(range(self.offset, self.offset + self.size))

    def shifted(self, offset: int) -> "ClassicalRegister":
        """Return a copy of the register anchored at ``offset``."""
        return dataclasses.replace(self, offset=offset)
