"""Device qubit-connectivity topologies.

Superconducting devices (IBM-Q) only support two-qubit gates between
physically coupled qubits; trapped-ion devices (IonQ) are all-to-all.  The
paper attributes the accuracy gap between IonQ and IBM-Q Cairo on the (3, 6)
task to exactly this difference — Cairo needs 21 routed CNOTs where IonQ
needs none — so the topology model and the router built on top of it are a
first-class substrate here.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import TranspilerError


@dataclasses.dataclass(frozen=True)
class CouplingMap:
    """Undirected qubit-connectivity graph.

    Attributes
    ----------
    num_qubits:
        Number of physical qubits.
    edges:
        Undirected coupled pairs.  An empty tuple with
        ``fully_connected=True`` denotes all-to-all connectivity.
    fully_connected:
        Shortcut flag for trapped-ion style devices.
    """

    num_qubits: int
    edges: Tuple[Tuple[int, int], ...] = ()
    fully_connected: bool = False

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise TranspilerError(f"coupling map needs at least one qubit, got {self.num_qubits}")
        normalized = []
        for a, b in self.edges:
            a, b = int(a), int(b)
            if a == b:
                raise TranspilerError(f"self-coupling ({a}, {b}) is not allowed")
            if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
                raise TranspilerError(f"edge ({a}, {b}) references qubits outside the device")
            normalized.append((min(a, b), max(a, b)))
        object.__setattr__(self, "edges", tuple(sorted(set(normalized))))

    # ------------------------------------------------------------------ #
    # Graph views
    # ------------------------------------------------------------------ #
    def graph(self) -> nx.Graph:
        """The connectivity graph as a :class:`networkx.Graph`."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qubits))
        if self.fully_connected:
            graph.add_edges_from(
                (a, b) for a in range(self.num_qubits) for b in range(a + 1, self.num_qubits)
            )
        else:
            graph.add_edges_from(self.edges)
        return graph

    def are_coupled(self, qubit_a: int, qubit_b: int) -> bool:
        """Whether a two-qubit gate can act directly on the pair."""
        if self.fully_connected:
            return qubit_a != qubit_b
        pair = (min(qubit_a, qubit_b), max(qubit_a, qubit_b))
        return pair in self.edges

    def neighbors(self, qubit: int) -> Tuple[int, ...]:
        """Physically coupled neighbours of ``qubit``."""
        if self.fully_connected:
            return tuple(q for q in range(self.num_qubits) if q != qubit)
        out = []
        for a, b in self.edges:
            if a == qubit:
                out.append(b)
            elif b == qubit:
                out.append(a)
        return tuple(sorted(out))

    def shortest_path(self, qubit_a: int, qubit_b: int) -> List[int]:
        """Shortest physical path between two qubits (inclusive of endpoints)."""
        if self.fully_connected or self.are_coupled(qubit_a, qubit_b):
            return [qubit_a, qubit_b]
        graph = self.graph()
        try:
            return list(nx.shortest_path(graph, qubit_a, qubit_b))
        except nx.NetworkXNoPath as exc:
            raise TranspilerError(
                f"qubits {qubit_a} and {qubit_b} are not connected on this device"
            ) from exc

    def distance(self, qubit_a: int, qubit_b: int) -> int:
        """Number of edges on the shortest path between two qubits."""
        return len(self.shortest_path(qubit_a, qubit_b)) - 1

    def is_connected(self) -> bool:
        """Whether every qubit can reach every other qubit."""
        return nx.is_connected(self.graph()) if self.num_qubits > 1 else True

    def induced_subgraph(self, nodes: Sequence[int]) -> "CouplingMap":
        """Coupling map induced on ``nodes``, relabelled to ``0..len(nodes)-1``.

        Used by device backends to place a small circuit on a large chip
        without simulating every physical qubit.
        """
        nodes = [int(n) for n in nodes]
        if len(set(nodes)) != len(nodes):
            raise TranspilerError(f"subgraph nodes must be distinct, got {nodes}")
        for node in nodes:
            if node < 0 or node >= self.num_qubits:
                raise TranspilerError(f"node {node} is outside the device")
        if self.fully_connected:
            return CouplingMap.all_to_all(len(nodes))
        relabel = {node: index for index, node in enumerate(nodes)}
        edges = tuple(
            (relabel[a], relabel[b]) for a, b in self.edges if a in relabel and b in relabel
        )
        return CouplingMap(num_qubits=len(nodes), edges=edges)

    def select_connected_region(self, size: int) -> List[int]:
        """Pick ``size`` physically connected qubits (breadth-first from a hub).

        Provides the simple layout-selection pass the simulated hardware
        backends use before routing: start from the best-connected qubit and
        grow a breadth-first region, which keeps the induced subgraph
        connected so routing always succeeds.
        """
        if size <= 0 or size > self.num_qubits:
            raise TranspilerError(
                f"cannot select {size} qubits from a {self.num_qubits}-qubit device"
            )
        if self.fully_connected:
            return list(range(size))
        graph = self.graph()
        start = max(graph.nodes, key=lambda node: graph.degree[node])
        order = [start]
        seen = {start}
        frontier = [start]
        while frontier and len(order) < size:
            next_frontier = []
            for node in frontier:
                for neighbour in sorted(graph.neighbors(node)):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        order.append(neighbour)
                        next_frontier.append(neighbour)
                        if len(order) == size:
                            return order
            frontier = next_frontier
        if len(order) < size:
            raise TranspilerError(
                f"device graph is too fragmented to host {size} connected qubits"
            )
        return order

    # ------------------------------------------------------------------ #
    # Factories
    # ------------------------------------------------------------------ #
    @classmethod
    def all_to_all(cls, num_qubits: int) -> "CouplingMap":
        """Fully connected device (trapped-ion style)."""
        return cls(num_qubits=num_qubits, fully_connected=True)

    @classmethod
    def linear(cls, num_qubits: int) -> "CouplingMap":
        """Linear chain 0-1-2-...-(n-1)."""
        edges = tuple((i, i + 1) for i in range(num_qubits - 1))
        return cls(num_qubits=num_qubits, edges=edges)

    @classmethod
    def ring(cls, num_qubits: int) -> "CouplingMap":
        """Ring topology."""
        edges = tuple((i, (i + 1) % num_qubits) for i in range(num_qubits))
        return cls(num_qubits=num_qubits, edges=edges)

    @classmethod
    def grid(cls, rows: int, cols: int) -> "CouplingMap":
        """Rectangular grid topology."""
        edges = []
        for r in range(rows):
            for c in range(cols):
                index = r * cols + c
                if c + 1 < cols:
                    edges.append((index, index + 1))
                if r + 1 < rows:
                    edges.append((index, index + cols))
        return cls(num_qubits=rows * cols, edges=tuple(edges))

    @classmethod
    def ibmq_5q_t(cls) -> "CouplingMap":
        """IBM 5-qubit 'T'-shaped topology (ibmq_london / rome family).

        Layout::

            0 - 1 - 2
                |
                3
                |
                4
        """
        return cls(num_qubits=5, edges=((0, 1), (1, 2), (1, 3), (3, 4)))

    @classmethod
    def ibmq_5q_bowtie(cls) -> "CouplingMap":
        """IBM 5-qubit 'bow-tie' topology (ibmqx4 family)."""
        return cls(num_qubits=5, edges=((0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)))

    @classmethod
    def ibmq_melbourne_like(cls, num_qubits: int = 15) -> "CouplingMap":
        """Ladder topology approximating ibmq_16_melbourne."""
        half = num_qubits // 2
        edges = []
        for i in range(half - 1):
            edges.append((i, i + 1))
            edges.append((half + i, half + i + 1))
        for i in range(half):
            if half + i < num_qubits:
                edges.append((i, half + i))
        if num_qubits % 2:
            edges.append((num_qubits - 2, num_qubits - 1))
        return cls(num_qubits=num_qubits, edges=tuple(edges))

    @classmethod
    def ibmq_falcon_27q(cls) -> "CouplingMap":
        """Heavy-hexagon-like 27-qubit topology approximating ibmq_cairo."""
        edges = (
            (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8),
            (6, 7), (7, 10), (8, 9), (8, 11), (10, 12), (11, 14),
            (12, 13), (12, 15), (13, 14), (14, 16), (15, 18), (16, 19),
            (17, 18), (18, 21), (19, 20), (19, 22), (21, 23), (22, 25),
            (23, 24), (24, 25), (25, 26), (9, 26) ,
        )
        return cls(num_qubits=27, edges=edges)
