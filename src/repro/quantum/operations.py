"""Circuit instructions.

An :class:`Instruction` is a named operation bound to concrete qubit indices
and (for parameterised gates) either concrete float parameters or symbolic
:class:`Parameter` placeholders.  Symbolic parameters are what QuClassi's
trainer differentiates: the trained-state rotations carry named parameters
while the data-encoding rotations are bound per sample.

:class:`ScaledParameter` is the one derived symbolic form the library needs:
a fixed scalar multiple of a parameter (``theta / 2``, ``-phi``, ...).  The
transpiler's basis decompositions only ever rescale source angles, so with
this single arithmetic node a circuit can be transpiled *once* with free
parameters and then re-bound per sweep element — the mechanism behind the
structure-keyed transpile cache in :mod:`repro.quantum.transpiler`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import CircuitError
from repro.quantum import gates


@dataclasses.dataclass(frozen=True)
class Parameter:
    """A named symbolic circuit parameter.

    Parameters are hashable and compared by name, which lets a circuit carry
    the same parameter in several places (the dual-qubit layer applies an
    identical rotation to both qubits of a pair).
    """

    name: str

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Parameter({self.name!r})"


@dataclasses.dataclass(frozen=True)
class ScaledParameter:
    """A fixed scalar multiple of a symbolic parameter: ``coefficient * parameter``.

    This is the only symbolic arithmetic the library supports, and the only
    one it needs: every basis decomposition in the transpiler rewrites
    rotation angles as scalar multiples of the source angle (``theta / 2`` in
    the CRY expansion, ``-phi`` in the R-gate expansion, ...).  Binding a
    :class:`ScaledParameter` evaluates ``coefficient * value``.
    """

    parameter: Parameter
    coefficient: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "coefficient", float(self.coefficient))

    def scaled(self, factor: float) -> "ScaledParameter":
        """Return this expression multiplied by a further scalar factor."""
        return ScaledParameter(self.parameter, self.coefficient * float(factor))

    def evaluate(self, value: float) -> float:
        """Evaluate the expression at a concrete parameter value."""
        return self.coefficient * float(value)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ScaledParameter({self.coefficient!r} * {self.parameter.name!r})"


ParamValue = Union[float, Parameter, ScaledParameter]


@dataclasses.dataclass(frozen=True)
class Instruction:
    """A single operation in a circuit.

    Attributes
    ----------
    name:
        Gate name (see :data:`repro.quantum.gates.GATE_SIGNATURES`) or one of
        the non-unitary directives ``"measure"``, ``"reset"``, ``"barrier"``.
    qubits:
        Target qubit indices, control(s) first for controlled gates.
    params:
        Gate parameters; floats or :class:`Parameter` placeholders.
    clbits:
        Classical bit indices written by ``measure``.
    label:
        Optional human-readable annotation (used by the QuClassi circuit
        builder to tag the trained-state vs. data-loading sections).
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[ParamValue, ...] = ()
    clbits: Tuple[int, ...] = ()
    label: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "clbits", tuple(int(c) for c in self.clbits))
        object.__setattr__(self, "params", tuple(self.params))
        if self.name in gates.GATE_SIGNATURES:
            expected_qubits, expected_params = gates.GATE_SIGNATURES[self.name]
            if len(self.qubits) != expected_qubits:
                raise CircuitError(
                    f"gate '{self.name}' acts on {expected_qubits} qubit(s), "
                    f"got {len(self.qubits)}"
                )
            if len(self.params) != expected_params:
                raise CircuitError(
                    f"gate '{self.name}' expects {expected_params} parameter(s), "
                    f"got {len(self.params)}"
                )
        elif self.name == "measure":
            if len(self.qubits) != len(self.clbits):
                raise CircuitError("measure requires one classical bit per qubit")
        elif self.name in ("reset", "barrier"):
            pass
        else:
            raise CircuitError(f"unknown instruction '{self.name}'")
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate qubits in instruction '{self.name}': {self.qubits}")

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def is_gate(self) -> bool:
        """Whether the instruction is a unitary gate."""
        return self.name in gates.GATE_SIGNATURES

    @property
    def is_measurement(self) -> bool:
        """Whether the instruction is a measurement."""
        return self.name == "measure"

    @property
    def is_parameterized(self) -> bool:
        """Whether any parameter is still symbolic (memoised — the instance
        is frozen, so the answer never changes)."""
        cached = self.__dict__.get("_parameterized")
        if cached is None:
            cached = any(isinstance(p, (Parameter, ScaledParameter)) for p in self.params)
            object.__setattr__(self, "_parameterized", cached)
        return cached

    @property
    def free_parameters(self) -> Tuple[Parameter, ...]:
        """Symbolic parameters appearing in this instruction, in order.

        Scaled parameters contribute their underlying :class:`Parameter`.
        """
        out = []
        for p in self.params:
            if isinstance(p, Parameter):
                out.append(p)
            elif isinstance(p, ScaledParameter):
                out.append(p.parameter)
        return tuple(out)

    @property
    def num_qubits(self) -> int:
        """Number of qubits the instruction acts on."""
        return len(self.qubits)

    # ------------------------------------------------------------------ #
    # Binding and matrices
    # ------------------------------------------------------------------ #
    def bind(self, binding: Dict[Parameter, float]) -> "Instruction":
        """Return a copy with symbolic parameters replaced by values.

        Parameters not present in ``binding`` are left symbolic so partial
        binding (e.g. bind data angles but keep trainable angles) works.
        """
        if not self.is_parameterized:
            return self

        def substitute(p: ParamValue) -> ParamValue:
            if isinstance(p, Parameter) and p in binding:
                return float(binding[p])
            if isinstance(p, ScaledParameter) and p.parameter in binding:
                return p.evaluate(binding[p.parameter])
            return p

        return self.replace_params(tuple(substitute(p) for p in self.params))

    def replace_params(self, params: Tuple[ParamValue, ...]) -> "Instruction":
        """Copy with ``params`` swapped in, skipping dataclass re-validation.

        Binding substitutes parameters one-for-one, so the qubit/clbit layout
        and the parameter count are unchanged and every ``__post_init__``
        check would re-pass.  Skipping them matters on the sweep hot path,
        where thousands of re-binds run per gradient evaluation.  The one
        invariant a caller could break — the parameter count — is still
        enforced.
        """
        params = tuple(params)
        if len(params) != len(self.params):
            raise CircuitError(
                f"replace_params must preserve the parameter count of "
                f"'{self.name}' ({len(self.params)}), got {len(params)}"
            )
        clone = object.__new__(Instruction)
        # Copy the whole instance dict so future Instruction fields survive,
        # then swap the params and drop the memoised symbolic flag (it
        # depends on the params being replaced).
        clone.__dict__.update(self.__dict__)
        clone.__dict__["params"] = params
        clone.__dict__.pop("_parameterized", None)
        return clone

    def matrix(self) -> np.ndarray:
        """Return the unitary matrix of a fully bound gate.

        Raises
        ------
        CircuitError
            If the instruction is not a gate or still has symbolic parameters.
        """
        if not self.is_gate:
            raise CircuitError(f"instruction '{self.name}' has no unitary matrix")
        if self.is_parameterized:
            unbound = [p.name for p in self.free_parameters]
            raise CircuitError(
                f"cannot build matrix for '{self.name}' with unbound parameters {unbound}"
            )
        return gates.gate_matrix(self.name, *[float(p) for p in self.params])

    def remap(self, mapping: Dict[int, int]) -> "Instruction":
        """Return a copy with qubit indices translated through ``mapping``."""
        new_qubits = tuple(mapping[q] for q in self.qubits)
        return dataclasses.replace(self, qubits=new_qubits)


def gate(name: str, qubits: Sequence[int], *params: ParamValue, label: Optional[str] = None) -> Instruction:
    """Convenience constructor for a gate instruction."""
    return Instruction(name=name, qubits=tuple(qubits), params=tuple(params), label=label)


def measure(qubit: int, clbit: int) -> Instruction:
    """Convenience constructor for a single-qubit measurement."""
    return Instruction(name="measure", qubits=(qubit,), clbits=(clbit,))


def reset(qubit: int) -> Instruction:
    """Convenience constructor for a reset-to-|0> directive."""
    return Instruction(name="reset", qubits=(qubit,))


def barrier(qubits: Sequence[int]) -> Instruction:
    """Convenience constructor for a barrier (no-op marker for the transpiler)."""
    return Instruction(name="barrier", qubits=tuple(qubits))
