"""Circuit transpilation: basis decomposition and SWAP routing.

Two passes are provided:

* :func:`decompose_to_basis` rewrites every gate into the native basis set
  ``{rx, ry, rz, h, cx}`` (plus measurements/resets/barriers).  CSWAP — the
  SWAP-test workhorse — expands into a CNOT-conjugated Toffoli which itself
  expands into six CNOTs, matching how real providers compile it.
* :func:`route_circuit` inserts SWAP chains (each SWAP = three CNOTs) so that
  every two-qubit gate acts on physically coupled qubits of a
  :class:`~repro.quantum.topology.CouplingMap`.

:func:`transpile` chains both passes and reports routing statistics — this is
what reproduces the paper's observation that IBM-Q Cairo needs ~21 extra
CNOTs for the (3, 6) classifier while the fully connected IonQ needs none.

Both passes accept *symbolic* rotation angles: every decomposition rewrites
angles as scalar multiples of the source angle, which
:class:`~repro.quantum.operations.ScaledParameter` represents exactly, and
routing never looks at parameter values at all.  :class:`TranspileCache`
exploits this to transpile each circuit *structure* once — subsequent circuits
with the same gate skeleton but different angles only pay a parameter
re-binding, which is what makes repeated SWAP-test sweeps on the noisy
backends cheap.  Each cached template additionally carries a compiled
:class:`~repro.quantum.program.SweepProgram` (built lazily on first sweep
use): the backends' program-sweep path executes whole sweeps straight from
the cache — slot values in, tiled read-outs out — without materialising one
bound circuit per sweep element.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import TranspilerError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.operations import Instruction, Parameter, ParamValue, ScaledParameter
from repro.quantum.topology import CouplingMap
from repro.utils.cache import LRUCache

#: Gates the simulated hardware executes natively.
BASIS_GATES = ("rx", "ry", "rz", "h", "cx", "id", "x", "z")

_HALF_PI = math.pi / 2


def _scale(param: ParamValue, factor: float) -> ParamValue:
    """``factor * param`` for concrete or symbolic parameters.

    Floats multiply directly; a :class:`Parameter` becomes a
    :class:`ScaledParameter` (or passes through unchanged when the factor is
    one); an existing :class:`ScaledParameter` folds the factor into its
    coefficient.  This is the only arithmetic the decompositions need.
    """
    if isinstance(param, Parameter):
        return param if factor == 1.0 else ScaledParameter(param, factor)
    if isinstance(param, ScaledParameter):
        return param if factor == 1.0 else param.scaled(factor)
    return float(param) * factor


def _decompose_instruction(instruction: Instruction) -> List[Instruction]:
    """Rewrite one instruction into the native basis."""
    name = instruction.name
    qubits = instruction.qubits

    if name in BASIS_GATES or name in ("measure", "reset", "barrier"):
        return [instruction]

    def gate(gname: str, gqubits: Tuple[int, ...], *params: ParamValue) -> Instruction:
        return Instruction(name=gname, qubits=gqubits, params=params, label=instruction.label)

    if name == "y":
        (q,) = qubits
        # Y = RZ(pi) then X up to global phase.
        return [gate("rz", (q,), math.pi), gate("x", (q,))]
    if name == "s":
        (q,) = qubits
        return [gate("rz", (q,), _HALF_PI)]
    if name == "t":
        (q,) = qubits
        return [gate("rz", (q,), math.pi / 4)]
    if name == "r":
        (q,) = qubits
        theta, phi = instruction.params
        # R(theta, phi) = RZ(phi) RX(theta) RZ(-phi): conjugating RX by RZ
        # tilts the rotation axis into the X-Y plane at azimuth phi.
        return [
            gate("rz", (q,), _scale(phi, -1.0)),
            gate("rx", (q,), _scale(theta, 1.0)),
            gate("rz", (q,), _scale(phi, 1.0)),
        ]
    if name == "u3":
        (q,) = qubits
        theta, phi, lam = instruction.params
        return [
            gate("rz", (q,), _scale(lam, 1.0)),
            gate("ry", (q,), _scale(theta, 1.0)),
            gate("rz", (q,), _scale(phi, 1.0)),
        ]
    if name == "cz":
        control, target = qubits
        return [gate("h", (target,)), gate("cx", (control, target)), gate("h", (target,))]
    if name == "swap":
        a, b = qubits
        return [gate("cx", (a, b)), gate("cx", (b, a)), gate("cx", (a, b))]
    if name == "cry":
        (theta,) = instruction.params
        control, target = qubits
        return [
            gate("ry", (target,), _scale(theta, 0.5)),
            gate("cx", (control, target)),
            gate("ry", (target,), _scale(theta, -0.5)),
            gate("cx", (control, target)),
        ]
    if name == "crz":
        (theta,) = instruction.params
        control, target = qubits
        return [
            gate("rz", (target,), _scale(theta, 0.5)),
            gate("cx", (control, target)),
            gate("rz", (target,), _scale(theta, -0.5)),
            gate("cx", (control, target)),
        ]
    if name == "crx":
        (theta,) = instruction.params
        control, target = qubits
        return [
            gate("h", (target,)),
            gate("rz", (target,), _scale(theta, 0.5)),
            gate("cx", (control, target)),
            gate("rz", (target,), _scale(theta, -0.5)),
            gate("cx", (control, target)),
            gate("h", (target,)),
        ]
    if name == "rzz":
        (theta,) = instruction.params
        a, b = qubits
        return [gate("cx", (a, b)), gate("rz", (b,), _scale(theta, 1.0)), gate("cx", (a, b))]
    if name == "rxx":
        (theta,) = instruction.params
        a, b = qubits
        return [
            gate("h", (a,)), gate("h", (b,)),
            gate("cx", (a, b)), gate("rz", (b,), _scale(theta, 1.0)), gate("cx", (a, b)),
            gate("h", (a,)), gate("h", (b,)),
        ]
    if name == "ryy":
        (theta,) = instruction.params
        a, b = qubits
        return [
            gate("rx", (a,), _HALF_PI), gate("rx", (b,), _HALF_PI),
            gate("cx", (a, b)), gate("rz", (b,), _scale(theta, 1.0)), gate("cx", (a, b)),
            gate("rx", (a,), -_HALF_PI), gate("rx", (b,), -_HALF_PI),
        ]
    if name == "cswap":
        control, target_a, target_b = qubits
        # CSWAP = CNOT(b->a) . CCX(control, a, b) . CNOT(b->a)
        ccx = _toffoli(control, target_a, target_b)
        return (
            [gate("cx", (target_b, target_a))]
            + ccx
            + [gate("cx", (target_b, target_a))]
        )
    raise TranspilerError(f"no decomposition known for gate '{name}'")


def _toffoli(control_a: int, control_b: int, target: int) -> List[Instruction]:
    """Standard 6-CNOT Toffoli decomposition into {h, t, tdg(=rz(-pi/4)), cx}."""
    t = math.pi / 4

    def g(name: str, qubits: Tuple[int, ...], *params: float) -> Instruction:
        return Instruction(name=name, qubits=qubits, params=params)

    return [
        g("h", (target,)),
        g("cx", (control_b, target)),
        g("rz", (target,), -t),
        g("cx", (control_a, target)),
        g("rz", (target,), t),
        g("cx", (control_b, target)),
        g("rz", (target,), -t),
        g("cx", (control_a, target)),
        g("rz", (control_b,), t),
        g("rz", (target,), t),
        g("h", (target,)),
        g("cx", (control_a, control_b)),
        g("rz", (control_a,), t),
        g("rz", (control_b,), -t),
        g("cx", (control_a, control_b)),
    ]


def decompose_to_basis(circuit: QuantumCircuit, allow_symbolic: bool = False) -> QuantumCircuit:
    """Rewrite every gate of ``circuit`` into the native basis set.

    The decomposition is applied recursively until only basis gates remain.
    Symbolic parameters on gates that need decomposition are rejected unless
    ``allow_symbolic`` is set (used by :class:`TranspileCache` to build
    re-bindable transpile templates; the rewritten angles are then
    :class:`~repro.quantum.operations.ScaledParameter` expressions).
    """
    output = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, name=f"{circuit.name}_basis")
    pending = list(circuit.instructions)
    while pending:
        instruction = pending.pop(0)
        if instruction.name in BASIS_GATES or instruction.name in ("measure", "reset", "barrier"):
            output.append(instruction)
            continue
        if not allow_symbolic and instruction.is_parameterized:
            names = [p.name for p in instruction.free_parameters]
            raise TranspilerError(
                f"cannot transpile instruction '{instruction.name}' with unbound parameters {names}"
            )
        replacement = _decompose_instruction(instruction)
        pending = replacement + pending
    return output


@dataclasses.dataclass
class RoutingResult:
    """Outcome of routing a circuit onto a device topology.

    Attributes
    ----------
    circuit:
        Routed circuit (logical indices already rewritten to physical ones).
    layout:
        Final logical-to-physical qubit mapping.
    inserted_swaps:
        Number of SWAP operations inserted.
    added_cx:
        Extra CNOTs contributed by routing (three per inserted SWAP).
    """

    circuit: QuantumCircuit
    layout: Dict[int, int]
    inserted_swaps: int

    @property
    def added_cx(self) -> int:
        return 3 * self.inserted_swaps


def route_circuit(
    circuit: QuantumCircuit,
    coupling_map: CouplingMap,
    initial_layout: Optional[Sequence[int]] = None,
) -> RoutingResult:
    """Insert SWAPs so every two-qubit gate respects ``coupling_map``.

    Uses a simple greedy strategy: when a gate's qubits are not adjacent,
    swap one operand along the shortest physical path until they meet.  The
    logical-to-physical layout is tracked so later gates see the updated
    placement.  Three-qubit gates must be decomposed before routing.
    """
    if circuit.num_qubits > coupling_map.num_qubits:
        raise TranspilerError(
            f"circuit needs {circuit.num_qubits} qubits but the device has "
            f"{coupling_map.num_qubits}"
        )
    if initial_layout is None:
        layout = {logical: logical for logical in range(circuit.num_qubits)}
    else:
        if len(initial_layout) != circuit.num_qubits:
            raise TranspilerError("initial_layout must list one physical qubit per logical qubit")
        layout = {logical: int(physical) for logical, physical in enumerate(initial_layout)}

    routed = QuantumCircuit(coupling_map.num_qubits, circuit.num_clbits or 0, name=f"{circuit.name}_routed")
    inserted_swaps = 0

    def swap_gates(a: int, b: int) -> None:
        routed.cx(a, b)
        routed.cx(b, a)
        routed.cx(a, b)

    for instruction in circuit.instructions:
        if instruction.name == "barrier":
            # Barriers survive routing with their qubits mapped to the
            # current layout: they carry fusion-boundary semantics (the
            # whole-grid compile path barriers the trained/encoder seam)
            # and cost nothing — compilation, binding walks and depth
            # statistics all skip them.
            routed.append(
                Instruction(
                    name="barrier",
                    qubits=tuple(layout[q] for q in instruction.qubits),
                    label=instruction.label,
                )
            )
            continue
        if instruction.num_qubits <= 1 or instruction.is_measurement:
            physical = tuple(layout[q] for q in instruction.qubits)
            routed.append(
                Instruction(
                    name=instruction.name,
                    qubits=physical,
                    params=instruction.params,
                    clbits=instruction.clbits,
                    label=instruction.label,
                )
            )
            continue
        if instruction.num_qubits > 2:
            raise TranspilerError(
                f"route_circuit requires gates on at most two qubits; decompose "
                f"'{instruction.name}' first"
            )
        logical_a, logical_b = instruction.qubits
        physical_a, physical_b = layout[logical_a], layout[logical_b]
        if not coupling_map.are_coupled(physical_a, physical_b):
            path = coupling_map.shortest_path(physical_a, physical_b)
            # Move operand A along the path until adjacent to B.
            for hop in path[1:-1]:
                swap_gates(physical_a, hop)
                inserted_swaps += 1
                # Update the layout: whichever logical qubit sat on ``hop``
                # now sits on ``physical_a`` and vice versa.
                occupant = next((l for l, p in layout.items() if p == hop), None)
                layout[logical_a] = hop
                if occupant is not None:
                    layout[occupant] = physical_a
                physical_a = hop
        routed.append(
            Instruction(
                name=instruction.name,
                qubits=(layout[logical_a], layout[logical_b]),
                params=instruction.params,
                label=instruction.label,
            )
        )
    return RoutingResult(circuit=routed, layout=layout, inserted_swaps=inserted_swaps)


@dataclasses.dataclass
class TranspileResult:
    """Combined decomposition + routing outcome with summary statistics."""

    circuit: QuantumCircuit
    layout: Dict[int, int]
    inserted_swaps: int
    cx_count: int
    depth: int

    @property
    def added_cx(self) -> int:
        """CNOTs added purely by routing."""
        return 3 * self.inserted_swaps


def transpile(
    circuit: QuantumCircuit,
    coupling_map: Optional[CouplingMap] = None,
    initial_layout: Optional[Sequence[int]] = None,
    allow_symbolic: bool = False,
) -> TranspileResult:
    """Decompose to the native basis and (optionally) route onto a device."""
    decomposed = decompose_to_basis(circuit, allow_symbolic=allow_symbolic)
    if coupling_map is None:
        counts = decomposed.count_ops()
        return TranspileResult(
            circuit=decomposed,
            layout={q: q for q in range(decomposed.num_qubits)},
            inserted_swaps=0,
            cx_count=counts.get("cx", 0),
            depth=decomposed.depth(),
        )
    routing = route_circuit(decomposed, coupling_map, initial_layout=initial_layout)
    counts = routing.circuit.count_ops()
    return TranspileResult(
        circuit=routing.circuit,
        layout=routing.layout,
        inserted_swaps=routing.inserted_swaps,
        cx_count=counts.get("cx", 0),
        depth=routing.circuit.depth(),
    )


# --------------------------------------------------------------------------- #
# Structure-keyed transpile caching
# --------------------------------------------------------------------------- #


def circuit_structure_key(circuit: QuantumCircuit) -> tuple:
    """Hashable key identifying a circuit's gate *structure*.

    Two circuits share a key exactly when they have the same width and the
    same ordered sequence of (instruction name, qubits, clbits) — parameter
    values are deliberately ignored.  A parameter-shift sweep of discriminator
    circuits therefore maps to a single key.
    """
    return (
        circuit.num_qubits,
        circuit.num_clbits,
        tuple((inst.name, inst.qubits, inst.clbits) for inst in circuit.instructions),
    )


@dataclasses.dataclass
class _TranspileTemplate:
    """One cached symbolic transpilation: template + slots + compiled program.

    ``program`` is the compiled :class:`~repro.quantum.program.SweepProgram`
    of the template — the entry's primary artefact for sweep execution.  It
    is compiled lazily on first sweep use (plain ``run`` calls that only
    re-bind never pay for it, and circuits a program cannot represent, e.g.
    with resets, still transpile normally) and then reused for every repeat
    sweep of the structure.
    """

    result: TranspileResult
    slots: Tuple[Parameter, ...]
    program: object = None
    #: ``(noise_model, version, program)`` of the certified fused variant.
    optimized: object = None

    def ensure_program(self, *, optimize=None, noise_model=None):
        """Compile (once) and return the template's sweep program.

        The program's binding columns are ordered exactly like ``slots``, so
        the slot-value vector extracted from an incoming bound circuit is
        directly a bindings row.

        ``optimize`` is the three-state plan-time fusion knob (``None``
        defers to ``REPRO_OPTIMIZE_PROGRAMS``); when enabled, the certified
        fused variant for ``noise_model`` is derived once from the cached
        source program and re-derived only when the model instance or its
        mutation version changes.
        """
        from repro.quantum.program import SweepProgram, resolve_optimization

        if self.program is None:
            self.program = SweepProgram.compile(
                self.result.circuit,
                bind_floats=False,
                parameters=self.slots,
                name=f"transpiled({self.result.circuit.name})",
            )
        if not resolve_optimization(optimize):
            return self.program
        version = getattr(noise_model, "version", 0)
        cached = self.optimized
        if cached is None or cached[0] is not noise_model or cached[1] != version:
            self.optimized = (
                noise_model,
                version,
                self.program.optimized(noise_model=noise_model),
            )
        return self.optimized[2]


class TranspileCache:
    """Structure-keyed cache that turns repeat transpilations into re-binds.

    The first circuit of a given structure is transpiled *symbolically*: every
    bound gate angle is replaced with a fresh slot
    :class:`~repro.quantum.operations.Parameter`, the decomposition rewrites
    those slots into :class:`~repro.quantum.operations.ScaledParameter`
    expressions, and routing is value-independent.  Every later circuit with
    the same structure — e.g. the hundreds of parameter-shift variants of one
    SWAP-test discriminator — only pays a flat parameter re-bind of the cached
    template, skipping decomposition and routing entirely.

    Entries are evicted LRU once ``max_entries`` distinct structures are held.
    Routing statistics (CX count, inserted SWAPs, depth) are structure
    properties, so hits report the template's numbers unchanged.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries <= 0:
            raise TranspilerError(f"max_entries must be positive, got {max_entries}")
        self._entries = LRUCache(max_entries)
        #: Number of cache hits (re-binds) and misses (full transpilations).
        # The counters get their own lock: ``_entries`` serialises its own
        # accesses internally, but ``hits += 1`` is a read-modify-write that
        # thread-strategy shards sharing one cache would race (REP101).
        self._stats_lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_stats_lock"]  # locks cannot pickle; workers get a fresh one
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> Dict[str, int]:
        """Cache statistics: hits, misses and resident entry count."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}

    def clear(self) -> None:
        """Drop every cached template and reset the statistics."""
        self._entries.clear()
        with self._stats_lock:
            self.hits = 0
            self.misses = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def _map_key(coupling_map: Optional[CouplingMap]) -> tuple:
        if coupling_map is None:
            return ()
        return (coupling_map.num_qubits, tuple(coupling_map.edges))

    @staticmethod
    def _symbolic_twin(circuit: QuantumCircuit) -> Tuple[QuantumCircuit, Tuple[Parameter, ...]]:
        """Copy of ``circuit`` with every gate angle replaced by a slot parameter."""
        twin = circuit.copy()
        slots: List[Parameter] = []
        instructions: List[Instruction] = []
        for inst in circuit.instructions:
            if inst.is_gate and inst.params:
                new_params = []
                for _ in inst.params:
                    slot = Parameter(f"__transpile_slot_{len(slots)}")
                    slots.append(slot)
                    new_params.append(slot)
                instructions.append(dataclasses.replace(inst, params=tuple(new_params)))
            else:
                instructions.append(inst)
        twin._instructions = instructions
        return twin, tuple(slots)

    @staticmethod
    def _parameter_values(circuit: QuantumCircuit) -> List[float]:
        """Bound gate angles in structure order (the slot-binding vector)."""
        return [
            float(p)
            for inst in circuit.instructions
            if inst.is_gate and inst.params
            for p in inst.params
        ]

    # ------------------------------------------------------------------ #
    def template(
        self,
        circuit: QuantumCircuit,
        coupling_map: Optional[CouplingMap] = None,
    ) -> Tuple[_TranspileTemplate, List[float]]:
        """The cached template for ``circuit``'s structure plus its slot values.

        This is the compile-once seam the sweep executors build on: the
        returned entry carries the symbolic transpilation *and* (via
        :meth:`_TranspileTemplate.ensure_program`) the compiled
        :class:`~repro.quantum.program.SweepProgram`, while the value vector
        is the circuit's bindings row — so a whole sweep can execute straight
        from the cache without materialising one bound circuit per element.
        ``circuit`` must be fully bound.
        """
        if any(inst.is_parameterized for inst in circuit.instructions):
            raise TranspilerError(
                "transpile templates are keyed by structure and require fully "
                f"bound circuits; '{circuit.name}' has unbound parameters"
            )
        key = (circuit_structure_key(circuit), self._map_key(coupling_map))
        entry = self._entries.get(key)
        if entry is None:
            with self._stats_lock:
                self.misses += 1
            twin, slots = self._symbolic_twin(circuit)
            template = transpile(twin, coupling_map, allow_symbolic=True)
            entry = _TranspileTemplate(result=template, slots=slots)
            self._entries.put(key, entry)
        else:
            with self._stats_lock:
                self.hits += 1
        return entry, self._parameter_values(circuit)

    def symbolic_template(
        self,
        circuit: QuantumCircuit,
        parameters: Sequence[Parameter],
        coupling_map: Optional[CouplingMap] = None,
    ) -> _TranspileTemplate:
        """The cached template of an already-symbolic circuit.

        The whole-grid seam: ``circuit`` carries genuine
        :class:`~repro.quantum.operations.Parameter` angles (trained *and*
        data-encoder sites) and is transpiled directly — no slot twin —
        with ``parameters`` fixing the compiled program's binding-column
        order, so a ``(rows x samples, columns)`` grid bindings matrix
        executes straight from the cache.  Keyed separately from the
        bound-circuit templates (the structure key ignores parameter
        values, so a distinct key shape prevents collisions).
        """
        parameters = tuple(parameters)
        key = (
            "symbolic",
            circuit_structure_key(circuit),
            tuple(param.name for param in parameters),
            self._map_key(coupling_map),
        )
        entry = self._entries.get(key)
        if entry is None:
            with self._stats_lock:
                self.misses += 1
            template = transpile(circuit, coupling_map, allow_symbolic=True)
            entry = _TranspileTemplate(result=template, slots=parameters)
            self._entries.put(key, entry)
        else:
            with self._stats_lock:
                self.hits += 1
        return entry

    def transpile(
        self,
        circuit: QuantumCircuit,
        coupling_map: Optional[CouplingMap] = None,
        initial_layout: Optional[Sequence[int]] = None,
    ) -> TranspileResult:
        """Transpile ``circuit``, re-binding a cached template when possible.

        The output is identical (instruction for instruction) to calling
        :func:`transpile` directly.  Circuits that still carry symbolic
        parameters bypass the cache — their structure key cannot distinguish
        different bindings — as do calls with an explicit ``initial_layout``.
        """
        if initial_layout is not None or any(
            inst.is_parameterized for inst in circuit.instructions
        ):
            return transpile(circuit, coupling_map, initial_layout=initial_layout)

        entry, values = self.template(circuit, coupling_map)
        binding = dict(zip(entry.slots, values))
        template = entry.result
        bound = template.circuit.bind_parameters(binding)
        bound.name = (
            f"{circuit.name}_basis_routed" if coupling_map is not None else f"{circuit.name}_basis"
        )
        return TranspileResult(
            circuit=bound,
            layout=dict(template.layout),
            inserted_swaps=template.inserted_swaps,
            cx_count=template.cx_count,
            depth=template.depth,
        )
