"""Execution backends.

A :class:`Backend` is anything that can run a bound circuit and return a
:class:`~repro.quantum.simulator.SimulationResult`.  Three implementations are
provided here:

* :class:`IdealBackend` — exact statevector execution (optionally sampled).
* :class:`SampledBackend` — statevector execution that always samples shots,
  modelling the statistical noise of a perfect but finite-shot device.
* :class:`NoisyBackend` — transpiles onto a device topology, then executes on
  a density-matrix simulator with the device's noise model.  This is the base
  class of the simulated IBM-Q and IonQ machines in :mod:`repro.hardware`.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, Optional

from repro.exceptions import BackendError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel
from repro.quantum.simulator import (
    DensityMatrixSimulator,
    SimulationResult,
    StatevectorSimulator,
)
from repro.quantum.topology import CouplingMap
from repro.quantum.transpiler import transpile
from repro.utils.rng import RandomState, ensure_rng


class Backend(abc.ABC):
    """Abstract execution backend."""

    #: Human-readable backend name (used in experiment reports).
    name: str = "backend"

    @abc.abstractmethod
    def run(self, circuit: QuantumCircuit, shots: Optional[int] = None) -> SimulationResult:
        """Execute a fully bound circuit."""

    @property
    def is_noisy(self) -> bool:
        """Whether execution includes a hardware noise model."""
        return False

    def ancilla_zero_probability(self, circuit: QuantumCircuit, shots: Optional[int] = None) -> float:
        """Probability that classical bit 0 reads ``0`` — the SWAP-test readout.

        Every QuClassi discriminator circuit measures exactly one ancilla into
        classical bit 0, so this helper is the single quantity the training
        loop needs from a backend.
        """
        result = self.run(circuit, shots=shots)
        return result.marginal_probability(0, value=0)


class IdealBackend(Backend):
    """Noise-free statevector execution with exact probabilities."""

    name = "ideal_simulator"

    def __init__(self, seed: RandomState = None) -> None:
        self._simulator = StatevectorSimulator(seed=seed)

    def run(self, circuit: QuantumCircuit, shots: Optional[int] = None) -> SimulationResult:
        return self._simulator.run(circuit, shots=shots)


class SampledBackend(Backend):
    """Statevector execution that always samples a finite number of shots."""

    name = "sampled_simulator"

    def __init__(self, shots: int = 1024, seed: RandomState = None) -> None:
        if shots <= 0:
            raise BackendError(f"shots must be positive, got {shots}")
        self.shots = int(shots)
        self._simulator = StatevectorSimulator(seed=seed)

    def run(self, circuit: QuantumCircuit, shots: Optional[int] = None) -> SimulationResult:
        return self._simulator.run(circuit, shots=shots or self.shots)


@dataclasses.dataclass
class DeviceProperties:
    """Static description of a simulated quantum device.

    Attributes
    ----------
    name:
        Provider-style device name (e.g. ``"ibmq_london"``).
    num_qubits:
        Number of physical qubits.
    coupling_map:
        Physical connectivity.
    noise_model:
        Gate/readout error model calibrated for the device.
    basis_gates:
        Native gate set.
    max_shots:
        Largest shot count a single job may request.
    queue_latency_seconds:
        Simulated average queueing delay per job (reported in job metadata,
        mirroring the paper's remark about shared public queues).
    """

    name: str
    num_qubits: int
    coupling_map: CouplingMap
    noise_model: NoiseModel
    basis_gates: tuple = ("rx", "ry", "rz", "h", "cx", "id", "x", "z")
    max_shots: int = 8192
    queue_latency_seconds: float = 0.0


class NoisyBackend(Backend):
    """Device-like backend: transpile, then run under a noise model."""

    def __init__(self, properties: DeviceProperties, seed: RandomState = None) -> None:
        self.properties = properties
        self.name = properties.name
        self._rng = ensure_rng(seed)
        self._simulator = DensityMatrixSimulator(noise_model=properties.noise_model, seed=self._rng)
        #: Statistics of the most recent transpilation (CX count, SWAPs, depth).
        self.last_transpile_stats: Dict[str, int] = {}

    @property
    def is_noisy(self) -> bool:
        return True

    def run(self, circuit: QuantumCircuit, shots: Optional[int] = None) -> SimulationResult:
        shots = shots if shots is not None else 1024
        if shots > self.properties.max_shots:
            raise BackendError(
                f"{self.name} supports at most {self.properties.max_shots} shots per job, "
                f"requested {shots}"
            )
        if circuit.num_qubits > self.properties.num_qubits:
            raise BackendError(
                f"{self.name} has {self.properties.num_qubits} qubits, circuit needs "
                f"{circuit.num_qubits}"
            )
        # Place the circuit on a connected region of the chip and only simulate
        # that region; simulating every physical qubit of a 15- or 27-qubit
        # device as a density matrix would be needlessly intractable.
        region = self.properties.coupling_map.select_connected_region(circuit.num_qubits)
        local_map = self.properties.coupling_map.induced_subgraph(region)
        transpiled = transpile(circuit, local_map)
        self.last_transpile_stats = {
            "cx_count": transpiled.cx_count,
            "inserted_swaps": transpiled.inserted_swaps,
            "added_cx": transpiled.added_cx,
            "depth": transpiled.depth,
        }
        result = self._simulator.run(transpiled.circuit, shots=shots)
        result.metadata.update(
            {
                "backend": self.name,
                "transpile": dict(self.last_transpile_stats),
                "queue_latency_seconds": self.properties.queue_latency_seconds,
            }
        )
        return result
