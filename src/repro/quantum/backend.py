"""Execution backends.

A :class:`Backend` is anything that can run a bound circuit and return a
:class:`~repro.quantum.simulator.SimulationResult`.  Three implementations are
provided here:

* :class:`IdealBackend` — exact statevector execution (optionally sampled).
* :class:`SampledBackend` — statevector execution that always samples shots,
  modelling the statistical noise of a perfect but finite-shot device.
* :class:`NoisyBackend` — transpiles onto a device topology, then executes on
  a density-matrix simulator with the device's noise model.  This is the base
  class of the simulated IBM-Q and IonQ machines in :mod:`repro.hardware`.

Batch execution
---------------
Every backend executes whole circuit batches through :meth:`Backend.run_batch`
and exposes the SWAP-test readout for a sweep via
:meth:`Backend.ancilla_zero_probabilities`.  The default implementations loop
:meth:`Backend.run`; the statevector backends delegate to
:meth:`~repro.quantum.simulator.StatevectorSimulator.run_batch`, which evolves
a structure-sharing sweep as one vectorised pass, and :class:`NoisyBackend`
re-binds each circuit through a structure-keyed
:class:`~repro.quantum.transpiler.TranspileCache` (plus a per-width region
cache) and then hands the whole transpiled sweep to
:meth:`~repro.quantum.simulator.DensityMatrixSimulator.run_batch`, which
evolves it as one :class:`~repro.quantum.batched_density.BatchedDensityMatrix`
pass under the device noise model.  Backends whose batch path is worth routing
sweeps through advertise ``supports_batch = True``, which the SWAP-test
fidelity estimator mirrors; on every backend the batched results are
equivalent to the loop (seed-identical counts where shots are sampled).
"""

from __future__ import annotations

import abc
import dataclasses
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import BackendError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel
from repro.quantum.program import TilePlan
from repro.quantum.simulator import (
    DensityMatrixSimulator,
    SimulationResult,
    StatevectorSimulator,
)
from repro.quantum.topology import CouplingMap
from repro.quantum.transpiler import TranspileCache
from repro.utils.rng import RandomState, ensure_rng


def validate_shots(shots: Optional[int], backend_name: str) -> Optional[int]:
    """Validate a shot count: ``None`` (exact) or a positive integer.

    Every backend funnels its ``shots`` argument through here so that invalid
    requests — most notably ``shots=0``, which previously fell back to a
    default via a falsy-``or`` — fail loudly with a :class:`BackendError`
    instead of silently running a different experiment.
    """
    if shots is None:
        return None
    if isinstance(shots, bool) or not isinstance(shots, (int, np.integer)):
        raise BackendError(
            f"{backend_name}: shots must be a positive integer or None, got {shots!r}"
        )
    if shots <= 0:
        raise BackendError(
            f"{backend_name}: shots must be positive or None, got {shots}"
        )
    return int(shots)


class Backend(abc.ABC):
    """Abstract execution backend."""

    #: Human-readable backend name (used in experiment reports).
    name: str = "backend"

    #: Whether :meth:`run_batch` is worth routing whole sweeps through (a
    #: vectorised engine or cached transpilation rather than a bare loop).
    #: The SWAP-test fidelity estimator mirrors this flag as its own
    #: ``supports_batch`` so the trainer and inference pick the batched path.
    supports_batch: bool = False

    #: Whether :meth:`sweep_zero_probabilities` executes through a cached
    #: compiled :class:`~repro.quantum.program.SweepProgram` (compile-once,
    #: tiled execution, no per-element result materialisation).  The
    #: SWAP-test estimator routes its whole (shift-row x sample) workload
    #: through that path when this is set.
    supports_programs: bool = False

    #: Whether :meth:`sweep_grid_zero_probabilities` executes whole-grid
    #: programs — one *symbolic* circuit (trained parameters and data-encoder
    #: angles unbound) compiled once, fed a ``(rows x samples, columns)``
    #: bindings matrix.  No per-sample circuit is ever constructed or bound;
    #: the SWAP-test estimator takes this path when the encoder supports
    #: angle columns.
    supports_grid_programs: bool = False

    @abc.abstractmethod
    def run(self, circuit: QuantumCircuit, shots: Optional[int] = None) -> SimulationResult:
        """Execute a fully bound circuit."""

    def run_batch(
        self, circuits: Sequence[QuantumCircuit], shots: Optional[int] = None
    ) -> List[SimulationResult]:
        """Execute a batch of bound circuits.

        The base implementation loops :meth:`run`; subclasses override it
        with vectorised or cache-amortised paths.  Results are returned in
        input order and are equivalent to the loop (seed-identical where the
        backend samples shots).
        """
        validate_shots(shots, self.name)
        return [self.run(circuit, shots=shots) for circuit in circuits]

    @property
    def is_noisy(self) -> bool:
        """Whether execution includes a hardware noise model."""
        return False

    def ancilla_zero_probability(self, circuit: QuantumCircuit, shots: Optional[int] = None) -> float:
        """Probability that classical bit 0 reads ``0`` — the SWAP-test readout.

        Every QuClassi discriminator circuit measures exactly one ancilla into
        classical bit 0, so this helper is the single quantity the training
        loop needs from a backend.
        """
        result = self.run(circuit, shots=shots)
        return result.marginal_probability(0, value=0)

    def ancilla_zero_probabilities(
        self, circuits: Sequence[QuantumCircuit], shots: Optional[int] = None
    ) -> np.ndarray:
        """SWAP-test readouts for a whole sweep of discriminator circuits.

        Runs the batch through :meth:`run_batch` and returns ``P(bit 0 = 0)``
        per circuit — the vector the batched fidelity estimator inverts into
        fidelities.
        """
        results = self.run_batch(circuits, shots=shots)
        return np.array(
            [result.marginal_probability(0, value=0) for result in results], dtype=float
        )

    def sweep_zero_probabilities(
        self,
        circuits,
        shots: Optional[int] = None,
        tile_plan: Optional[TilePlan] = None,
    ) -> np.ndarray:
        """SWAP-test readouts of one structure-sharing sweep, tiled.

        The compile-once hot path: backends with ``supports_programs`` pull
        the circuits from the (lazily consumed) iterable only to extract
        their binding rows, compile the shared structure once through their
        program cache, and stream the whole sweep through
        :meth:`~repro.quantum.simulator.StatevectorSimulator.run_sweep_program`
        under ``tile_plan`` — so peak memory is one tile's state stack, not
        the sweep's, and no per-element :class:`SimulationResult` (or final
        state) is ever built.  Results are draw-for-draw identical to
        :meth:`ancilla_zero_probabilities`.

        Unlike :meth:`run_batch`, every circuit of the sweep **must** share
        one structure; mismatches raise :class:`BackendError` instead of
        falling back (by then earlier circuits of the stream have already
        been consumed).  The base implementation simply materialises the
        sweep and loops, so estimator code can call this unconditionally.
        """
        return self.ancilla_zero_probabilities(list(circuits), shots=shots)

    def sweep_grid_zero_probabilities(
        self,
        circuit: QuantumCircuit,
        parameters: Sequence,
        bindings,
        shots: Optional[int] = None,
        tile_plan: Optional[TilePlan] = None,
    ) -> np.ndarray:
        """SWAP-test readouts of one whole-grid sweep — zero per-sample circuits.

        ``circuit`` is a single *symbolic* representative (trained parameters
        and data-encoder angles unbound), ``parameters`` its binding-column
        order, ``bindings`` the ``(rows x samples, columns)`` value matrix in
        row-major grid order.  Backends advertising
        ``supports_grid_programs`` compile the circuit once, execute the
        bindings straight through the tiled program executor (shared
        trained-state prefixes evolve once per tile when ``tile_plan`` claims
        them, certified by VER403), and return ``P(bit 0 = 0)`` per grid
        element — draw-for-draw identical to streaming bound per-sample
        circuits through :meth:`sweep_zero_probabilities`.
        """
        raise BackendError(
            f"{self.name}: whole-grid program execution is not supported; "
            "check supports_grid_programs before calling"
        )


def _statevector_sweep(
    backend: "Backend",
    simulator: StatevectorSimulator,
    circuits,
    shots: Optional[int],
    tile_plan: Optional[TilePlan],
) -> np.ndarray:
    """Shared program-sweep implementation of the statevector backends."""
    iterator = iter(circuits)
    first = next(iterator, None)
    if first is None:
        return np.zeros(0)
    program = simulator._sweep_program(first)
    rows = [program.binding_row(first)]
    for circuit in iterator:
        if not program.matches_structure(circuit):
            raise BackendError(
                f"{backend.name}: sweep_zero_probabilities requires one shared "
                f"circuit structure; '{circuit.name}' deviates from the sweep's"
            )
        rows.append(program.binding_row(circuit))
    bindings = np.asarray(rows, dtype=float).reshape(len(rows), program.num_columns)
    readout = simulator.run_sweep_program(
        program, bindings, shots=shots, tile_plan=tile_plan
    )
    return readout.marginal_probabilities(0, 0)


def _statevector_grid_sweep(
    simulator: StatevectorSimulator,
    circuit: QuantumCircuit,
    parameters: Sequence,
    bindings,
    shots: Optional[int],
    tile_plan: Optional[TilePlan],
) -> np.ndarray:
    """Shared whole-grid implementation of the statevector backends."""
    bindings = np.asarray(bindings, dtype=float)
    if bindings.ndim != 2:
        raise BackendError(
            f"grid bindings must be 2-D (elements, columns), got shape "
            f"{bindings.shape}"
        )
    if bindings.shape[0] == 0:
        return np.zeros(0)
    program = simulator._grid_program(circuit, tuple(parameters))
    readout = simulator.run_sweep_program(
        program, bindings, shots=shots, tile_plan=tile_plan
    )
    return readout.marginal_probabilities(0, 0)


class IdealBackend(Backend):
    """Noise-free statevector execution with exact probabilities."""

    name = "ideal_simulator"
    supports_batch = True
    supports_programs = True
    supports_grid_programs = True

    def __init__(self, seed: RandomState = None) -> None:
        self._simulator = StatevectorSimulator(seed=seed)

    def run(self, circuit: QuantumCircuit, shots: Optional[int] = None) -> SimulationResult:
        shots = validate_shots(shots, self.name)
        return self._simulator.run(circuit, shots=shots)

    def run_batch(
        self, circuits: Sequence[QuantumCircuit], shots: Optional[int] = None
    ) -> List[SimulationResult]:
        """Vectorised batch execution on the statevector engine."""
        shots = validate_shots(shots, self.name)
        return self._simulator.run_batch(circuits, shots=shots)

    def sweep_zero_probabilities(
        self,
        circuits,
        shots: Optional[int] = None,
        tile_plan: Optional[TilePlan] = None,
    ) -> np.ndarray:
        """Tiled compile-once sweep on the statevector engine."""
        shots = validate_shots(shots, self.name)
        return _statevector_sweep(self, self._simulator, circuits, shots, tile_plan)

    def sweep_grid_zero_probabilities(
        self,
        circuit: QuantumCircuit,
        parameters: Sequence,
        bindings,
        shots: Optional[int] = None,
        tile_plan: Optional[TilePlan] = None,
    ) -> np.ndarray:
        """Whole-grid compile-once sweep on the statevector engine."""
        shots = validate_shots(shots, self.name)
        return _statevector_grid_sweep(
            self._simulator, circuit, parameters, bindings, shots, tile_plan
        )


class SampledBackend(Backend):
    """Statevector execution that always samples a finite number of shots."""

    name = "sampled_simulator"
    supports_batch = True
    supports_programs = True
    supports_grid_programs = True

    def __init__(self, shots: int = 1024, seed: RandomState = None) -> None:
        self.shots = validate_shots(shots, self.name)
        if self.shots is None:
            raise BackendError(f"{self.name}: a default shot count is required")
        self._simulator = StatevectorSimulator(seed=seed)

    def _resolve_shots(self, shots: Optional[int]) -> int:
        # ``shots=0`` must raise, not silently fall back to the default the
        # way the old ``shots or self.shots`` expression did.
        if shots is None:
            return self.shots
        return validate_shots(shots, self.name)

    def run(self, circuit: QuantumCircuit, shots: Optional[int] = None) -> SimulationResult:
        return self._simulator.run(circuit, shots=self._resolve_shots(shots))

    def run_batch(
        self, circuits: Sequence[QuantumCircuit], shots: Optional[int] = None
    ) -> List[SimulationResult]:
        """Vectorised batch execution; every circuit is sampled."""
        return self._simulator.run_batch(circuits, shots=self._resolve_shots(shots))

    def sweep_zero_probabilities(
        self,
        circuits,
        shots: Optional[int] = None,
        tile_plan: Optional[TilePlan] = None,
    ) -> np.ndarray:
        """Tiled compile-once sweep; every element is sampled."""
        return _statevector_sweep(
            self, self._simulator, circuits, self._resolve_shots(shots), tile_plan
        )

    def sweep_grid_zero_probabilities(
        self,
        circuit: QuantumCircuit,
        parameters: Sequence,
        bindings,
        shots: Optional[int] = None,
        tile_plan: Optional[TilePlan] = None,
    ) -> np.ndarray:
        """Whole-grid compile-once sweep; every element is sampled."""
        return _statevector_grid_sweep(
            self._simulator,
            circuit,
            parameters,
            bindings,
            self._resolve_shots(shots),
            tile_plan,
        )


@dataclasses.dataclass
class DeviceProperties:
    """Static description of a simulated quantum device.

    Attributes
    ----------
    name:
        Provider-style device name (e.g. ``"ibmq_london"``).
    num_qubits:
        Number of physical qubits.
    coupling_map:
        Physical connectivity.
    noise_model:
        Gate/readout error model calibrated for the device.
    basis_gates:
        Native gate set.
    max_shots:
        Largest shot count a single job may request.
    queue_latency_seconds:
        Simulated average queueing delay per job (reported in job metadata,
        mirroring the paper's remark about shared public queues).
    """

    name: str
    num_qubits: int
    coupling_map: CouplingMap
    noise_model: NoiseModel
    basis_gates: tuple = ("rx", "ry", "rz", "h", "cx", "id", "x", "z")
    max_shots: int = 8192
    queue_latency_seconds: float = 0.0


class NoisyBackend(Backend):
    """Device-like backend: transpile, then run under a noise model.

    Repeated sweeps over the same circuit structure (every SWAP-test
    parameter-shift sweep) hit two caches: a per-width cache of the selected
    chip region, and a structure-keyed
    :class:`~repro.quantum.transpiler.TranspileCache` that re-binds rotation
    angles into a previously transpiled template instead of re-running
    decomposition and routing.  :meth:`run_batch` then executes the whole
    re-bound sweep as one vectorised
    :meth:`~repro.quantum.simulator.DensityMatrixSimulator.run_batch` pass
    (transpiled circuits of one sweep share their structure by construction),
    so noisy sweeps batch end to end instead of simulating one density matrix
    per circuit.  :meth:`sweep_zero_probabilities` goes further: the whole
    (shift-row x sample) workload executes straight from the cached
    template's compiled :class:`~repro.quantum.program.SweepProgram` —
    unitaries and noise channels precomposed into per-gate superoperators —
    tiled under a :class:`~repro.quantum.program.TilePlan` memory budget.
    """

    supports_batch = True
    supports_programs = True
    supports_grid_programs = True

    def __init__(
        self,
        properties: DeviceProperties,
        seed: RandomState = None,
        simulate_queue_latency: bool = False,
    ) -> None:
        self.properties = properties
        self.name = properties.name
        #: When True, every job *submission* (one :meth:`run` call, or one
        #: whole :meth:`run_batch` — a batch is a single provider job) sleeps
        #: for the device's ``queue_latency_seconds``, modelling the shared
        #: public queue the paper remarks on.  Off by default: figure
        #: reproduction only book-keeps latency.  Sharded sweeps overlap
        #: these waits across backends, which is where multi-backend
        #: scale-out wins on real hardware.
        self.simulate_queue_latency = bool(simulate_queue_latency)
        self._rng = ensure_rng(seed)
        self._simulator = DensityMatrixSimulator(noise_model=properties.noise_model, seed=self._rng)
        #: Statistics of the most recent transpilation (CX count, SWAPs, depth).
        self.last_transpile_stats: Dict[str, int] = {}
        self._transpile_cache = TranspileCache()
        self._region_cache: Dict[int, CouplingMap] = {}

    @property
    def is_noisy(self) -> bool:
        return True

    @property
    def transpile_cache_stats(self) -> Dict[str, int]:
        """Hit/miss statistics of the structure-keyed transpile cache."""
        return self._transpile_cache.stats

    def _local_coupling_map(self, num_qubits: int) -> CouplingMap:
        """Connected chip region for a circuit width (cached per width).

        Place the circuit on a connected region of the chip and only simulate
        that region; simulating every physical qubit of a 15- or 27-qubit
        device as a density matrix would be needlessly intractable.
        """
        cached = self._region_cache.get(num_qubits)
        if cached is None:
            region = self.properties.coupling_map.select_connected_region(num_qubits)
            cached = self.properties.coupling_map.induced_subgraph(region)
            self._region_cache[num_qubits] = cached
        return cached

    def _resolve_shots(self, shots: Optional[int]) -> int:
        """Validate a shot request against the device's per-job limit."""
        shots = validate_shots(shots, self.name)
        shots = shots if shots is not None else 1024
        if shots > self.properties.max_shots:
            raise BackendError(
                f"{self.name} supports at most {self.properties.max_shots} shots per job, "
                f"requested {shots}"
            )
        return shots

    @staticmethod
    def _transpile_stats(transpiled) -> Dict[str, int]:
        """Summary statistics of one transpilation, as reported in metadata."""
        return {
            "cx_count": transpiled.cx_count,
            "inserted_swaps": transpiled.inserted_swaps,
            "added_cx": transpiled.added_cx,
            "depth": transpiled.depth,
        }

    def _transpile(self, circuit: QuantumCircuit):
        """Transpile one circuit onto the selected chip region (cache-amortised).

        Updates ``last_transpile_stats`` so repeated calls report the most
        recently transpiled circuit, matching the per-circuit :meth:`run`
        bookkeeping when a batch loops through here.
        """
        if circuit.num_qubits > self.properties.num_qubits:
            raise BackendError(
                f"{self.name} has {self.properties.num_qubits} qubits, circuit needs "
                f"{circuit.num_qubits}"
            )
        local_map = self._local_coupling_map(circuit.num_qubits)
        transpiled = self._transpile_cache.transpile(circuit, local_map)
        self.last_transpile_stats = self._transpile_stats(transpiled)
        return transpiled

    def _attach_metadata(self, result: SimulationResult, transpile_stats: Dict[str, int]) -> None:
        result.metadata.update(
            {
                "backend": self.name,
                "transpile": dict(transpile_stats),
                "queue_latency_seconds": self.properties.queue_latency_seconds,
            }
        )

    def _queue_wait(self) -> None:
        """Sleep out the simulated queue for one job submission (opt-in)."""
        if self.simulate_queue_latency and self.properties.queue_latency_seconds > 0:
            time.sleep(self.properties.queue_latency_seconds)

    def run(self, circuit: QuantumCircuit, shots: Optional[int] = None) -> SimulationResult:
        shots = self._resolve_shots(shots)
        self._queue_wait()
        transpiled = self._transpile(circuit)
        result = self._simulator.run(transpiled.circuit, shots=shots)
        self._attach_metadata(result, self.last_transpile_stats)
        self._record_job(result)
        return result

    def run_batch(
        self, circuits: Sequence[QuantumCircuit], shots: Optional[int] = None
    ) -> List[SimulationResult]:
        """Execute a batch: cached transpilation, then one vectorised noisy pass.

        Every circuit re-binds through the structure-keyed transpile cache
        (one symbolic transpilation per structure, flat re-binds after), and
        the transpiled sweep executes through
        :meth:`~repro.quantum.simulator.DensityMatrixSimulator.run_batch` —
        one :class:`~repro.quantum.batched_density.BatchedDensityMatrix`
        evolution plus one stacked shot draw when the sweep shares structure,
        a transparent per-circuit fallback otherwise.  Results are
        seed-identical to looping :meth:`run`.
        """
        shots = self._resolve_shots(shots)
        self._queue_wait()
        transpiled = [self._transpile(circuit) for circuit in circuits]
        results = self._simulator.run_batch(
            [entry.circuit for entry in transpiled], shots=shots
        )
        for entry, result in zip(transpiled, results):
            self._attach_metadata(result, self._transpile_stats(entry))
            self._record_job(result)
        return results

    def sweep_zero_probabilities(
        self,
        circuits,
        shots: Optional[int] = None,
        tile_plan: Optional[TilePlan] = None,
    ) -> np.ndarray:
        """Compile-once tiled sweep under the device noise model.

        Every circuit of the sweep resolves to **one**
        :class:`~repro.quantum.transpiler.TranspileCache` template whose
        compiled :class:`~repro.quantum.program.SweepProgram` (gate unitaries
        and noise channels precomposed into per-gate superoperators) executes
        the whole workload tile by tile — the *template* is never re-bound,
        no per-gate channel resolution runs, and no per-element density
        matrices are materialised.  The incoming (caller-bound) circuits are
        consumed only to extract their slot-value binding rows; compiling the
        data encoder's angles as bind sites too, so callers need not build
        per-element circuits at all, is a ROADMAP item.  One sweep is one
        provider job submission (a single queue wait), but every element is
        still ledgered individually so job accounting matches the loop path.
        """
        shots = self._resolve_shots(shots)
        iterator = iter(circuits)
        first = next(iterator, None)
        if first is None:
            return np.zeros(0)
        if first.num_qubits > self.properties.num_qubits:
            raise BackendError(
                f"{self.name} has {self.properties.num_qubits} qubits, circuit "
                f"needs {first.num_qubits}"
            )
        self._queue_wait()
        local_map = self._local_coupling_map(first.num_qubits)
        entry, values = self._transpile_cache.template(first, local_map)
        rows = [values]
        names = [first.name]
        for circuit in iterator:
            if circuit.num_qubits != first.num_qubits:
                raise BackendError(
                    f"{self.name}: sweep_zero_probabilities requires one shared "
                    f"circuit structure; '{circuit.name}' has a different width"
                )
            other, circuit_values = self._transpile_cache.template(circuit, local_map)
            if other is not entry:
                raise BackendError(
                    f"{self.name}: sweep_zero_probabilities requires one shared "
                    f"circuit structure; '{circuit.name}' deviates from the sweep's"
                )
            rows.append(circuit_values)
            names.append(circuit.name)
        # Fusion stays env-/simulator-default (optimize=None); the legality
        # oracle consults the simulator's own noise model so the density
        # engine's folded plans certify against the channels it will apply.
        program = entry.ensure_program(
            noise_model=getattr(self._simulator, "noise_model", None)
        )
        stats = self._transpile_stats(entry.result)
        self.last_transpile_stats = stats
        readout = self._simulator.run_sweep_program(
            program,
            np.asarray(rows, dtype=float).reshape(len(rows), program.num_columns),
            shots=shots,
            tile_plan=tile_plan,
        )
        for element, name in enumerate(names):
            result = SimulationResult(
                circuit_name=f"{name}_basis_routed",
                probabilities=readout.probabilities[element],
                counts=readout.counts[element] if readout.counts is not None else None,
                shots=shots,
                metadata={
                    "engine": self._simulator.name,
                    "noisy": not self.properties.noise_model.is_ideal,
                    "batched": True,
                    "batch_size": len(names),
                    "program_sweep": True,
                },
            )
            self._attach_metadata(result, stats)
            self._record_job(result)
        return readout.marginal_probabilities(0, 0)

    def sweep_grid_zero_probabilities(
        self,
        circuit: QuantumCircuit,
        parameters: Sequence,
        bindings,
        shots: Optional[int] = None,
        tile_plan: Optional[TilePlan] = None,
    ) -> np.ndarray:
        """Whole-grid compile-once sweep under the device noise model.

        The symbolic representative transpiles **once** through
        :meth:`~repro.quantum.transpiler.TranspileCache.symbolic_template`
        (no slot twin — the circuit's own parameters are the slots) and the
        cached template's compiled program executes the whole bindings grid
        tile by tile.  No per-sample circuit is constructed, bound or
        transpiled anywhere; one sweep is one provider job submission (a
        single queue wait), with every grid element still ledgered
        individually so job accounting matches the per-sample paths.
        """
        shots = self._resolve_shots(shots)
        bindings = np.asarray(bindings, dtype=float)
        if bindings.ndim != 2:
            raise BackendError(
                f"{self.name}: grid bindings must be 2-D (elements, columns), "
                f"got shape {bindings.shape}"
            )
        if bindings.shape[0] == 0:
            return np.zeros(0)
        if circuit.num_qubits > self.properties.num_qubits:
            raise BackendError(
                f"{self.name} has {self.properties.num_qubits} qubits, circuit "
                f"needs {circuit.num_qubits}"
            )
        self._queue_wait()
        local_map = self._local_coupling_map(circuit.num_qubits)
        entry = self._transpile_cache.symbolic_template(
            circuit, parameters, local_map
        )
        program = entry.ensure_program(
            noise_model=getattr(self._simulator, "noise_model", None)
        )
        stats = self._transpile_stats(entry.result)
        self.last_transpile_stats = stats
        readout = self._simulator.run_sweep_program(
            program, bindings, shots=shots, tile_plan=tile_plan
        )
        for element in range(bindings.shape[0]):
            result = SimulationResult(
                circuit_name=f"{circuit.name}_basis_routed",
                probabilities=readout.probabilities[element],
                counts=readout.counts[element] if readout.counts is not None else None,
                shots=shots,
                metadata={
                    "engine": self._simulator.name,
                    "noisy": not self.properties.noise_model.is_ideal,
                    "batched": True,
                    "batch_size": int(bindings.shape[0]),
                    "program_sweep": True,
                    "grid_sweep": True,
                },
            )
            self._attach_metadata(result, stats)
            self._record_job(result)
        return readout.marginal_probabilities(0, 0)

    def _record_job(self, result: SimulationResult) -> None:
        """Per-job accounting hook, called once per executed circuit.

        The base class keeps no job records; the simulated providers in
        :mod:`repro.hardware` override this to append to their
        :class:`~repro.hardware.job.JobLedger`, so single runs and batches
        share one accounting path.
        """
