"""Circuit simulators.

Two execution engines are provided:

* :class:`StatevectorSimulator` — pure-state evolution; supports exact
  probability read-out (``shots=None``) or multinomial shot sampling.  This is
  the engine behind all "simulator" results in the paper's figures.
* :class:`DensityMatrixSimulator` — mixed-state evolution with a
  :class:`~repro.quantum.noise.NoiseModel`; the engine behind the simulated
  IBM-Q / IonQ hardware backends (Figs 11 and 12).

Both return a :class:`SimulationResult` holding the final state, exact
probabilities of the measured classical bits, and (when shots are requested)
a :class:`~repro.quantum.measurement.Counts` histogram.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.measurement import Counts, counts_from_probabilities
from repro.quantum.noise import NoiseModel
from repro.quantum.statevector import Statevector
from repro.utils.rng import RandomState, ensure_rng


@dataclasses.dataclass
class SimulationResult:
    """Outcome of simulating one circuit.

    Attributes
    ----------
    circuit_name:
        Name of the executed circuit.
    probabilities:
        Exact probabilities over the measured classical bits, indexed by the
        classical bit string (bit 0 first).  Empty when the circuit has no
        measurements.
    counts:
        Sampled histogram; ``None`` when ``shots`` was ``None``.
    statevector:
        Final pure state (statevector engine only, measurement-free circuits).
    density_matrix:
        Final mixed state (density-matrix engine only).
    shots:
        Number of shots sampled, or ``None`` for exact execution.
    metadata:
        Engine- and backend-specific extras (noise model name, queue delay...).
    """

    circuit_name: str
    probabilities: Dict[str, float]
    counts: Optional[Counts] = None
    statevector: Optional[Statevector] = None
    density_matrix: Optional[DensityMatrix] = None
    shots: Optional[int] = None
    metadata: Dict[str, object] = dataclasses.field(default_factory=dict)

    def probability_of(self, bitstring: str) -> float:
        """Probability of a classical outcome, preferring sampled counts."""
        if self.counts is not None:
            return self.counts.probability(bitstring)
        return self.probabilities.get(bitstring, 0.0)

    def marginal_probability(self, clbit: int, value: int = 1) -> float:
        """Probability that classical bit ``clbit`` reads ``value``."""
        if self.counts is not None:
            return self.counts.marginal_probability(clbit, value)
        total = 0.0
        for key, prob in self.probabilities.items():
            if int(key[clbit]) == value:
                total += prob
        return total


def _check_deferred_measurement(
    instruction, measured: set, engine_name: str
) -> None:
    """Reject circuits the deferred-measurement strategy cannot represent.

    Both engines defer every measurement to the end of the circuit: unitary
    evolution runs first, then the joint distribution of the measured qubits
    is read out once.  That is only sound when no operation touches a qubit
    *after* it has been measured and no qubit is measured twice — either case
    would silently corrupt the reported joint distribution (duplicate
    marginal axes, or gates leaking into the pre-measurement state).
    """
    if instruction.is_measurement:
        duplicates = measured.intersection(instruction.qubits)
        if duplicates:
            raise SimulationError(
                f"{engine_name}: qubit(s) {sorted(duplicates)} measured more than "
                "once; the deferred-measurement strategy supports a single "
                "measurement per qubit"
            )
        return
    touched = measured.intersection(instruction.qubits)
    if touched:
        raise SimulationError(
            f"{engine_name}: instruction '{instruction.name}' acts on already-"
            f"measured qubit(s) {sorted(touched)}; the deferred-measurement "
            "strategy cannot apply operations after a measurement"
        )


def _exact_clbit_probabilities(
    probabilities: np.ndarray,
    measured_qubits: Sequence[int],
    clbits: Sequence[int],
    num_clbits: int,
) -> Dict[str, float]:
    """Re-index qubit-ordered probabilities into classical-bit-ordered strings."""
    width = len(measured_qubits)
    out: Dict[str, float] = {}
    for index, prob in enumerate(probabilities):
        if prob <= 0.0:
            continue
        bits_by_qubit = format(index, f"0{width}b")
        clbit_string = ["0"] * num_clbits
        for position, clbit in enumerate(clbits):
            clbit_string[clbit] = bits_by_qubit[position]
        key = "".join(clbit_string)
        out[key] = out.get(key, 0.0) + float(prob)
    return out


class StatevectorSimulator:
    """Exact pure-state simulator.

    Parameters
    ----------
    seed:
        Seed for shot sampling (exact probabilities are deterministic).
    """

    name = "statevector_simulator"

    def __init__(self, seed: RandomState = None) -> None:
        self._rng = ensure_rng(seed)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = None,
        initial_state: Optional[Statevector] = None,
    ) -> SimulationResult:
        """Execute ``circuit`` and return a :class:`SimulationResult`.

        Measurements are deferred: the simulator evolves all unitary gates,
        computes the exact joint distribution of the measured qubits, and
        (optionally) samples ``shots`` outcomes from it.  Mid-circuit resets
        of *unmeasured-so-far* qubits are applied by projective sampling.
        Circuits that deferral cannot represent — a gate or reset on an
        already-measured qubit, or measuring the same qubit twice — raise
        :class:`~repro.exceptions.SimulationError`.
        """
        if circuit.num_parameters:
            unbound = [p.name for p in circuit.parameters]
            raise SimulationError(f"circuit has unbound parameters: {unbound}")
        state = initial_state.copy() if initial_state is not None else Statevector(circuit.num_qubits)
        if state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"initial state has {state.num_qubits} qubits, circuit has {circuit.num_qubits}"
            )

        measured_qubits: List[int] = []
        measured_set: set = set()
        clbits: List[int] = []
        for instruction in circuit.instructions:
            if instruction.name == "barrier":
                continue
            _check_deferred_measurement(instruction, measured_set, self.name)
            if instruction.is_measurement:
                measured_qubits.extend(instruction.qubits)
                measured_set.update(instruction.qubits)
                clbits.extend(instruction.clbits)
                continue
            if instruction.name == "reset":
                state.reset(instruction.qubits[0], rng=self._rng)
                continue
            state.apply_instruction(instruction)

        probabilities: Dict[str, float] = {}
        counts: Optional[Counts] = None
        if measured_qubits:
            joint = state.probabilities(measured_qubits)
            probabilities = _exact_clbit_probabilities(
                joint, measured_qubits, clbits, circuit.num_clbits
            )
            if shots is not None:
                counts = counts_from_probabilities(
                    probabilities, shots, rng=self._rng, num_bits=circuit.num_clbits
                )
        elif shots is not None:
            raise SimulationError("cannot sample shots from a circuit without measurements")

        return SimulationResult(
            circuit_name=circuit.name,
            probabilities=probabilities,
            counts=counts,
            statevector=state,
            shots=shots,
            metadata={"engine": self.name},
        )

    def statevector(self, circuit: QuantumCircuit) -> Statevector:
        """Convenience: final statevector of a measurement-free circuit."""
        stripped = circuit.remove_final_measurements()
        return self.run(stripped).statevector


class DensityMatrixSimulator:
    """Mixed-state simulator with optional gate and readout noise."""

    name = "density_matrix_simulator"

    def __init__(self, noise_model: Optional[NoiseModel] = None, seed: RandomState = None) -> None:
        self.noise_model = noise_model if noise_model is not None else NoiseModel.ideal()
        self._rng = ensure_rng(seed)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = 1024,
        initial_state: Optional[DensityMatrix] = None,
    ) -> SimulationResult:
        """Execute ``circuit`` under the configured noise model."""
        if circuit.num_parameters:
            unbound = [p.name for p in circuit.parameters]
            raise SimulationError(f"circuit has unbound parameters: {unbound}")
        state = initial_state.copy() if initial_state is not None else DensityMatrix(circuit.num_qubits)
        if state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"initial state has {state.num_qubits} qubits, circuit has {circuit.num_qubits}"
            )

        measured_qubits: List[int] = []
        measured_set: set = set()
        clbits: List[int] = []
        for instruction in circuit.instructions:
            if instruction.name == "barrier":
                continue
            _check_deferred_measurement(instruction, measured_set, self.name)
            if instruction.is_measurement:
                measured_qubits.extend(instruction.qubits)
                measured_set.update(instruction.qubits)
                clbits.extend(instruction.clbits)
                continue
            if instruction.name == "reset":
                state.reset(instruction.qubits[0], rng=self._rng)
                continue
            state.apply_instruction(instruction)
            for channel in self.noise_model.gate_channels(instruction.name, instruction.num_qubits):
                channel_width = int(np.log2(np.asarray(channel[0]).shape[0]))
                if channel_width == instruction.num_qubits:
                    state.apply_kraus(channel, instruction.qubits)
                elif channel_width == 1:
                    for qubit in instruction.qubits:
                        state.apply_kraus(channel, (qubit,))
                else:
                    raise SimulationError(
                        f"noise channel width {channel_width} incompatible with gate "
                        f"'{instruction.name}' on {instruction.num_qubits} qubit(s)"
                    )

        probabilities: Dict[str, float] = {}
        counts: Optional[Counts] = None
        if measured_qubits:
            joint = state.probabilities(measured_qubits)
            joint = self._apply_readout_error(joint, measured_qubits)
            probabilities = _exact_clbit_probabilities(
                joint, measured_qubits, clbits, circuit.num_clbits
            )
            if shots is not None:
                counts = counts_from_probabilities(
                    probabilities, shots, rng=self._rng, num_bits=circuit.num_clbits
                )
        elif shots is not None:
            raise SimulationError("cannot sample shots from a circuit without measurements")

        return SimulationResult(
            circuit_name=circuit.name,
            probabilities=probabilities,
            counts=counts,
            density_matrix=state,
            shots=shots,
            metadata={"engine": self.name, "noisy": not self.noise_model.is_ideal},
        )

    def _apply_readout_error(
        self, joint: np.ndarray, measured_qubits: Sequence[int]
    ) -> np.ndarray:
        """Convolve the joint outcome distribution with per-qubit readout error."""
        width = len(measured_qubits)
        tensor = np.asarray(joint, dtype=float).reshape((2,) * width)
        for axis, qubit in enumerate(measured_qubits):
            error = self.noise_model.readout_error(qubit)
            if error is None:
                continue
            confusion = error.confusion_matrix()
            tensor = np.tensordot(confusion, tensor, axes=([1], [axis]))
            tensor = np.moveaxis(tensor, 0, axis)
        return tensor.reshape(-1)
