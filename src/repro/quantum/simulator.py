"""Circuit simulators.

Two execution engines are provided:

* :class:`StatevectorSimulator` — pure-state evolution; supports exact
  probability read-out (``shots=None``) or multinomial shot sampling.  This is
  the engine behind all "simulator" results in the paper's figures.
* :class:`DensityMatrixSimulator` — mixed-state evolution with a
  :class:`~repro.quantum.noise.NoiseModel`; the engine behind the simulated
  IBM-Q / IonQ hardware backends (Figs 11 and 12).

Both return a :class:`SimulationResult` holding the final state, exact
probabilities of the measured classical bits, and (when shots are requested)
a :class:`~repro.quantum.measurement.Counts` histogram.

Both engines additionally execute whole *batches* of structure-sharing
circuits in one vectorised pass (:meth:`StatevectorSimulator.run_batch` and
:meth:`DensityMatrixSimulator.run_batch`): a parameter-shift sweep of
SWAP-test discriminators differs only in rotation angles, so the shared gate
skeleton is evolved once — as a
:class:`~repro.quantum.batched.BatchedStatevector` on the pure-state engine,
or as a :class:`~repro.quantum.batched_density.BatchedDensityMatrix` (with
each noise channel resolved once per gate and applied across the whole batch)
on the mixed-state engine — and the per-circuit ancilla statistics are
sampled from a single stacked RNG call.  The batched results match the
per-circuit loop — exactly for probabilities, and draw-for-draw for sampled
counts under a shared seed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.measurement import (
    Counts,
    counts_from_probabilities,
    normalize_outcome_probabilities,
)
from repro.quantum.noise import NoiseModel
from repro.quantum.statevector import Statevector
from repro.utils.rng import RandomState, ensure_rng


@dataclasses.dataclass
class SimulationResult:
    """Outcome of simulating one circuit.

    Attributes
    ----------
    circuit_name:
        Name of the executed circuit.
    probabilities:
        Exact probabilities over the measured classical bits, indexed by the
        classical bit string (bit 0 first).  Empty when the circuit has no
        measurements.
    counts:
        Sampled histogram; ``None`` when ``shots`` was ``None``.
    statevector:
        Final pure state (statevector engine only, measurement-free circuits).
    density_matrix:
        Final mixed state (density-matrix engine only).
    shots:
        Number of shots sampled, or ``None`` for exact execution.
    metadata:
        Engine- and backend-specific extras (noise model name, queue delay...).
    """

    circuit_name: str
    probabilities: Dict[str, float]
    counts: Optional[Counts] = None
    statevector: Optional[Statevector] = None
    density_matrix: Optional[DensityMatrix] = None
    shots: Optional[int] = None
    metadata: Dict[str, object] = dataclasses.field(default_factory=dict)

    def probability_of(self, bitstring: str) -> float:
        """Probability of a classical outcome, preferring sampled counts."""
        if self.counts is not None:
            return self.counts.probability(bitstring)
        return self.probabilities.get(bitstring, 0.0)

    def marginal_probability(self, clbit: int, value: int = 1) -> float:
        """Probability that classical bit ``clbit`` reads ``value``."""
        if self.counts is not None:
            return self.counts.marginal_probability(clbit, value)
        total = 0.0
        for key, prob in self.probabilities.items():
            if int(key[clbit]) == value:
                total += prob
        return total


def _check_deferred_measurement(
    instruction, measured: set, engine_name: str
) -> None:
    """Reject circuits the deferred-measurement strategy cannot represent.

    Both engines defer every measurement to the end of the circuit: unitary
    evolution runs first, then the joint distribution of the measured qubits
    is read out once.  That is only sound when no operation touches a qubit
    *after* it has been measured and no qubit is measured twice — either case
    would silently corrupt the reported joint distribution (duplicate
    marginal axes, or gates leaking into the pre-measurement state).
    """
    if instruction.is_measurement:
        duplicates = measured.intersection(instruction.qubits)
        if duplicates:
            raise SimulationError(
                f"{engine_name}: qubit(s) {sorted(duplicates)} measured more than "
                "once; the deferred-measurement strategy supports a single "
                "measurement per qubit"
            )
        return
    touched = measured.intersection(instruction.qubits)
    if touched:
        raise SimulationError(
            f"{engine_name}: instruction '{instruction.name}' acts on already-"
            f"measured qubit(s) {sorted(touched)}; the deferred-measurement "
            "strategy cannot apply operations after a measurement"
        )


def _exact_clbit_probabilities(
    probabilities: np.ndarray,
    measured_qubits: Sequence[int],
    clbits: Sequence[int],
    num_clbits: int,
) -> Dict[str, float]:
    """Re-index qubit-ordered probabilities into classical-bit-ordered strings."""
    width = len(measured_qubits)
    out: Dict[str, float] = {}
    for index, prob in enumerate(probabilities):
        if prob <= 0.0:
            continue
        bits_by_qubit = format(index, f"0{width}b")
        clbit_string = ["0"] * num_clbits
        for position, clbit in enumerate(clbits):
            clbit_string[clbit] = bits_by_qubit[position]
        key = "".join(clbit_string)
        out[key] = out.get(key, 0.0) + float(prob)
    return out


def _shares_structure(
    circuits: Sequence[QuantumCircuit], per_circuit: Sequence[tuple]
) -> bool:
    """Whether every circuit has the same vectorisable gate skeleton.

    Structure sharing means identical width, identical ordered
    (name, qubits, clbits) sequences, fully bound parameters, and no resets
    (projective resets need per-element RNG draws, which the vectorised
    paths do not model).  ``per_circuit`` carries each circuit's instruction
    tuple, fetched once by the caller.  Shared by both engines' ``run_batch``
    so they accept exactly the same sweeps.
    """
    reference = per_circuit[0]
    if any(inst.name == "reset" or inst.is_parameterized for inst in reference):
        return False
    for circuit, instructions in zip(circuits[1:], per_circuit[1:]):
        if (
            circuit.num_qubits != circuits[0].num_qubits
            or circuit.num_clbits != circuits[0].num_clbits
        ):
            return False
        if len(instructions) != len(reference):
            return False
        for inst, ref in zip(instructions, reference):
            if (
                inst.name != ref.name
                or inst.qubits != ref.qubits
                or inst.clbits != ref.clbits
                or inst.is_parameterized
            ):
                return False
    return True


def _sweep_gate_matrix(
    per_circuit: Sequence[tuple], index: int, instruction, batch: int
) -> np.ndarray:
    """Gate matrix for position ``index`` of a structure-sharing sweep.

    Returns a shared ``(2**k, 2**k)`` matrix when the gate is parameter-free
    or every circuit binds identical angles, and a per-element
    ``(batch, 2**k, 2**k)`` stack otherwise.  Shared by the statevector and
    density-matrix batch paths so both engines build bit-identical gate
    stacks for the same sweep.
    """
    from repro.quantum import gates as gate_library

    if not instruction.params:
        return gate_library.gate_matrix(instruction.name)
    rows = [per_circuit[element][index].params for element in range(batch)]
    if all(row == rows[0] for row in rows[1:]):
        return gate_library.gate_matrix(instruction.name, *(float(p) for p in rows[0]))
    columns = np.array(rows, dtype=float)
    return gate_library.gate_matrix_batch(
        instruction.name, *(columns[:, j] for j in range(columns.shape[1]))
    )


def _sample_counts_batch(
    rng: np.random.Generator,
    probabilities_per_element: Sequence[Dict[str, float]],
    shots: int,
) -> List[Counts]:
    """Sample counts for every batch element, matching the loop's RNG stream.

    When all elements expose the same outcome keys (the common case — a
    SWAP-test sweep always yields the ``{"0", "1"}`` pair), all elements are
    drawn with one stacked multinomial call; NumPy consumes the bit generator
    row by row, so the draws are identical to sequential
    :func:`~repro.quantum.measurement.counts_from_probabilities` calls.
    Heterogeneous key sets (some element has an exactly-zero outcome that the
    exact read-out dropped) fall back to the sequential path to keep the
    stream aligned with the per-circuit loop.  Shared by both engines'
    ``run_batch`` so the seed-identity guarantee has a single implementation.
    """
    key_sets = [tuple(probs.keys()) for probs in probabilities_per_element]
    if any(key_set != key_sets[0] for key_set in key_sets[1:]):
        return [
            counts_from_probabilities(probs, shots, rng=rng)
            for probs in probabilities_per_element
        ]
    keys = key_sets[0]
    pvals = normalize_outcome_probabilities(
        [[probs[key] for key in keys] for probs in probabilities_per_element]
    )
    samples = rng.multinomial(shots, pvals)
    return [
        Counts({key: int(count) for key, count in zip(keys, row) if count > 0})
        for row in samples
    ]


class StatevectorSimulator:
    """Exact pure-state simulator.

    Parameters
    ----------
    seed:
        Seed for shot sampling (exact probabilities are deterministic).
    """

    name = "statevector_simulator"

    def __init__(self, seed: RandomState = None) -> None:
        self._rng = ensure_rng(seed)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = None,
        initial_state: Optional[Statevector] = None,
    ) -> SimulationResult:
        """Execute ``circuit`` and return a :class:`SimulationResult`.

        Measurements are deferred: the simulator evolves all unitary gates,
        computes the exact joint distribution of the measured qubits, and
        (optionally) samples ``shots`` outcomes from it.  Mid-circuit resets
        of *unmeasured-so-far* qubits are applied by projective sampling.
        Circuits that deferral cannot represent — a gate or reset on an
        already-measured qubit, or measuring the same qubit twice — raise
        :class:`~repro.exceptions.SimulationError`.
        """
        if circuit.num_parameters:
            unbound = [p.name for p in circuit.parameters]
            raise SimulationError(f"circuit has unbound parameters: {unbound}")
        state = initial_state.copy() if initial_state is not None else Statevector(circuit.num_qubits)
        if state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"initial state has {state.num_qubits} qubits, circuit has {circuit.num_qubits}"
            )

        measured_qubits: List[int] = []
        measured_set: set = set()
        clbits: List[int] = []
        for instruction in circuit.instructions:
            if instruction.name == "barrier":
                continue
            _check_deferred_measurement(instruction, measured_set, self.name)
            if instruction.is_measurement:
                measured_qubits.extend(instruction.qubits)
                measured_set.update(instruction.qubits)
                clbits.extend(instruction.clbits)
                continue
            if instruction.name == "reset":
                state.reset(instruction.qubits[0], rng=self._rng)
                continue
            state.apply_instruction(instruction)

        probabilities: Dict[str, float] = {}
        counts: Optional[Counts] = None
        if measured_qubits:
            joint = state.probabilities(measured_qubits)
            probabilities = _exact_clbit_probabilities(
                joint, measured_qubits, clbits, circuit.num_clbits
            )
            if shots is not None:
                counts = counts_from_probabilities(
                    probabilities, shots, rng=self._rng, num_bits=circuit.num_clbits
                )
        elif shots is not None:
            raise SimulationError("cannot sample shots from a circuit without measurements")

        return SimulationResult(
            circuit_name=circuit.name,
            probabilities=probabilities,
            counts=counts,
            statevector=state,
            shots=shots,
            metadata={"engine": self.name},
        )

    def statevector(self, circuit: QuantumCircuit) -> Statevector:
        """Convenience: final statevector of a measurement-free circuit."""
        stripped = circuit.remove_final_measurements()
        return self.run(stripped).statevector

    # ------------------------------------------------------------------ #
    # Batched execution
    # ------------------------------------------------------------------ #
    def run_batch(
        self, circuits: Sequence[QuantumCircuit], shots: Optional[int] = None
    ) -> List[SimulationResult]:
        """Execute a batch of bound circuits, vectorising when they share structure.

        When every circuit has the same gate skeleton (same instruction
        sequence over the same qubits, angles free to differ — the shape of a
        parameter-shift sweep), the whole batch evolves as one
        :class:`~repro.quantum.batched.BatchedStatevector` pass: shared gates
        apply a single matrix, parameterised gates a ``(batch, 2**k, 2**k)``
        stack, and shot sampling for every element happens in one stacked
        multinomial draw.  The results are equivalent to looping
        :meth:`run` — bit strings, probabilities, and (because a stacked
        multinomial consumes the generator exactly like per-row draws)
        seed-identical counts.  The counts guarantee holds whenever the
        batched evolution reproduces the loop's probabilities bit-for-bit;
        vectorised einsum evolution can differ at the last ULP, which would
        only flip a draw if it landed exactly on a sampling boundary.

        Circuits with differing structures, resets, or unbound parameters
        fall back to the per-circuit loop transparently.
        """
        from repro.quantum.batched import BatchedStatevector

        circuits = list(circuits)
        if not circuits:
            # Mirror the loop semantics of ``Backend.run_batch``: an empty
            # sweep yields an empty result list on every backend.
            return []
        if shots is not None and shots <= 0:
            raise SimulationError(f"shots must be positive or None, got {shots}")
        per_circuit = [circuit.instructions for circuit in circuits]
        if not _shares_structure(circuits, per_circuit):
            return [self.run(circuit, shots=shots) for circuit in circuits]

        reference = circuits[0]
        batch = len(circuits)
        state = BatchedStatevector(batch, reference.num_qubits)

        measured_qubits: List[int] = []
        measured_set: set = set()
        clbits: List[int] = []
        for index, instruction in enumerate(per_circuit[0]):
            if instruction.name == "barrier":
                continue
            _check_deferred_measurement(instruction, measured_set, self.name)
            if instruction.is_measurement:
                measured_qubits.extend(instruction.qubits)
                measured_set.update(instruction.qubits)
                clbits.extend(instruction.clbits)
                continue
            state.apply_matrix(
                _sweep_gate_matrix(per_circuit, index, instruction, batch),
                instruction.qubits,
            )

        probabilities_per_element: List[Dict[str, float]] = [{} for _ in range(batch)]
        counts_per_element: List[Optional[Counts]] = [None] * batch
        if measured_qubits:
            joint = state.probabilities(measured_qubits)
            probabilities_per_element = [
                _exact_clbit_probabilities(
                    joint[element], measured_qubits, clbits, reference.num_clbits
                )
                for element in range(batch)
            ]
            if shots is not None:
                counts_per_element = _sample_counts_batch(
                    self._rng, probabilities_per_element, shots
                )
        elif shots is not None:
            raise SimulationError("cannot sample shots from a circuit without measurements")

        return [
            SimulationResult(
                circuit_name=circuits[element].name,
                probabilities=probabilities_per_element[element],
                counts=counts_per_element[element],
                statevector=state.statevector(element),
                shots=shots,
                metadata={"engine": self.name, "batched": True, "batch_size": batch},
            )
            for element in range(batch)
        ]


class DensityMatrixSimulator:
    """Mixed-state simulator with optional gate and readout noise.

    Like the statevector engine, whole batches of structure-sharing circuits
    execute in one vectorised pass (:meth:`run_batch`): the sweep evolves as
    a single :class:`~repro.quantum.batched_density.BatchedDensityMatrix`,
    each gate's noise channels are resolved once and applied across the whole
    batch, the readout-error convolution is vectorised over the batch axis,
    and shot sampling happens in one stacked multinomial draw that consumes
    the RNG exactly like the per-circuit loop.
    """

    name = "density_matrix_simulator"

    def __init__(self, noise_model: Optional[NoiseModel] = None, seed: RandomState = None) -> None:
        self.noise_model = noise_model if noise_model is not None else NoiseModel.ideal()
        self._rng = ensure_rng(seed)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = 1024,
        initial_state: Optional[DensityMatrix] = None,
    ) -> SimulationResult:
        """Execute ``circuit`` under the configured noise model."""
        if circuit.num_parameters:
            unbound = [p.name for p in circuit.parameters]
            raise SimulationError(f"circuit has unbound parameters: {unbound}")
        state = initial_state.copy() if initial_state is not None else DensityMatrix(circuit.num_qubits)
        if state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"initial state has {state.num_qubits} qubits, circuit has {circuit.num_qubits}"
            )

        measured_qubits, clbits = self._evolve_instructions(
            circuit.instructions,
            state,
            apply_gate=lambda index, instruction: state.apply_instruction(instruction),
            on_reset=lambda instruction: state.reset(
                instruction.qubits[0], rng=self._rng
            ),
        )

        probabilities: Dict[str, float] = {}
        counts: Optional[Counts] = None
        if measured_qubits:
            joint = state.probabilities(measured_qubits)
            joint = self._apply_readout_error(joint, measured_qubits)
            probabilities = _exact_clbit_probabilities(
                joint, measured_qubits, clbits, circuit.num_clbits
            )
            if shots is not None:
                counts = counts_from_probabilities(
                    probabilities, shots, rng=self._rng, num_bits=circuit.num_clbits
                )
        elif shots is not None:
            raise SimulationError("cannot sample shots from a circuit without measurements")

        return SimulationResult(
            circuit_name=circuit.name,
            probabilities=probabilities,
            counts=counts,
            density_matrix=state,
            shots=shots,
            metadata={"engine": self.name, "noisy": not self.noise_model.is_ideal},
        )

    def _evolve_instructions(
        self,
        instructions: Sequence,
        state,
        apply_gate,
        on_reset=None,
    ) -> Tuple[List[int], List[int]]:
        """Walk a circuit's instructions, evolving ``state`` under the noise model.

        The single implementation behind :meth:`run` and the vectorised
        :meth:`run_batch` — deferred-measurement bookkeeping, gate
        application, and the per-gate noise-channel dispatch (whole-gate
        width vs. per-qubit) must stay identical between the two paths for
        the loop/batch equivalence guarantee to hold.  ``state`` is either a
        :class:`DensityMatrix` or a
        :class:`~repro.quantum.batched_density.BatchedDensityMatrix`
        (``apply_kraus`` is the shared surface); ``apply_gate(index,
        instruction)`` applies one gate to it; ``on_reset`` handles resets
        (``None`` on the batch path, whose structure check excludes them).
        Returns the measured qubits and their classical bits, in order.
        """
        measured_qubits: List[int] = []
        measured_set: set = set()
        clbits: List[int] = []
        channel_plans: Dict[Tuple[str, int], list] = {}
        for index, instruction in enumerate(instructions):
            if instruction.name == "barrier":
                continue
            _check_deferred_measurement(instruction, measured_set, self.name)
            if instruction.is_measurement:
                measured_qubits.extend(instruction.qubits)
                measured_set.update(instruction.qubits)
                clbits.extend(instruction.clbits)
                continue
            if instruction.name == "reset":
                if on_reset is None:
                    raise SimulationError(
                        "the vectorised batch path cannot apply resets"
                    )
                on_reset(instruction)
                continue
            apply_gate(index, instruction)
            for channel, width in self._gate_channel_plan(
                channel_plans, instruction.name, instruction.num_qubits
            ):
                if width == instruction.num_qubits:
                    state.apply_kraus(channel, instruction.qubits)
                else:
                    for qubit in instruction.qubits:
                        state.apply_kraus(channel, (qubit,))
        return measured_qubits, clbits

    def _gate_channel_plan(
        self,
        plans: Dict[Tuple[str, int], list],
        gate_name: str,
        gate_qubits: int,
    ) -> list:
        """Noise channels for one gate position, resolved and width-checked once.

        ``plans`` memoises the per-(gate name, qubit count) lookup for the
        duration of one :meth:`run` / :meth:`run_batch` call, hoisting the
        ``gate_channels`` list assembly and the channel-width computation out
        of the per-gate (and, in the batch path, per-circuit) inner loop.
        Each entry pairs a channel's Kraus operators with its qubit width.
        """
        key = (gate_name, gate_qubits)
        plan = plans.get(key)
        if plan is None:
            plan = []
            for channel in self.noise_model.gate_channels(gate_name, gate_qubits):
                channel_width = int(np.log2(np.asarray(channel[0]).shape[0]))
                if channel_width not in (gate_qubits, 1):
                    raise SimulationError(
                        f"noise channel width {channel_width} incompatible with gate "
                        f"'{gate_name}' on {gate_qubits} qubit(s)"
                    )
                plan.append((channel, channel_width))
            plans[key] = plan
        return plan

    def _apply_readout_error(
        self, joint: np.ndarray, measured_qubits: Sequence[int]
    ) -> np.ndarray:
        """Convolve outcome distributions with per-qubit readout error.

        Accepts a single ``(2**w,)`` distribution or a stacked
        ``(batch, 2**w)`` array; the confusion matrices contract over the
        outcome axes only, so the batched convolution applies every element's
        error in one :func:`numpy.tensordot` per measured qubit.
        """
        joint = np.asarray(joint, dtype=float)
        single = joint.ndim == 1
        width = len(measured_qubits)
        batch = 1 if single else joint.shape[0]
        tensor = joint.reshape((batch,) + (2,) * width)
        for axis, qubit in enumerate(measured_qubits):
            error = self.noise_model.readout_error(qubit)
            if error is None:
                continue
            confusion = error.confusion_matrix()
            tensor = np.tensordot(confusion, tensor, axes=([1], [axis + 1]))
            tensor = np.moveaxis(tensor, 0, axis + 1)
        flattened = tensor.reshape(batch, -1)
        return flattened[0] if single else flattened

    # ------------------------------------------------------------------ #
    # Batched execution
    # ------------------------------------------------------------------ #
    def run_batch(
        self, circuits: Sequence[QuantumCircuit], shots: Optional[int] = 1024
    ) -> List[SimulationResult]:
        """Execute a batch of bound circuits under the noise model, vectorising
        when they share structure.

        When every circuit has the same gate skeleton (same instruction
        sequence over the same qubits, angles free to differ — the shape of a
        parameter-shift sweep), the whole batch evolves as one
        :class:`~repro.quantum.batched_density.BatchedDensityMatrix` pass:
        shared gates and noise channels apply a single operator stackwide,
        parameterised gates a ``(batch, 2**k, 2**k)`` stack, the readout-error
        convolution runs over the whole batch at once, and shot sampling for
        every element happens in one stacked multinomial draw.  The results
        are equivalent to looping :meth:`run` — bit strings, probabilities,
        and (because a stacked multinomial consumes the generator exactly like
        per-circuit draws) seed-identical counts.  The counts guarantee holds
        whenever the batched evolution reproduces the loop's probabilities
        bit-for-bit; vectorised einsum evolution can differ at the last ULP,
        which would only flip a draw if it landed exactly on a sampling
        boundary.

        Circuits with differing structures, resets, or unbound parameters
        fall back to the per-circuit loop transparently.
        """
        from repro.quantum.batched_density import BatchedDensityMatrix

        circuits = list(circuits)
        if not circuits:
            # Mirror the loop semantics of ``Backend.run_batch``: an empty
            # sweep yields an empty result list on every backend.
            return []
        if shots is not None and shots <= 0:
            raise SimulationError(f"shots must be positive or None, got {shots}")
        per_circuit = [circuit.instructions for circuit in circuits]
        if not _shares_structure(circuits, per_circuit):
            return [self.run(circuit, shots=shots) for circuit in circuits]

        reference = circuits[0]
        batch = len(circuits)
        state = BatchedDensityMatrix(batch, reference.num_qubits)

        measured_qubits, clbits = self._evolve_instructions(
            per_circuit[0],
            state,
            apply_gate=lambda index, instruction: state.apply_matrix(
                _sweep_gate_matrix(per_circuit, index, instruction, batch),
                instruction.qubits,
            ),
        )

        probabilities_per_element: List[Dict[str, float]] = [{} for _ in range(batch)]
        counts_per_element: List[Optional[Counts]] = [None] * batch
        if measured_qubits:
            joint = state.probabilities(measured_qubits)
            joint = self._apply_readout_error(joint, measured_qubits)
            probabilities_per_element = [
                _exact_clbit_probabilities(
                    joint[element], measured_qubits, clbits, reference.num_clbits
                )
                for element in range(batch)
            ]
            if shots is not None:
                counts_per_element = _sample_counts_batch(
                    self._rng, probabilities_per_element, shots
                )
        elif shots is not None:
            raise SimulationError("cannot sample shots from a circuit without measurements")

        return [
            SimulationResult(
                circuit_name=circuits[element].name,
                probabilities=probabilities_per_element[element],
                counts=counts_per_element[element],
                density_matrix=state.density_matrix(element),
                shots=shots,
                metadata={
                    "engine": self.name,
                    "noisy": not self.noise_model.is_ideal,
                    "batched": True,
                    "batch_size": batch,
                },
            )
            for element in range(batch)
        ]
