"""Circuit simulators.

Two execution engines are provided:

* :class:`StatevectorSimulator` — pure-state evolution; supports exact
  probability read-out (``shots=None``) or multinomial shot sampling.  This is
  the engine behind all "simulator" results in the paper's figures.
* :class:`DensityMatrixSimulator` — mixed-state evolution with a
  :class:`~repro.quantum.noise.NoiseModel`; the engine behind the simulated
  IBM-Q / IonQ hardware backends (Figs 11 and 12).

Both return a :class:`SimulationResult` holding the final state, exact
probabilities of the measured classical bits, and (when shots are requested)
a :class:`~repro.quantum.measurement.Counts` histogram.

The statevector engine additionally executes whole *batches* of
structure-sharing circuits in one vectorised pass
(:meth:`StatevectorSimulator.run_batch`): a parameter-shift sweep of SWAP-test
discriminators differs only in rotation angles, so the shared gate skeleton is
evolved once as a :class:`~repro.quantum.batched.BatchedStatevector` and the
per-circuit ancilla statistics are sampled from a single stacked RNG call.
The batched results match the per-circuit loop — exactly for probabilities,
and draw-for-draw for sampled counts under a shared seed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.measurement import (
    Counts,
    counts_from_probabilities,
    normalize_outcome_probabilities,
)
from repro.quantum.noise import NoiseModel
from repro.quantum.statevector import Statevector
from repro.utils.rng import RandomState, ensure_rng


@dataclasses.dataclass
class SimulationResult:
    """Outcome of simulating one circuit.

    Attributes
    ----------
    circuit_name:
        Name of the executed circuit.
    probabilities:
        Exact probabilities over the measured classical bits, indexed by the
        classical bit string (bit 0 first).  Empty when the circuit has no
        measurements.
    counts:
        Sampled histogram; ``None`` when ``shots`` was ``None``.
    statevector:
        Final pure state (statevector engine only, measurement-free circuits).
    density_matrix:
        Final mixed state (density-matrix engine only).
    shots:
        Number of shots sampled, or ``None`` for exact execution.
    metadata:
        Engine- and backend-specific extras (noise model name, queue delay...).
    """

    circuit_name: str
    probabilities: Dict[str, float]
    counts: Optional[Counts] = None
    statevector: Optional[Statevector] = None
    density_matrix: Optional[DensityMatrix] = None
    shots: Optional[int] = None
    metadata: Dict[str, object] = dataclasses.field(default_factory=dict)

    def probability_of(self, bitstring: str) -> float:
        """Probability of a classical outcome, preferring sampled counts."""
        if self.counts is not None:
            return self.counts.probability(bitstring)
        return self.probabilities.get(bitstring, 0.0)

    def marginal_probability(self, clbit: int, value: int = 1) -> float:
        """Probability that classical bit ``clbit`` reads ``value``."""
        if self.counts is not None:
            return self.counts.marginal_probability(clbit, value)
        total = 0.0
        for key, prob in self.probabilities.items():
            if int(key[clbit]) == value:
                total += prob
        return total


def _check_deferred_measurement(
    instruction, measured: set, engine_name: str
) -> None:
    """Reject circuits the deferred-measurement strategy cannot represent.

    Both engines defer every measurement to the end of the circuit: unitary
    evolution runs first, then the joint distribution of the measured qubits
    is read out once.  That is only sound when no operation touches a qubit
    *after* it has been measured and no qubit is measured twice — either case
    would silently corrupt the reported joint distribution (duplicate
    marginal axes, or gates leaking into the pre-measurement state).
    """
    if instruction.is_measurement:
        duplicates = measured.intersection(instruction.qubits)
        if duplicates:
            raise SimulationError(
                f"{engine_name}: qubit(s) {sorted(duplicates)} measured more than "
                "once; the deferred-measurement strategy supports a single "
                "measurement per qubit"
            )
        return
    touched = measured.intersection(instruction.qubits)
    if touched:
        raise SimulationError(
            f"{engine_name}: instruction '{instruction.name}' acts on already-"
            f"measured qubit(s) {sorted(touched)}; the deferred-measurement "
            "strategy cannot apply operations after a measurement"
        )


def _exact_clbit_probabilities(
    probabilities: np.ndarray,
    measured_qubits: Sequence[int],
    clbits: Sequence[int],
    num_clbits: int,
) -> Dict[str, float]:
    """Re-index qubit-ordered probabilities into classical-bit-ordered strings."""
    width = len(measured_qubits)
    out: Dict[str, float] = {}
    for index, prob in enumerate(probabilities):
        if prob <= 0.0:
            continue
        bits_by_qubit = format(index, f"0{width}b")
        clbit_string = ["0"] * num_clbits
        for position, clbit in enumerate(clbits):
            clbit_string[clbit] = bits_by_qubit[position]
        key = "".join(clbit_string)
        out[key] = out.get(key, 0.0) + float(prob)
    return out


class StatevectorSimulator:
    """Exact pure-state simulator.

    Parameters
    ----------
    seed:
        Seed for shot sampling (exact probabilities are deterministic).
    """

    name = "statevector_simulator"

    def __init__(self, seed: RandomState = None) -> None:
        self._rng = ensure_rng(seed)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = None,
        initial_state: Optional[Statevector] = None,
    ) -> SimulationResult:
        """Execute ``circuit`` and return a :class:`SimulationResult`.

        Measurements are deferred: the simulator evolves all unitary gates,
        computes the exact joint distribution of the measured qubits, and
        (optionally) samples ``shots`` outcomes from it.  Mid-circuit resets
        of *unmeasured-so-far* qubits are applied by projective sampling.
        Circuits that deferral cannot represent — a gate or reset on an
        already-measured qubit, or measuring the same qubit twice — raise
        :class:`~repro.exceptions.SimulationError`.
        """
        if circuit.num_parameters:
            unbound = [p.name for p in circuit.parameters]
            raise SimulationError(f"circuit has unbound parameters: {unbound}")
        state = initial_state.copy() if initial_state is not None else Statevector(circuit.num_qubits)
        if state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"initial state has {state.num_qubits} qubits, circuit has {circuit.num_qubits}"
            )

        measured_qubits: List[int] = []
        measured_set: set = set()
        clbits: List[int] = []
        for instruction in circuit.instructions:
            if instruction.name == "barrier":
                continue
            _check_deferred_measurement(instruction, measured_set, self.name)
            if instruction.is_measurement:
                measured_qubits.extend(instruction.qubits)
                measured_set.update(instruction.qubits)
                clbits.extend(instruction.clbits)
                continue
            if instruction.name == "reset":
                state.reset(instruction.qubits[0], rng=self._rng)
                continue
            state.apply_instruction(instruction)

        probabilities: Dict[str, float] = {}
        counts: Optional[Counts] = None
        if measured_qubits:
            joint = state.probabilities(measured_qubits)
            probabilities = _exact_clbit_probabilities(
                joint, measured_qubits, clbits, circuit.num_clbits
            )
            if shots is not None:
                counts = counts_from_probabilities(
                    probabilities, shots, rng=self._rng, num_bits=circuit.num_clbits
                )
        elif shots is not None:
            raise SimulationError("cannot sample shots from a circuit without measurements")

        return SimulationResult(
            circuit_name=circuit.name,
            probabilities=probabilities,
            counts=counts,
            statevector=state,
            shots=shots,
            metadata={"engine": self.name},
        )

    def statevector(self, circuit: QuantumCircuit) -> Statevector:
        """Convenience: final statevector of a measurement-free circuit."""
        stripped = circuit.remove_final_measurements()
        return self.run(stripped).statevector

    # ------------------------------------------------------------------ #
    # Batched execution
    # ------------------------------------------------------------------ #
    @staticmethod
    def _shares_structure(
        circuits: Sequence[QuantumCircuit], per_circuit: Sequence[tuple]
    ) -> bool:
        """Whether every circuit has the same vectorisable gate skeleton.

        Structure sharing means identical width, identical ordered
        (name, qubits, clbits) sequences, fully bound parameters, and no
        resets (projective resets need per-element RNG draws, which the
        vectorised path does not model).  ``per_circuit`` carries each
        circuit's instruction tuple, fetched once by the caller.
        """
        reference = per_circuit[0]
        if any(inst.name == "reset" or inst.is_parameterized for inst in reference):
            return False
        for circuit, instructions in zip(circuits[1:], per_circuit[1:]):
            if (
                circuit.num_qubits != circuits[0].num_qubits
                or circuit.num_clbits != circuits[0].num_clbits
            ):
                return False
            if len(instructions) != len(reference):
                return False
            for inst, ref in zip(instructions, reference):
                if (
                    inst.name != ref.name
                    or inst.qubits != ref.qubits
                    or inst.clbits != ref.clbits
                    or inst.is_parameterized
                ):
                    return False
        return True

    def run_batch(
        self, circuits: Sequence[QuantumCircuit], shots: Optional[int] = None
    ) -> List[SimulationResult]:
        """Execute a batch of bound circuits, vectorising when they share structure.

        When every circuit has the same gate skeleton (same instruction
        sequence over the same qubits, angles free to differ — the shape of a
        parameter-shift sweep), the whole batch evolves as one
        :class:`~repro.quantum.batched.BatchedStatevector` pass: shared gates
        apply a single matrix, parameterised gates a ``(batch, 2**k, 2**k)``
        stack, and shot sampling for every element happens in one stacked
        multinomial draw.  The results are equivalent to looping
        :meth:`run` — bit strings, probabilities, and (because a stacked
        multinomial consumes the generator exactly like per-row draws)
        seed-identical counts.  The counts guarantee holds whenever the
        batched evolution reproduces the loop's probabilities bit-for-bit;
        vectorised einsum evolution can differ at the last ULP, which would
        only flip a draw if it landed exactly on a sampling boundary.

        Circuits with differing structures, resets, or unbound parameters
        fall back to the per-circuit loop transparently.
        """
        from repro.quantum.batched import BatchedStatevector
        from repro.quantum import gates as gate_library

        circuits = list(circuits)
        if not circuits:
            # Mirror the loop semantics of ``Backend.run_batch``: an empty
            # sweep yields an empty result list on every backend.
            return []
        if shots is not None and shots <= 0:
            raise SimulationError(f"shots must be positive or None, got {shots}")
        per_circuit = [circuit.instructions for circuit in circuits]
        if not self._shares_structure(circuits, per_circuit):
            return [self.run(circuit, shots=shots) for circuit in circuits]

        reference = circuits[0]
        batch = len(circuits)
        state = BatchedStatevector(batch, reference.num_qubits)

        measured_qubits: List[int] = []
        measured_set: set = set()
        clbits: List[int] = []
        for index, instruction in enumerate(per_circuit[0]):
            if instruction.name == "barrier":
                continue
            _check_deferred_measurement(instruction, measured_set, self.name)
            if instruction.is_measurement:
                measured_qubits.extend(instruction.qubits)
                measured_set.update(instruction.qubits)
                clbits.extend(instruction.clbits)
                continue
            if not instruction.params:
                state.apply_matrix(gate_library.gate_matrix(instruction.name), instruction.qubits)
                continue
            rows = [per_circuit[element][index].params for element in range(batch)]
            if all(row == rows[0] for row in rows[1:]):
                matrix = gate_library.gate_matrix(
                    instruction.name, *(float(p) for p in rows[0])
                )
            else:
                columns = np.array(rows, dtype=float)
                matrix = gate_library.gate_matrix_batch(
                    instruction.name, *(columns[:, j] for j in range(columns.shape[1]))
                )
            state.apply_matrix(matrix, instruction.qubits)

        probabilities_per_element: List[Dict[str, float]] = [{} for _ in range(batch)]
        counts_per_element: List[Optional[Counts]] = [None] * batch
        if measured_qubits:
            joint = state.probabilities(measured_qubits)
            probabilities_per_element = [
                _exact_clbit_probabilities(
                    joint[element], measured_qubits, clbits, reference.num_clbits
                )
                for element in range(batch)
            ]
            if shots is not None:
                counts_per_element = self._sample_batch(probabilities_per_element, shots)
        elif shots is not None:
            raise SimulationError("cannot sample shots from a circuit without measurements")

        return [
            SimulationResult(
                circuit_name=circuits[element].name,
                probabilities=probabilities_per_element[element],
                counts=counts_per_element[element],
                statevector=state.statevector(element),
                shots=shots,
                metadata={"engine": self.name, "batched": True, "batch_size": batch},
            )
            for element in range(batch)
        ]

    def _sample_batch(
        self, probabilities_per_element: Sequence[Dict[str, float]], shots: int
    ) -> List[Counts]:
        """Sample counts for every batch element, matching the loop's RNG stream.

        When all elements expose the same outcome keys (the common case — a
        SWAP-test sweep always yields the ``{"0", "1"}`` pair), all elements
        are drawn with one stacked multinomial call; NumPy consumes the bit
        generator row by row, so the draws are identical to sequential
        :func:`~repro.quantum.measurement.counts_from_probabilities` calls.
        Heterogeneous key sets (some element has an exactly-zero outcome that
        the exact read-out dropped) fall back to the sequential path to keep
        the stream aligned with the per-circuit loop.
        """
        key_sets = [tuple(probs.keys()) for probs in probabilities_per_element]
        if any(key_set != key_sets[0] for key_set in key_sets[1:]):
            return [
                counts_from_probabilities(probs, shots, rng=self._rng)
                for probs in probabilities_per_element
            ]
        keys = key_sets[0]
        pvals = normalize_outcome_probabilities(
            [[probs[key] for key in keys] for probs in probabilities_per_element]
        )
        samples = self._rng.multinomial(shots, pvals)
        return [
            Counts({key: int(count) for key, count in zip(keys, row) if count > 0})
            for row in samples
        ]


class DensityMatrixSimulator:
    """Mixed-state simulator with optional gate and readout noise."""

    name = "density_matrix_simulator"

    def __init__(self, noise_model: Optional[NoiseModel] = None, seed: RandomState = None) -> None:
        self.noise_model = noise_model if noise_model is not None else NoiseModel.ideal()
        self._rng = ensure_rng(seed)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = 1024,
        initial_state: Optional[DensityMatrix] = None,
    ) -> SimulationResult:
        """Execute ``circuit`` under the configured noise model."""
        if circuit.num_parameters:
            unbound = [p.name for p in circuit.parameters]
            raise SimulationError(f"circuit has unbound parameters: {unbound}")
        state = initial_state.copy() if initial_state is not None else DensityMatrix(circuit.num_qubits)
        if state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"initial state has {state.num_qubits} qubits, circuit has {circuit.num_qubits}"
            )

        measured_qubits: List[int] = []
        measured_set: set = set()
        clbits: List[int] = []
        for instruction in circuit.instructions:
            if instruction.name == "barrier":
                continue
            _check_deferred_measurement(instruction, measured_set, self.name)
            if instruction.is_measurement:
                measured_qubits.extend(instruction.qubits)
                measured_set.update(instruction.qubits)
                clbits.extend(instruction.clbits)
                continue
            if instruction.name == "reset":
                state.reset(instruction.qubits[0], rng=self._rng)
                continue
            state.apply_instruction(instruction)
            for channel in self.noise_model.gate_channels(instruction.name, instruction.num_qubits):
                channel_width = int(np.log2(np.asarray(channel[0]).shape[0]))
                if channel_width == instruction.num_qubits:
                    state.apply_kraus(channel, instruction.qubits)
                elif channel_width == 1:
                    for qubit in instruction.qubits:
                        state.apply_kraus(channel, (qubit,))
                else:
                    raise SimulationError(
                        f"noise channel width {channel_width} incompatible with gate "
                        f"'{instruction.name}' on {instruction.num_qubits} qubit(s)"
                    )

        probabilities: Dict[str, float] = {}
        counts: Optional[Counts] = None
        if measured_qubits:
            joint = state.probabilities(measured_qubits)
            joint = self._apply_readout_error(joint, measured_qubits)
            probabilities = _exact_clbit_probabilities(
                joint, measured_qubits, clbits, circuit.num_clbits
            )
            if shots is not None:
                counts = counts_from_probabilities(
                    probabilities, shots, rng=self._rng, num_bits=circuit.num_clbits
                )
        elif shots is not None:
            raise SimulationError("cannot sample shots from a circuit without measurements")

        return SimulationResult(
            circuit_name=circuit.name,
            probabilities=probabilities,
            counts=counts,
            density_matrix=state,
            shots=shots,
            metadata={"engine": self.name, "noisy": not self.noise_model.is_ideal},
        )

    def _apply_readout_error(
        self, joint: np.ndarray, measured_qubits: Sequence[int]
    ) -> np.ndarray:
        """Convolve the joint outcome distribution with per-qubit readout error."""
        width = len(measured_qubits)
        tensor = np.asarray(joint, dtype=float).reshape((2,) * width)
        for axis, qubit in enumerate(measured_qubits):
            error = self.noise_model.readout_error(qubit)
            if error is None:
                continue
            confusion = error.confusion_matrix()
            tensor = np.tensordot(confusion, tensor, axes=([1], [axis]))
            tensor = np.moveaxis(tensor, 0, axis)
        return tensor.reshape(-1)
