"""Circuit simulators.

Two execution engines are provided:

* :class:`StatevectorSimulator` — pure-state evolution; supports exact
  probability read-out (``shots=None``) or multinomial shot sampling.  This is
  the engine behind all "simulator" results in the paper's figures.
* :class:`DensityMatrixSimulator` — mixed-state evolution with a
  :class:`~repro.quantum.noise.NoiseModel`; the engine behind the simulated
  IBM-Q / IonQ hardware backends (Figs 11 and 12).

Both return a :class:`SimulationResult` holding the final state, exact
probabilities of the measured classical bits, and (when shots are requested)
a :class:`~repro.quantum.measurement.Counts` histogram.

Both engines additionally execute whole *batches* of structure-sharing
circuits through compiled sweep programs: a parameter-shift sweep of
SWAP-test discriminators differs only in rotation angles, so
:meth:`StatevectorSimulator.run_batch` / :meth:`DensityMatrixSimulator.run_batch`
compile the shared gate skeleton **once** into a
:class:`~repro.quantum.program.SweepProgram` (cached per circuit structure),
extract each circuit's angles as a bindings row, and evolve the whole sweep
as one :class:`~repro.quantum.batched.BatchedStatevector` /
:class:`~repro.quantum.batched_density.BatchedDensityMatrix` pass.  On the
mixed-state engine every gate's unitary and noise channels are *precomposed*
into a single superoperator when the program is first planned, so repeat
sweeps skip per-gate channel resolution entirely.  Per-circuit ancilla
statistics are sampled from a single stacked RNG call; the batched results
match the per-circuit loop — exactly for probabilities, and draw-for-draw
for sampled counts under a shared seed.

``run_sweep_program`` is the memory-bounded variant behind the backends'
:meth:`~repro.quantum.backend.Backend.sweep_zero_probabilities`: it streams a
compiled program tile by tile under a
:class:`~repro.quantum.program.TilePlan` and keeps only each element's
read-out, never materialising per-element states or results.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrix
from repro.quantum.measurement import (
    Counts,
    counts_from_probabilities,
    exact_clbit_probabilities,
    normalize_outcome_probabilities,
)
from repro.quantum.noise import NoiseModel, apply_readout_error
from repro.quantum.program import (
    DensitySuperoperatorEngine,
    StatevectorEngine,
    SweepProgram,
    TilePlan,
    check_deferred_measurement,
    resolve_optimization,
)
from repro.quantum.statevector import Statevector
from repro.quantum.transpiler import circuit_structure_key
from repro.utils.cache import LRUCache
from repro.utils.rng import RandomState, ensure_rng


@dataclasses.dataclass
class SimulationResult:
    """Outcome of simulating one circuit.

    Attributes
    ----------
    circuit_name:
        Name of the executed circuit.
    probabilities:
        Exact probabilities over the measured classical bits, indexed by the
        classical bit string (bit 0 first).  Empty when the circuit has no
        measurements.
    counts:
        Sampled histogram; ``None`` when ``shots`` was ``None``.
    statevector:
        Final pure state (statevector engine only, measurement-free circuits).
    density_matrix:
        Final mixed state (density-matrix engine only).
    shots:
        Number of shots sampled, or ``None`` for exact execution.
    metadata:
        Engine- and backend-specific extras (noise model name, queue delay...).
    """

    circuit_name: str
    probabilities: Dict[str, float]
    counts: Optional[Counts] = None
    statevector: Optional[Statevector] = None
    density_matrix: Optional[DensityMatrix] = None
    shots: Optional[int] = None
    metadata: Dict[str, object] = dataclasses.field(default_factory=dict)

    def probability_of(self, bitstring: str) -> float:
        """Probability of a classical outcome, preferring sampled counts."""
        if self.counts is not None:
            return self.counts.probability(bitstring)
        return self.probabilities.get(bitstring, 0.0)

    def marginal_probability(self, clbit: int, value: int = 1) -> float:
        """Probability that classical bit ``clbit`` reads ``value``."""
        if self.counts is not None:
            return self.counts.marginal_probability(clbit, value)
        total = 0.0
        for key, prob in self.probabilities.items():
            if int(key[clbit]) == value:
                total += prob
        return total


#: Deferred-measurement validation — shared with the compiled-program path
#: (see :func:`repro.quantum.program.check_deferred_measurement`).
_check_deferred_measurement = check_deferred_measurement

#: Classical-bit re-indexing — shared with the compiled-program path (see
#: :func:`repro.quantum.measurement.exact_clbit_probabilities`).
_exact_clbit_probabilities = exact_clbit_probabilities


def _shares_structure(
    circuits: Sequence[QuantumCircuit], per_circuit: Sequence[tuple]
) -> bool:
    """Whether every circuit has the same vectorisable gate skeleton.

    Structure sharing means identical width, identical ordered
    (name, qubits, clbits) sequences, fully bound parameters, and no resets
    (projective resets need per-element RNG draws, which the vectorised
    paths do not model).  ``per_circuit`` carries each circuit's instruction
    tuple, fetched once by the caller.  Shared by both engines' ``run_batch``
    so they accept exactly the same sweeps.
    """
    reference = per_circuit[0]
    if any(inst.name == "reset" or inst.is_parameterized for inst in reference):
        return False
    for circuit, instructions in zip(circuits[1:], per_circuit[1:]):
        if (
            circuit.num_qubits != circuits[0].num_qubits
            or circuit.num_clbits != circuits[0].num_clbits
        ):
            return False
        if len(instructions) != len(reference):
            return False
        for inst, ref in zip(instructions, reference):
            if (
                inst.name != ref.name
                or inst.qubits != ref.qubits
                or inst.clbits != ref.clbits
                or inst.is_parameterized
            ):
                return False
    return True


def _sample_counts_batch(
    rng: np.random.Generator,
    probabilities_per_element: Sequence[Dict[str, float]],
    shots: int,
) -> List[Counts]:
    """Sample counts for every batch element, matching the loop's RNG stream.

    When all elements expose the same outcome keys (the common case — a
    SWAP-test sweep always yields the ``{"0", "1"}`` pair), all elements are
    drawn with one stacked multinomial call; NumPy consumes the bit generator
    row by row, so the draws are identical to sequential
    :func:`~repro.quantum.measurement.counts_from_probabilities` calls.
    Heterogeneous key sets (some element has an exactly-zero outcome that the
    exact read-out dropped) fall back to the sequential path to keep the
    stream aligned with the per-circuit loop.  Shared by both engines'
    ``run_batch`` so the seed-identity guarantee has a single implementation.
    """
    key_sets = [tuple(probs.keys()) for probs in probabilities_per_element]
    if any(key_set != key_sets[0] for key_set in key_sets[1:]):
        return [
            counts_from_probabilities(probs, shots, rng=rng)
            for probs in probabilities_per_element
        ]
    keys = key_sets[0]
    pvals = normalize_outcome_probabilities(
        [[probs[key] for key in keys] for probs in probabilities_per_element]
    )
    samples = rng.multinomial(shots, pvals)
    return [
        Counts({key: int(count) for key, count in zip(keys, row) if count > 0})
        for row in samples
    ]


@dataclasses.dataclass
class SweepReadout:
    """Per-element read-out of one tiled program execution.

    Holds only what downstream consumers need — outcome-probability
    dictionaries and (optionally) sampled counts — so a tiled sweep never
    materialises per-element states.  Produced by the simulators'
    ``run_sweep_program`` methods.
    """

    probabilities: List[Dict[str, float]]
    counts: Optional[List[Counts]]
    num_clbits: int

    def marginal_probabilities(self, clbit: int = 0, value: int = 0) -> np.ndarray:
        """Per-element ``P(clbit == value)``, preferring sampled counts.

        Mirrors :meth:`SimulationResult.marginal_probability` element-wise so
        the program sweep path reports exactly what a loop of full results
        would.
        """
        if self.counts is not None:
            return np.array(
                [c.marginal_probability(clbit, value) for c in self.counts],
                dtype=float,
            )
        return np.array(
            [
                sum(p for key, p in probs.items() if int(key[clbit]) == value)
                for probs in self.probabilities
            ],
            dtype=float,
        )


def _execute_sweep_readout(
    program: SweepProgram,
    bindings: np.ndarray,
    engine,
    rng: np.random.Generator,
    shots: Optional[int],
    tile_plan: Optional[TilePlan],
) -> SweepReadout:
    """Run one compiled sweep and sample its read-out (both engines).

    The exact same helper chain as ``run_batch`` —
    :func:`~repro.quantum.measurement.exact_clbit_probabilities` then
    :func:`_sample_counts_batch` — so the program path consumes the RNG
    draw-for-draw like the batched and per-circuit paths.
    """
    bindings = np.asarray(bindings, dtype=float)
    if bindings.shape[0] == 0:
        return SweepReadout([], [] if shots is not None else None, program.num_clbits)
    if not program.measured_qubits:
        raise SimulationError("cannot read out a sweep program without measurements")
    joint = program.execute(bindings, engine, tile_plan=tile_plan)
    probabilities = [
        exact_clbit_probabilities(
            joint[element], program.measured_qubits, program.clbits, program.num_clbits
        )
        for element in range(joint.shape[0])
    ]
    counts = (
        _sample_counts_batch(rng, probabilities, shots) if shots is not None else None
    )
    return SweepReadout(probabilities, counts, program.num_clbits)


class _SweepProgramCacheMixin:
    """Structure-keyed compile-once cache shared by both simulators.

    Each cache entry keeps the *source* compile of a circuit structure plus,
    when plan-time fusion is enabled (``optimize_programs=True`` on the
    simulator or ``REPRO_OPTIMIZE_PROGRAMS=1``), the certified optimised
    variant for the simulator's current noise model — re-derived from the
    cached source (never recompiled) when the model instance or its mutation
    version changes.
    """

    PROGRAM_CACHE_SIZE = 64

    def _init_program_cache(self, optimize_programs: Optional[bool] = None) -> None:
        self._program_cache = LRUCache(self.PROGRAM_CACHE_SIZE)
        self._program_cache_hits = 0
        self._program_cache_misses = 0
        #: Three-state fusion knob: ``None`` defers to the environment.
        self._optimize_programs = optimize_programs

    def _program_noise_model(self):
        """Noise model the fusion legality oracle consults (engine-specific)."""
        return None

    @property
    def program_cache_stats(self) -> Dict[str, int]:
        """Hit/miss statistics of the compiled-sweep-program cache."""
        return {
            "hits": self._program_cache_hits,
            "misses": self._program_cache_misses,
            "entries": len(self._program_cache),
        }

    def _sweep_program(self, reference: QuantumCircuit) -> SweepProgram:
        """Compile (once per structure) the program of a bound sweep."""
        key = circuit_structure_key(reference)
        entry = self._program_cache.get(key)
        if entry is None:
            entry = {
                "source": SweepProgram.compile(
                    reference, bind_floats=True, name=f"{self.name}:{reference.name}"
                )
            }
            self._program_cache.put(key, entry)
            self._program_cache_misses += 1  # repro: noqa REP101 -- instrumentation counter; simulators are rebuilt per shard from specs, never shared across workers
        else:
            self._program_cache_hits += 1  # repro: noqa REP101 -- instrumentation counter; simulators are rebuilt per shard from specs, never shared across workers
        if not resolve_optimization(self._optimize_programs):
            return entry["source"]
        noise = self._program_noise_model()
        version = getattr(noise, "version", 0)
        cached = entry.get("optimized")
        if cached is None or cached[0] is not noise or cached[1] != version:
            entry["optimized"] = (
                noise,
                version,
                entry["source"].optimized(noise_model=noise),
            )
        return entry["optimized"][2]

    def _grid_program(
        self, reference: QuantumCircuit, parameters: Sequence
    ) -> SweepProgram:
        """Compile (once per structure) the program of a *symbolic* grid sweep.

        ``reference`` carries genuine symbolic parameters (trained angles
        and data-encoder sites); ``parameters`` fixes the binding-column
        order.  Shares the LRU with :meth:`_sweep_program` under a
        distinct-shape key — the structure key ignores parameter values, so
        a bound sweep of the same skeleton must not collide with the
        symbolic grid compile.
        """
        key = (
            circuit_structure_key(reference),
            tuple(param.name for param in parameters),
        )
        entry = self._program_cache.get(key)
        if entry is None:
            entry = {
                "source": SweepProgram.compile(
                    reference,
                    bind_floats=False,
                    parameters=parameters,
                    name=f"{self.name}:grid({reference.name})",
                )
            }
            self._program_cache.put(key, entry)
            self._program_cache_misses += 1  # repro: noqa REP101 -- instrumentation counter; simulators are rebuilt per shard from specs, never shared across workers
        else:
            self._program_cache_hits += 1  # repro: noqa REP101 -- instrumentation counter; simulators are rebuilt per shard from specs, never shared across workers
        if not resolve_optimization(self._optimize_programs):
            return entry["source"]
        noise = self._program_noise_model()
        version = getattr(noise, "version", 0)
        cached = entry.get("optimized")
        if cached is None or cached[0] is not noise or cached[1] != version:
            entry["optimized"] = (
                noise,
                version,
                entry["source"].optimized(noise_model=noise),
            )
        return entry["optimized"][2]


class StatevectorSimulator(_SweepProgramCacheMixin):
    """Exact pure-state simulator.

    Parameters
    ----------
    seed:
        Seed for shot sampling (exact probabilities are deterministic).
    optimize_programs:
        Three-state plan-time fusion knob for the cached ``run_batch``
        programs: ``True``/``False`` force it, ``None`` (default) defers to
        ``REPRO_OPTIMIZE_PROGRAMS``.  Fused programs are certified
        equivalent (VER4xx) before they execute.
    """

    name = "statevector_simulator"

    def __init__(
        self, seed: RandomState = None, optimize_programs: Optional[bool] = None
    ) -> None:
        self._rng = ensure_rng(seed)
        self._init_program_cache(optimize_programs)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = None,
        initial_state: Optional[Statevector] = None,
    ) -> SimulationResult:
        """Execute ``circuit`` and return a :class:`SimulationResult`.

        Measurements are deferred: the simulator evolves all unitary gates,
        computes the exact joint distribution of the measured qubits, and
        (optionally) samples ``shots`` outcomes from it.  Mid-circuit resets
        of *unmeasured-so-far* qubits are applied by projective sampling.
        Circuits that deferral cannot represent — a gate or reset on an
        already-measured qubit, or measuring the same qubit twice — raise
        :class:`~repro.exceptions.SimulationError`.
        """
        if circuit.num_parameters:
            unbound = [p.name for p in circuit.parameters]
            raise SimulationError(f"circuit has unbound parameters: {unbound}")
        state = initial_state.copy() if initial_state is not None else Statevector(circuit.num_qubits)
        if state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"initial state has {state.num_qubits} qubits, circuit has {circuit.num_qubits}"
            )

        measured_qubits: List[int] = []
        measured_set: set = set()
        clbits: List[int] = []
        for instruction in circuit.instructions:
            if instruction.name == "barrier":
                continue
            _check_deferred_measurement(instruction, measured_set, self.name)
            if instruction.is_measurement:
                measured_qubits.extend(instruction.qubits)
                measured_set.update(instruction.qubits)
                clbits.extend(instruction.clbits)
                continue
            if instruction.name == "reset":
                state.reset(instruction.qubits[0], rng=self._rng)
                continue
            state.apply_instruction(instruction)

        probabilities: Dict[str, float] = {}
        counts: Optional[Counts] = None
        if measured_qubits:
            joint = state.probabilities(measured_qubits)
            probabilities = _exact_clbit_probabilities(
                joint, measured_qubits, clbits, circuit.num_clbits
            )
            if shots is not None:
                counts = counts_from_probabilities(
                    probabilities, shots, rng=self._rng, num_bits=circuit.num_clbits
                )
        elif shots is not None:
            raise SimulationError("cannot sample shots from a circuit without measurements")

        return SimulationResult(
            circuit_name=circuit.name,
            probabilities=probabilities,
            counts=counts,
            statevector=state,
            shots=shots,
            metadata={"engine": self.name},
        )

    def statevector(self, circuit: QuantumCircuit) -> Statevector:
        """Convenience: final statevector of a measurement-free circuit."""
        stripped = circuit.remove_final_measurements()
        return self.run(stripped).statevector

    # ------------------------------------------------------------------ #
    # Batched execution
    # ------------------------------------------------------------------ #
    def run_batch(
        self, circuits: Sequence[QuantumCircuit], shots: Optional[int] = None
    ) -> List[SimulationResult]:
        """Execute a batch of bound circuits, vectorising when they share structure.

        When every circuit has the same gate skeleton (same instruction
        sequence over the same qubits, angles free to differ — the shape of a
        parameter-shift sweep), the whole batch evolves as one
        :class:`~repro.quantum.batched.BatchedStatevector` pass: shared gates
        apply a single matrix, parameterised gates a ``(batch, 2**k, 2**k)``
        stack, and shot sampling for every element happens in one stacked
        multinomial draw.  The results are equivalent to looping
        :meth:`run` — bit strings, probabilities, and (because a stacked
        multinomial consumes the generator exactly like per-row draws)
        seed-identical counts.  The counts guarantee holds whenever the
        batched evolution reproduces the loop's probabilities bit-for-bit;
        vectorised einsum evolution can differ at the last ULP, which would
        only flip a draw if it landed exactly on a sampling boundary.

        Circuits with differing structures, resets, or unbound parameters
        fall back to the per-circuit loop transparently.
        """
        circuits = list(circuits)
        if not circuits:
            # Mirror the loop semantics of ``Backend.run_batch``: an empty
            # sweep yields an empty result list on every backend.
            return []
        if shots is not None and shots <= 0:
            raise SimulationError(f"shots must be positive or None, got {shots}")
        per_circuit = [circuit.instructions for circuit in circuits]
        if not _shares_structure(circuits, per_circuit):
            return [self.run(circuit, shots=shots) for circuit in circuits]

        reference = circuits[0]
        batch = len(circuits)
        program = self._sweep_program(reference)
        state = program.evolve(
            program.bindings_from_circuits(circuits), StatevectorEngine()
        )
        measured_qubits = list(program.measured_qubits)
        clbits = list(program.clbits)

        probabilities_per_element: List[Dict[str, float]] = [{} for _ in range(batch)]
        counts_per_element: List[Optional[Counts]] = [None] * batch
        if measured_qubits:
            joint = state.probabilities(measured_qubits)
            probabilities_per_element = [
                _exact_clbit_probabilities(
                    joint[element], measured_qubits, clbits, reference.num_clbits
                )
                for element in range(batch)
            ]
            if shots is not None:
                counts_per_element = _sample_counts_batch(
                    self._rng, probabilities_per_element, shots
                )
        elif shots is not None:
            raise SimulationError("cannot sample shots from a circuit without measurements")

        return [
            SimulationResult(
                circuit_name=circuits[element].name,
                probabilities=probabilities_per_element[element],
                counts=counts_per_element[element],
                statevector=state.statevector(element),
                shots=shots,
                metadata={"engine": self.name, "batched": True, "batch_size": batch},
            )
            for element in range(batch)
        ]

    def run_sweep_program(
        self,
        program: SweepProgram,
        bindings: np.ndarray,
        shots: Optional[int] = None,
        tile_plan: Optional[TilePlan] = None,
    ) -> SweepReadout:
        """Execute a compiled sweep tile by tile, keeping only read-outs.

        The memory-bounded hot path behind
        :meth:`~repro.quantum.backend.Backend.sweep_zero_probabilities`:
        per-element statevectors are dropped as each tile completes, and
        shot sampling consumes the RNG exactly like :meth:`run_batch` (and
        hence like the per-circuit loop).
        """
        if shots is not None and shots <= 0:
            raise SimulationError(f"shots must be positive or None, got {shots}")
        return _execute_sweep_readout(
            program, bindings, StatevectorEngine(), self._rng, shots, tile_plan
        )


class DensityMatrixSimulator(_SweepProgramCacheMixin):
    """Mixed-state simulator with optional gate and readout noise.

    Like the statevector engine, whole batches of structure-sharing circuits
    execute in one vectorised pass (:meth:`run_batch`): the sweep evolves as
    a single :class:`~repro.quantum.batched_density.BatchedDensityMatrix`,
    each gate's noise channels are resolved once and applied across the whole
    batch, the readout-error convolution is vectorised over the batch axis,
    and shot sampling happens in one stacked multinomial draw that consumes
    the RNG exactly like the per-circuit loop.
    """

    name = "density_matrix_simulator"

    def __init__(
        self,
        noise_model: Optional[NoiseModel] = None,
        seed: RandomState = None,
        optimize_programs: Optional[bool] = None,
    ) -> None:
        self.noise_model = noise_model if noise_model is not None else NoiseModel.ideal()
        self._rng = ensure_rng(seed)
        self._init_program_cache(optimize_programs)
        self._engine: Optional[DensitySuperoperatorEngine] = None

    def _program_noise_model(self) -> NoiseModel:
        """Fusion legality consults the simulator's live noise model."""
        return self.noise_model

    def _program_engine(self) -> DensitySuperoperatorEngine:
        """The precomposing superoperator engine for the *current* noise model.

        ``noise_model`` is a public attribute callers may swap; the engine
        (and with it every memoised per-program superoperator plan) is
        rebuilt whenever the model instance changes.
        """
        if self._engine is None or self._engine.noise_model is not self.noise_model:
            self._engine = DensitySuperoperatorEngine(self.noise_model)
        return self._engine

    def run(
        self,
        circuit: QuantumCircuit,
        shots: Optional[int] = 1024,
        initial_state: Optional[DensityMatrix] = None,
    ) -> SimulationResult:
        """Execute ``circuit`` under the configured noise model."""
        if circuit.num_parameters:
            unbound = [p.name for p in circuit.parameters]
            raise SimulationError(f"circuit has unbound parameters: {unbound}")
        state = initial_state.copy() if initial_state is not None else DensityMatrix(circuit.num_qubits)
        if state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"initial state has {state.num_qubits} qubits, circuit has {circuit.num_qubits}"
            )

        measured_qubits, clbits = self._evolve_instructions(
            circuit.instructions,
            state,
            apply_gate=lambda index, instruction: state.apply_instruction(instruction),
            on_reset=lambda instruction: state.reset(
                instruction.qubits[0], rng=self._rng
            ),
        )

        probabilities: Dict[str, float] = {}
        counts: Optional[Counts] = None
        if measured_qubits:
            joint = state.probabilities(measured_qubits)
            joint = self._apply_readout_error(joint, measured_qubits)
            probabilities = _exact_clbit_probabilities(
                joint, measured_qubits, clbits, circuit.num_clbits
            )
            if shots is not None:
                counts = counts_from_probabilities(
                    probabilities, shots, rng=self._rng, num_bits=circuit.num_clbits
                )
        elif shots is not None:
            raise SimulationError("cannot sample shots from a circuit without measurements")

        return SimulationResult(
            circuit_name=circuit.name,
            probabilities=probabilities,
            counts=counts,
            density_matrix=state,
            shots=shots,
            metadata={"engine": self.name, "noisy": not self.noise_model.is_ideal},
        )

    def _evolve_instructions(
        self,
        instructions: Sequence,
        state,
        apply_gate,
        on_reset=None,
    ) -> Tuple[List[int], List[int]]:
        """Walk a circuit's instructions, evolving ``state`` under the noise model.

        The single implementation behind :meth:`run` and the vectorised
        :meth:`run_batch` — deferred-measurement bookkeeping, gate
        application, and the per-gate noise-channel dispatch (whole-gate
        width vs. per-qubit) must stay identical between the two paths for
        the loop/batch equivalence guarantee to hold.  ``state`` is either a
        :class:`DensityMatrix` or a
        :class:`~repro.quantum.batched_density.BatchedDensityMatrix`
        (``apply_kraus`` is the shared surface); ``apply_gate(index,
        instruction)`` applies one gate to it; ``on_reset`` handles resets
        (``None`` on the batch path, whose structure check excludes them).
        Returns the measured qubits and their classical bits, in order.
        """
        measured_qubits: List[int] = []
        measured_set: set = set()
        clbits: List[int] = []
        channel_plans: Dict[Tuple[str, int], list] = {}
        for index, instruction in enumerate(instructions):
            if instruction.name == "barrier":
                continue
            _check_deferred_measurement(instruction, measured_set, self.name)
            if instruction.is_measurement:
                measured_qubits.extend(instruction.qubits)
                measured_set.update(instruction.qubits)
                clbits.extend(instruction.clbits)
                continue
            if instruction.name == "reset":
                if on_reset is None:
                    raise SimulationError(
                        "the vectorised batch path cannot apply resets"
                    )
                on_reset(instruction)
                continue
            apply_gate(index, instruction)
            for channel, width in self._gate_channel_plan(
                channel_plans, instruction.name, instruction.num_qubits
            ):
                if width == instruction.num_qubits:
                    state.apply_kraus(channel, instruction.qubits)
                else:
                    for qubit in instruction.qubits:
                        state.apply_kraus(channel, (qubit,))
        return measured_qubits, clbits

    def _gate_channel_plan(
        self,
        plans: Dict[Tuple[str, int], list],
        gate_name: str,
        gate_qubits: int,
    ) -> list:
        """Noise channels for one gate position, resolved and width-checked once.

        ``plans`` memoises the per-(gate name, qubit count) lookup for the
        duration of one :meth:`run` / :meth:`run_batch` call, hoisting the
        ``gate_channels`` list assembly and the channel-width computation out
        of the per-gate (and, in the batch path, per-circuit) inner loop.
        Each entry pairs a channel's Kraus operators with its qubit width.
        """
        key = (gate_name, gate_qubits)
        plan = plans.get(key)
        if plan is None:
            plan = []
            for channel in self.noise_model.gate_channels(gate_name, gate_qubits):
                channel_width = int(np.log2(np.asarray(channel[0]).shape[0]))
                if channel_width not in (gate_qubits, 1):
                    raise SimulationError(
                        f"noise channel width {channel_width} incompatible with gate "
                        f"'{gate_name}' on {gate_qubits} qubit(s)"
                    )
                plan.append((channel, channel_width))
            plans[key] = plan
        return plan

    def _apply_readout_error(
        self, joint: np.ndarray, measured_qubits: Sequence[int]
    ) -> np.ndarray:
        """Convolve outcome distributions with per-qubit readout error.

        Delegates to :func:`repro.quantum.noise.apply_readout_error`, the
        single implementation shared with the compiled-program density
        engine so both read-out paths stay bit-identical.
        """
        return apply_readout_error(joint, measured_qubits, self.noise_model)

    # ------------------------------------------------------------------ #
    # Batched execution
    # ------------------------------------------------------------------ #
    def run_batch(
        self, circuits: Sequence[QuantumCircuit], shots: Optional[int] = 1024
    ) -> List[SimulationResult]:
        """Execute a batch of bound circuits under the noise model, vectorising
        when they share structure.

        When every circuit has the same gate skeleton (same instruction
        sequence over the same qubits, angles free to differ — the shape of a
        parameter-shift sweep), the whole batch evolves as one
        :class:`~repro.quantum.batched_density.BatchedDensityMatrix` pass:
        shared gates and noise channels apply a single operator stackwide,
        parameterised gates a ``(batch, 2**k, 2**k)`` stack, the readout-error
        convolution runs over the whole batch at once, and shot sampling for
        every element happens in one stacked multinomial draw.  The results
        are equivalent to looping :meth:`run` — bit strings, probabilities,
        and (because a stacked multinomial consumes the generator exactly like
        per-circuit draws) seed-identical counts.  The counts guarantee holds
        whenever the batched evolution reproduces the loop's probabilities
        bit-for-bit; vectorised einsum evolution can differ at the last ULP,
        which would only flip a draw if it landed exactly on a sampling
        boundary.

        Circuits with differing structures, resets, or unbound parameters
        fall back to the per-circuit loop transparently.
        """
        circuits = list(circuits)
        if not circuits:
            # Mirror the loop semantics of ``Backend.run_batch``: an empty
            # sweep yields an empty result list on every backend.
            return []
        if shots is not None and shots <= 0:
            raise SimulationError(f"shots must be positive or None, got {shots}")
        per_circuit = [circuit.instructions for circuit in circuits]
        if not _shares_structure(circuits, per_circuit):
            return [self.run(circuit, shots=shots) for circuit in circuits]

        reference = circuits[0]
        batch = len(circuits)
        program = self._sweep_program(reference)
        state = program.evolve(
            program.bindings_from_circuits(circuits), self._program_engine()
        )
        measured_qubits = list(program.measured_qubits)
        clbits = list(program.clbits)

        probabilities_per_element: List[Dict[str, float]] = [{} for _ in range(batch)]
        counts_per_element: List[Optional[Counts]] = [None] * batch
        if measured_qubits:
            joint = state.probabilities(measured_qubits)
            joint = self._apply_readout_error(joint, measured_qubits)
            probabilities_per_element = [
                _exact_clbit_probabilities(
                    joint[element], measured_qubits, clbits, reference.num_clbits
                )
                for element in range(batch)
            ]
            if shots is not None:
                counts_per_element = _sample_counts_batch(
                    self._rng, probabilities_per_element, shots
                )
        elif shots is not None:
            raise SimulationError("cannot sample shots from a circuit without measurements")

        return [
            SimulationResult(
                circuit_name=circuits[element].name,
                probabilities=probabilities_per_element[element],
                counts=counts_per_element[element],
                density_matrix=state.density_matrix(element),
                shots=shots,
                metadata={
                    "engine": self.name,
                    "noisy": not self.noise_model.is_ideal,
                    "batched": True,
                    "batch_size": batch,
                },
            )
            for element in range(batch)
        ]

    def run_sweep_program(
        self,
        program: SweepProgram,
        bindings: np.ndarray,
        shots: Optional[int] = 1024,
        tile_plan: Optional[TilePlan] = None,
    ) -> SweepReadout:
        """Execute a compiled noisy sweep tile by tile, keeping only read-outs.

        Every gate applies its precomposed superoperator (unitary and noise
        folded together at plan time — no per-gate channel resolution), the
        readout-error convolution and classical-bit re-indexing reuse the
        ``run_batch`` helpers, and shot sampling consumes the RNG exactly
        like :meth:`run_batch`.  Per-element density matrices are never
        materialised, so peak memory is the largest tile's
        ``tile x 4**n`` stack rather than the whole sweep's.
        """
        if shots is not None and shots <= 0:
            raise SimulationError(f"shots must be positive or None, got {shots}")
        return _execute_sweep_readout(
            program, bindings, self._program_engine(), self._rng, shots, tile_plan
        )
