"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library-specific failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class CircuitError(ReproError):
    """Raised when a quantum circuit is constructed or mutated incorrectly.

    Examples include referencing a qubit outside the register, appending an
    instruction with a mismatched qubit count, or composing circuits of
    incompatible widths.
    """


class SimulationError(ReproError):
    """Raised when a simulator cannot execute a circuit.

    Typical causes: unsupported instructions for the chosen backend,
    non-normalised initial states, or invalid shot counts.
    """


class NoiseError(SimulationError):
    """Raised when a noise channel or noise model is invalid.

    Channel registration validates CPTP (trace preservation via the Kraus
    completeness relation, complete positivity by construction checks) at
    mutation time, naming the offending channel — so a bad channel fails at
    ``add_*`` instead of corrupting precomposed superoperators later.
    Subclasses :class:`SimulationError` so existing callers that guard noise
    construction keep working.
    """


class EncodingError(ReproError):
    """Raised when classical data cannot be encoded into a quantum state."""


class TranspilerError(ReproError):
    """Raised when a circuit cannot be mapped onto a device topology."""


class BackendError(ReproError):
    """Raised when a backend (simulated hardware) rejects a job."""


class TrainingError(ReproError):
    """Raised when model training is configured or executed incorrectly."""


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated, loaded, or split."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied arguments fail validation.

    Inherits from :class:`ValueError` so generic callers that expect standard
    library semantics still behave correctly.
    """
