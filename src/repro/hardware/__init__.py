"""Simulated quantum hardware: IBM-Q superconducting sites and IonQ."""

from repro.hardware.calibration import (
    CALIBRATIONS,
    CalibrationProfile,
    available_devices,
    get_calibration,
)
from repro.hardware.ibmq import (
    IBMQBackend,
    ibmq_cairo,
    ibmq_london,
    ibmq_melbourne,
    ibmq_new_york,
    ibmq_rome,
)
from repro.hardware.ionq import IonQBackend, ionq
from repro.hardware.job import JobLedger, JobRecord

__all__ = [
    "CALIBRATIONS",
    "CalibrationProfile",
    "available_devices",
    "get_calibration",
    "IBMQBackend",
    "ibmq_cairo",
    "ibmq_london",
    "ibmq_melbourne",
    "ibmq_new_york",
    "ibmq_rome",
    "IonQBackend",
    "ionq",
    "JobLedger",
    "JobRecord",
]
